"""Optional compiled-kernel build on top of the pyproject metadata.

``pip install .`` works on any machine with just a Python toolchain: the
extension below is *best-effort*.  When a C compiler is present it builds
``repro.kernels._native`` — the same ``readout.c`` the ctypes tier compiles
at runtime, wrapped in a no-op ``PyInit`` stub (``REPRO_BUILD_PYMODULE``) so
setuptools accepts it; ``repro.kernels.c_impl`` then finds the prebuilt
shared object next to the package and skips its own compile.  When the
build fails (no compiler, exotic platform) the wheel is still produced and
the dispatcher falls back to runtime compilation or the numpy reference —
a missing compiler must never break installation.

``-ffp-contract=off`` is load-bearing: fused multiply-adds would change
read-out bits and break the cross-tier equivalence contract.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the kernel extension if possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # missing compiler, linker, headers, ...
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            f"warning: skipping optional repro.kernels._native build ({exc}); "
            f"the kernel dispatcher will compile at runtime or use the "
            f"numpy reference tier"
        )


setup(
    ext_modules=[
        Extension(
            "repro.kernels._native",
            sources=["src/repro/kernels/readout.c"],
            define_macros=[("REPRO_BUILD_PYMODULE", "1")],
            extra_compile_args=["-O3", "-ffp-contract=off"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
