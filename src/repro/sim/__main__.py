"""Entry point for ``python -m repro.sim``."""

import sys

from repro.sim.cli import main

if __name__ == "__main__":
    sys.exit(main())
