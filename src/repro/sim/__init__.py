"""Chip-level comparison simulator (``python -m repro.sim``).

Runs any model from :mod:`repro.nn.models` through the crossbar mapper and
energy estimator and prints per-layer and total energy / latency / area for
the TIMELY, PRIME-like and ISAAC-like configurations of
:mod:`repro.energy.tables`.
"""

from repro.sim.cli import build_parser, format_comparison, format_per_layer, main

__all__ = ["main", "build_parser", "format_comparison", "format_per_layer"]
