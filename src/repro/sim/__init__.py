"""Simulator CLI (``python -m repro.sim``).

* ``estimate`` (default) — chip-level energy / latency / area comparison of
  any zoo model on the TIMELY, PRIME-like and ISAAC-like configurations of
  :mod:`repro.energy.tables`, optionally with cross-layer-pipelined latency
  and ``--json`` output;
* ``run`` — functional simulation through :mod:`repro.engine`, reporting
  the end-to-end output error against the float reference;
* ``bench`` — the tracked performance smoke, written to a JSON artifact.
"""

from repro.sim.cli import (
    build_parser,
    build_run_parser,
    estimate_to_dict,
    format_comparison,
    format_per_layer,
    main,
    main_bench,
    main_estimate,
    main_run,
)

__all__ = [
    "main",
    "main_estimate",
    "main_run",
    "main_bench",
    "build_parser",
    "build_run_parser",
    "estimate_to_dict",
    "format_comparison",
    "format_per_layer",
]
