"""Command-line interface of the simulator.

Five subcommands share one :class:`repro.context.SimContext`:

* ``estimate`` (the default when no subcommand is given, preserving the
  historical ``python -m repro.sim --model ...`` invocation) — chip-level
  energy / latency / area comparison across the TIMELY, PRIME-like and
  ISAAC-like configurations, optionally with cross-layer-pipelined latency
  and JSON output;
* ``run`` — functional simulation: execute a model through its mapped
  crossbars with the time-domain circuit chains and report the end-to-end
  output error against the float reference; ``--state-cache`` serves the
  programming phase from the content-keyed programmed-state cache,
  ``--compute-dtype float32`` / ``--chunk-bytes`` bound arithmetic cost
  and read-out transients, and ``--stream`` executes layer-by-layer from
  the cached state's backing files (peak wired weights = largest layer);
* ``program`` — the one-time phase alone: program a model's weights onto
  crossbars and persist the chip state into the cache directory that later
  ``run --state-cache`` / ``sweep --state-cache`` invocations hit;
* ``sweep`` — the Monte-Carlo accuracy study: a (model x noise-scale x
  trial x cell-bits x backend) grid through a resumable process-pool sweep
  (:mod:`repro.sweep`) that programs each distinct chip state once and
  shares it across trials, reduced to mean/p95 relative error per scale;
* ``bench`` — the tracked performance smoke: vgg_d estimation plus a cnn_1
  engine run, the im2col micro-benchmark, the program-once sweep legs
  (legacy vs shared-state vs warm pool), the programming-cache timings, a
  branching-topology engine smoke (residual block, analog, validated), the
  liveness-freeing peak-memory comparison and the streaming section
  (float64-vs-float32 deep forward, chunk-fused read-out peak, streamed-
  vs-resident subprocess memory), written to a JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.circuits.noise import HardwareNoiseConfig, stable_seed
from repro.context import (
    COMPUTE_DTYPES,
    ENGINE_BACKENDS,
    ArchSpec,
    SimContext,
    accelerator_factories,
)
from repro.energy.estimator import NetworkEstimate, compare_accelerators
from repro.kernels.dispatch import KERNEL_CHOICES
from repro.nn.models import build_model, list_models
from repro.nn.network import Network

_SUBCOMMANDS = ("estimate", "run", "program", "sweep", "bench")


def _positive_int(text: str) -> int:
    """``argparse`` type for arguments that must be strictly positive.

    ``type=int`` silently accepts 0 and negatives, deferring the failure
    to whatever downstream code divides or allocates with the value; this
    converter rejects them at parse time with a proper usage error.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _resolved_kernel(requested: str) -> str:
    """The tier name the dispatcher actually selected for ``requested``."""
    from repro.kernels.dispatch import resolve

    return resolve(requested)[0]


def _add_arch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=256, help="crossbar rows")
    parser.add_argument("--cols", type=int, default=256, help="crossbar columns")
    parser.add_argument("--cell-bits", type=int, default=4, help="bits per ReRAM cell")
    parser.add_argument("--weight-bits", type=int, default=8, help="weight precision")
    parser.add_argument("--input-bits", type=int, default=8, help="input precision")


def _add_compute_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--compute-dtype",
        choices=COMPUTE_DTYPES,
        default=COMPUTE_DTYPES[0],
        help=(
            "packed-engine arithmetic precision: float64 (default, the "
            "bit-exact historical path) or float32 (faster large-model "
            "matmuls; digital recombination stays float64, and ideal-mode "
            "layers that would lose integer exactness fall back per layer)"
        ),
    )
    parser.add_argument(
        "--chunk-bytes",
        type=_positive_int,
        default=None,
        metavar="BYTES",
        help=(
            "bound the packed read-out working set: split the stacked "
            "charge tensor into chunks of at most BYTES and run the "
            "time-domain chain per chunk in place (omit for the "
            "historical single-pass read-out, bit-identical to earlier "
            "releases)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help=(
            "read-out/im2col kernel tier (default: auto — fastest "
            "available; every tier is bit-identical in float64, so this "
            "never changes results or content keys)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker threads for the chunked packed read-out walk "
            "(effective with --chunk-bytes and a GIL-releasing kernel "
            "tier; byte-identical output at any count; default: 1)"
        ),
    )


def _compute_kwargs(args: argparse.Namespace) -> dict:
    return {
        "compute_dtype": args.compute_dtype,
        "chunk_bytes": args.chunk_bytes,
        "kernel": args.kernel,
        "threads": args.threads,
    }


def _peak_rss_mb(status_path: str = "/proc/self/status") -> Optional[float]:
    """This process's peak resident set size in MB (``None`` if unknown).

    Prefers ``VmHWM`` from ``/proc/self/status``: it is the high-water
    mark of *this* process's address space, whereas Linux ``ru_maxrss``
    is inherited across fork+exec — a subprocess launched from a fat
    parent (the bench after its vgg_d leg) would otherwise report the
    parent's peak.  Falls back to ``getrusage`` where procfs is absent or
    malformed (``ru_maxrss`` is kilobytes on Linux, bytes on macOS), and
    degrades to ``None`` — never an exception — when neither source works:
    memory reporting must not take down a run on an exotic platform.  The
    streaming bench compares streamed vs resident subprocess runs on this
    figure and tolerates the ``None``.
    """
    try:
        with open(status_path) as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024 / 1e6
    except (OSError, ValueError, IndexError):  # pragma: no cover - odd procfs
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX platform
        return None
    scale = 1 if sys.platform == "darwin" else 1024
    return peak * scale / 1e6


def _arch_from_args(args: argparse.Namespace) -> ArchSpec:
    return ArchSpec(
        rows=args.rows,
        cols=args.cols,
        cell_bits=args.cell_bits,
        weight_bits=args.weight_bits,
        input_bits=args.input_bits,
        spare_rows=getattr(args, "spare_rows", 0),
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "fault injection",
        "seed-stable hardware fault model (see repro.faults); all off by default",
    )
    group.add_argument(
        "--stuck-on",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fraction of cells stuck at G_on (shorted low-resistance state)",
    )
    group.add_argument(
        "--stuck-off",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fraction of cells stuck at G_off (open high-resistance state)",
    )
    group.add_argument(
        "--drift-time",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="conductance drift: seconds since programming (0 = no drift)",
    )
    group.add_argument(
        "--drift-nu",
        type=float,
        default=0.0,
        metavar="NU",
        help="drift exponent of the (1 + t/t0)^-nu decay law",
    )
    group.add_argument(
        "--saturation",
        type=float,
        default=None,
        metavar="FRAC",
        help=(
            "read-out saturation: clip per-tile dot-product estimates at "
            "FRAC of the chain's full-scale output (1.0 = exactly no-op)"
        ),
    )
    group.add_argument(
        "--spare-rows",
        type=int,
        default=0,
        metavar="N",
        help=(
            "redundant crossbar rows per tile: tiles whose stuck fraction "
            "exceeds --remap-threshold remap their N worst rows onto spares"
        ),
    )
    group.add_argument(
        "--remap-threshold",
        type=float,
        default=0.02,
        metavar="FRAC",
        help="stuck-cell fraction above which a tile engages its spare rows",
    )
    group.add_argument(
        "--fault-seed", type=int, default=0, help="seed of the fault masks"
    )


def _fault_model_from_args(args: argparse.Namespace):
    """The :class:`repro.faults.FaultModel` the flags describe (or ``None``)."""
    from repro.faults import FaultModel

    model = FaultModel(
        stuck_on_fraction=args.stuck_on,
        stuck_off_fraction=args.stuck_off,
        drift_nu=args.drift_nu,
        drift_time_s=args.drift_time,
        readout_saturation=args.saturation,
        remap_threshold=args.remap_threshold,
        seed=args.fault_seed,
    )
    return model if model.active else None


def build_parser() -> argparse.ArgumentParser:
    """The ``estimate`` argument parser (kept for backwards compatibility)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description=(
            "Estimate chip-level energy, latency and area of a DNN on the "
            "TIMELY, PRIME-like and ISAAC-like accelerator configurations."
        ),
    )
    parser.add_argument(
        "--model",
        default="vgg_d",
        help="model name from the zoo (default: vgg_d; see --list-models)",
    )
    parser.add_argument(
        "--configs",
        default="timely,prime,isaac",
        help="comma-separated subset of: timely, prime, isaac",
    )
    _add_arch_arguments(parser)
    parser.add_argument(
        "--pipelined",
        action="store_true",
        help="also estimate single-image latency under cross-layer pipelining",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON document instead of tables"
    )
    parser.add_argument(
        "--no-per-layer",
        action="store_true",
        help="print only the totals comparison table",
    )
    parser.add_argument(
        "--summary", action="store_true", help="also print the network summary"
    )
    parser.add_argument(
        "--list-models", action="store_true", help="list available models and exit"
    )
    return parser


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim run",
        description=(
            "Functionally simulate a model: push activations through the "
            "mapped crossbars via the time-domain circuit chains and report "
            "the output error against the float numpy reference."
        ),
    )
    parser.add_argument(
        "--model",
        default="cnn_1",
        help="model name from the zoo (default: cnn_1; see estimate --list-models)",
    )
    _add_arch_arguments(parser)
    parser.add_argument(
        "--mode",
        choices=("analog", "ideal"),
        default="analog",
        help="tile read-out: full time-domain chains or exact integer",
    )
    parser.add_argument(
        "--backend",
        choices=ENGINE_BACKENDS,
        default=ENGINE_BACKENDS[0],
        help=(
            "execution backend: packed per-slice tensors (fast, default) or "
            "the legacy per-tile crossbar objects"
        ),
    )
    parser.add_argument(
        "--batch",
        type=_positive_int,
        default=0,
        metavar="N",
        help=(
            "run a batch of N deterministic random images instead of a "
            "single image (omit for a single image); matmuls amortise "
            "over the batch"
        ),
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help=(
            "skip the float reference double-compute (throughput runs); "
            "relative errors are then not reported"
        ),
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=0.0,
        metavar="SCALE",
        help="noise severity: Section-V sigmas scaled by SCALE (0 = ideal)",
    )
    parser.add_argument(
        "--noise-seed", type=int, default=0, help="seed of the noise draws"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for weights and the input image"
    )
    _add_compute_arguments(parser)
    _add_fault_arguments(parser)
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "execute layer by layer against the cached state's backing "
            "files instead of wiring the whole network up front (requires "
            "--state-cache; implies a memory-mapped state load, so peak "
            "weight memory is the largest single layer, not the sum — "
            "outputs stay bit-identical to the resident path)"
        ),
    )
    _add_state_cache_arguments(parser)
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON document instead of a table"
    )
    return parser


def _add_state_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-cache",
        default=None,
        metavar="DIR",
        help=(
            "programmed-state cache directory: reuse the content-keyed "
            "programmed chip state across invocations instead of "
            "re-programming (created on first use)"
        ),
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help=(
            "memory-map cached states instead of materialising them "
            "(with --state-cache; the larger-than-RAM direction)"
        ),
    )


def build_program_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim program",
        description=(
            "Program a model's weights onto crossbars and persist the "
            "resulting chip state in a content-keyed cache directory — the "
            "expensive one-time phase, amortised by every later "
            "`run --state-cache` / `sweep --state-cache` invocation."
        ),
    )
    parser.add_argument(
        "--model",
        default="cnn_1",
        help="model name from the zoo (default: cnn_1; see estimate --list-models)",
    )
    _add_arch_arguments(parser)
    parser.add_argument(
        "--mode",
        choices=("analog", "ideal"),
        default="analog",
        help="tile read-out the state is packed for",
    )
    parser.add_argument(
        "--backend",
        choices=ENGINE_BACKENDS,
        default=ENGINE_BACKENDS[0],
        help="execution backend the state is packed for (default: packed)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed of the deterministic weights"
    )
    parser.add_argument(
        "--compute-dtype",
        choices=COMPUTE_DTYPES,
        default=COMPUTE_DTYPES[0],
        help=(
            "arithmetic precision the state is packed for (part of the "
            "content key: a float32 state never aliases a float64 one)"
        ),
    )
    parser.add_argument(
        "--state-cache",
        default=".state_cache",
        metavar="DIR",
        help="cache directory to program into (default: .state_cache)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON document instead of text"
    )
    return parser


def main_program(argv: Optional[Sequence[str]] = None) -> int:
    args = build_program_parser().parse_args(argv)

    try:
        network = _load_model(args.model)
        arch = _arch_from_args(args)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2

    from repro.engine import EngineError, ProgrammedStateCache

    ctx = SimContext(
        arch=arch,
        seed=args.seed,
        backend=args.backend,
        compute_dtype=args.compute_dtype,
    )
    cache = ProgrammedStateCache(root=args.state_cache)
    start = time.perf_counter()
    try:
        state, source = cache.get_or_program(network, ctx, mode=args.mode)
    except EngineError as exc:
        print(f"cannot program {args.model!r}: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    path = cache.path_for(state.key)

    if args.json:
        doc = {
            "model": args.model,
            "mode": args.mode,
            "backend": args.backend,
            "seed": args.seed,
            "compute_dtype": args.compute_dtype,
            "key": state.key,
            "source": source,
            "state_mb": state.nbytes / 1e6,
            "layers": len(state.layers),
            "program_s": elapsed,
            "path": str(path),
        }
        print(json.dumps(doc, indent=2))
        return 0

    action = "programmed" if source == "programmed" else f"cache hit ({source})"
    print(
        f"{action}: {args.model} ({args.mode}, {args.backend} backend, "
        f"seed {args.seed}) -> {state.key}"
    )
    print(
        f"  {len(state.layers)} layers, {state.nbytes / 1e6:.1f} MB, "
        f"{elapsed:.2f}s"
    )
    print(f"  {path}")
    return 0


def _default_bench_output() -> str:
    """Resolve the default artifact path to the repository root.

    The bench trajectory is recorded in-repo (not only as a CI artifact), so
    the default walks up from this file looking for ``pyproject.toml``;
    installed outside a checkout it falls back to the working directory.
    """
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return str(parent / "BENCH_engine.json")
    return "BENCH_engine.json"


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim bench",
        description=(
            "Performance smoke: time the vgg_d estimator, a cnn_1 engine run "
            "on both execution backends (packed vs legacy tiled, with peak "
            "memory) and the im2col kernel, run a branching-model engine "
            "smoke and the liveness-freeing memory comparison, and write the "
            "numbers to a JSON artifact at the repository root."
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help="path of the JSON artifact (default: BENCH_engine.json at the repo root)",
    )
    parser.add_argument(
        "--estimator-model", default="vgg_d", help="model for the estimator timing"
    )
    parser.add_argument(
        "--engine-model", default="cnn_1", help="model for the engine smoke"
    )
    parser.add_argument(
        "--engine-batch",
        type=int,
        default=4,
        metavar="N",
        help="batch size of the engine backend comparison (default: 4)",
    )
    parser.add_argument(
        "--deep-model",
        default=None,
        metavar="MODEL",
        help=(
            "additionally run MODEL (e.g. vgg_d) end to end on the packed "
            "analog backend without validation and record its timing; "
            "skipped by default because deep models take minutes"
        ),
    )
    parser.add_argument(
        "--sweep-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker count of the parallel leg of the sweep smoke (default: 2)",
    )
    parser.add_argument(
        "--sweep-trials",
        type=int,
        default=16,
        metavar="N",
        help=(
            "Monte-Carlo trials per sweep-smoke grid point (default: 16 — "
            "enough that trial compute dominates pool bookkeeping)"
        ),
    )
    parser.add_argument(
        "--sweep-model",
        default="mlp_l",
        metavar="MODEL",
        help=(
            "model of the sweep smoke (default: mlp_l — programming-heavy "
            "FC stack, so the program-once amortisation is visible against "
            "the per-trial forward cost)"
        ),
    )
    parser.add_argument(
        "--branching-model",
        default="resnet_smoke",
        metavar="MODEL",
        help=(
            "branching-topology engine smoke: a validated analog run of a "
            "DAG model (default: resnet_smoke — truncated ResNet stem + one "
            "residual block)"
        ),
    )
    parser.add_argument(
        "--liveness-model",
        default="bottleneck_smoke",
        metavar="MODEL",
        help=(
            "model of the liveness-freeing memory comparison: peak live "
            "activations with vs without freeing (default: bottleneck_smoke)"
        ),
    )
    parser.add_argument(
        "--stream-model",
        default="resnet_18",
        metavar="MODEL",
        help=(
            "deep model of the streaming/dtype section: float64-vs-float32 "
            "packed forward timing plus resident-vs-streamed subprocess "
            "peak-memory comparison (default: resnet_18 — deep enough that "
            "the gemm dominates and the per-layer memory bound is visible)"
        ),
    )
    return parser


def _load_model(name: str) -> Network:
    return build_model(name)


def format_per_layer(estimate: NetworkEstimate) -> str:
    """Per-layer energy / latency / area table for one accelerator."""
    lines = [f"{estimate.accelerator} — {estimate.model}, per layer"]
    header = (
        f"{'layer':<22} {'kind':<6} {'xbars':>6} {'util':>6} "
        f"{'energy/uJ':>11} {'latency/us':>11} {'area/mm2':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    area_per_layer = estimate.area_mm2 / max(estimate.total_crossbars, 1)
    for layer in estimate.layers:
        lines.append(
            f"{layer.name:<22} {layer.kind:<6} {layer.crossbars:>6} "
            f"{layer.utilization:>6.1%} {layer.energy_pj / 1e6:>11.3f} "
            f"{layer.latency_ns / 1e3:>11.2f} "
            f"{layer.crossbars * area_per_layer:>9.3f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<22} {'':<6} {estimate.total_crossbars:>6} {'':>6} "
        f"{estimate.total_energy_pj / 1e6:>11.3f} "
        f"{estimate.total_latency_ns / 1e3:>11.2f} {estimate.area_mm2:>9.3f}"
    )
    return "\n".join(lines)


def format_comparison(estimates: Sequence[NetworkEstimate]) -> str:
    """Totals table comparing all estimated accelerator configurations."""
    reference = estimates[0]
    pipelined = reference.pipelined_latency_ns is not None
    lines = [f"Comparison — {reference.model}"]
    header = (
        f"{'accelerator':<12} {'energy/uJ':>11} {'latency/ms':>11} "
        + (f"{'pipe/ms':>9} " if pipelined else "")
        + f"{'area/mm2':>9} {'TOPS/W':>9} {'GOPS':>9} "
        f"{'eff. vs ' + reference.accelerator:>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for est in estimates:
        ratio = est.tops_per_watt / reference.tops_per_watt
        pipe = (
            f"{est.pipelined_latency_ns / 1e6:>9.3f} " if pipelined else ""
        )
        lines.append(
            f"{est.accelerator:<12} {est.total_energy_pj / 1e6:>11.3f} "
            f"{est.total_latency_ns / 1e6:>11.3f} "
            + pipe
            + f"{est.area_mm2:>9.2f} "
            f"{est.tops_per_watt:>9.3f} {est.gops:>9.1f} {ratio:>13.3f}x"
        )
    return "\n".join(lines)


def estimate_to_dict(estimate: NetworkEstimate, per_layer: bool = True) -> dict:
    """JSON-serialisable view of one :class:`NetworkEstimate`."""
    doc = {
        "accelerator": estimate.accelerator,
        "energy_uj": estimate.total_energy_pj / 1e6,
        "latency_ms": estimate.total_latency_ns / 1e6,
        "pipelined_latency_ms": (
            estimate.pipelined_latency_ns / 1e6
            if estimate.pipelined_latency_ns is not None
            else None
        ),
        "area_mm2": estimate.area_mm2,
        "tops_per_watt": estimate.tops_per_watt,
        "gops": estimate.gops,
        "pipelined_gops": estimate.pipelined_gops,
        "crossbars": estimate.total_crossbars,
    }
    if per_layer:
        doc["layers"] = [
            {
                "name": layer.name,
                "kind": layer.kind,
                "crossbars": layer.crossbars,
                "utilization": layer.utilization,
                "energy_pj": layer.energy_pj,
                "latency_ns": layer.latency_ns,
            }
            for layer in estimate.layers
        ]
    return doc


def main_estimate(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_models:
        print("\n".join(list_models()))
        return 0

    try:
        network = _load_model(args.model)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        config = _arch_from_args(args)
    except ValueError as exc:
        print(f"invalid crossbar configuration: {exc}", file=sys.stderr)
        return 2
    factories = accelerator_factories()
    names = [name.strip().lower() for name in args.configs.split(",") if name.strip()]
    unknown = [name for name in names if name not in factories]
    if unknown or not names:
        print(
            f"unknown configs {', '.join(unknown) or '(none)'}; "
            f"choose from: {', '.join(factories)}",
            file=sys.stderr,
        )
        return 2
    specs = [factories[name](config) for name in names]

    estimates: List[NetworkEstimate] = compare_accelerators(
        network, specs, config, pipelined=args.pipelined
    )

    if args.json:
        doc = {
            "model": args.model,
            "config": {
                "rows": config.rows,
                "cols": config.cols,
                "cell_bits": config.cell_bits,
                "weight_bits": config.weight_bits,
                "input_bits": config.input_bits,
            },
            "pipelined": args.pipelined,
            "estimates": [
                estimate_to_dict(est, per_layer=not args.no_per_layer)
                for est in estimates
            ],
        }
        print(json.dumps(doc, indent=2))
        return 0

    if args.summary:
        print(network.summary())
        print()
    if not args.no_per_layer:
        for estimate in estimates:
            print(format_per_layer(estimate))
            print()
    print(format_comparison(estimates))
    return 0


def main_run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_run_parser().parse_args(argv)

    try:
        network = _load_model(args.model)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        arch = _arch_from_args(args)
        if args.noise < 0:
            raise ValueError("--noise scale must be non-negative")
        if args.stream and args.state_cache is None:
            raise ValueError("--stream needs --state-cache (a disk-backed state)")
        compute = _compute_kwargs(args)
        noise = (
            HardwareNoiseConfig.scaled(args.noise, seed=args.noise_seed)
            if args.noise > 0
            else None
        )
        faults = _fault_model_from_args(args)
        if faults is not None and args.mode != "analog":
            raise ValueError(
                "fault injection needs --mode analog (ideal mode has no "
                "conductances to corrupt)"
            )
    except ValueError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2

    # import here so `estimate` stays importable without the engine package
    from repro.engine import (
        EngineError,
        NetworkExecutor,
        ProgrammedState,
        ProgrammedStateCache,
    )

    validate = not args.no_validate
    ctx = SimContext(
        arch=arch,
        noise=noise,
        seed=args.seed,
        backend=args.backend,
        faults=faults,
        **compute,
    )
    start = time.perf_counter()
    try:
        if args.state_cache is not None:
            # program-once/run-many: the expensive programming phase is
            # served from the content-keyed cache when a previous
            # invocation (or `program`) already built this chip state.
            # Streaming loads memory-mapped so the full state is never
            # materialised in this process.
            cache = ProgrammedStateCache(
                root=args.state_cache, mmap=args.mmap or args.stream
            )
            state, cache_source = cache.get_or_program(network, ctx, mode=args.mode)
            if args.stream and state.source_path is None:
                # freshly programmed this invocation: re-open the snapshot
                # just written so the streamed run has backing files
                state = ProgrammedState.load(cache.ensure_on_disk(state), mmap=True)
            program_s = time.perf_counter() - start
            executor = NetworkExecutor(
                network, ctx, mode=args.mode, state=state, stream=args.stream
            )
        else:
            cache_source = "off"
            executor = NetworkExecutor(network, ctx, mode=args.mode)
            program_s = time.perf_counter() - start
        run_start = time.perf_counter()
        x = executor.random_batch(args.batch) if args.batch > 0 else None
        result = executor.run(x, validate=validate)
    except EngineError as exc:
        print(f"engine cannot run {args.model!r}: {exc}", file=sys.stderr)
        return 2
    run_s = time.perf_counter() - run_start
    elapsed = time.perf_counter() - start

    def _err(value: float) -> Optional[float]:
        return value if validate else None

    if args.json:
        doc = {
            "model": args.model,
            "mode": args.mode,
            "backend": args.backend,
            "batch": args.batch,
            "validate": validate,
            "noise_scale": args.noise,
            "seed": args.seed,
            "compute_dtype": args.compute_dtype,
            "chunk_bytes": args.chunk_bytes,
            "kernel": _resolved_kernel(args.kernel),
            "threads": args.threads,
            "stream": args.stream,
            "crossbars": executor.crossbars,
            "rel_error": _err(result.rel_error),
            "elapsed_s": elapsed,
            "program_s": program_s,
            "run_s": run_s,
            "peak_wired_mb": result.peak_wired_bytes / 1e6,
            "peak_rss_mb": _peak_rss_mb(),
            "programming": {
                "cache": cache_source,
                "key": executor.state.key,
            },
            "faults": (
                {
                    "stuck_on_fraction": faults.stuck_on_fraction,
                    "stuck_off_fraction": faults.stuck_off_fraction,
                    "drift_nu": faults.drift_nu,
                    "drift_time_s": faults.drift_time_s,
                    "readout_saturation": faults.readout_saturation,
                    "remap_threshold": faults.remap_threshold,
                    "spare_rows": arch.spare_rows,
                    "seed": faults.seed,
                    "stuck_cells": result.stuck_cells,
                    "remapped_rows": result.remapped_rows,
                }
                if faults is not None
                else None
            ),
            "layers": [
                {
                    "name": trace.name,
                    "kind": trace.kind,
                    "crossbars": trace.crossbars,
                    "rel_error": _err(trace.rel_error),
                    **(
                        {
                            "stuck_cells": trace.stuck_cells,
                            "remapped_rows": trace.remapped_rows,
                        }
                        if faults is not None
                        else {}
                    ),
                }
                for trace in result.traces
            ],
        }
        print(json.dumps(doc, indent=2))
        return 0

    batch_note = f", batch {args.batch}" if args.batch > 0 else ""
    dtype_note = (
        f", {args.compute_dtype}" if args.compute_dtype != COMPUTE_DTYPES[0] else ""
    )
    stream_note = ", streamed" if args.stream else ""
    kernel_note = (
        f", kernel {_resolved_kernel(args.kernel)}" if args.kernel != "auto" else ""
    )
    threads_note = f", {args.threads} threads" if args.threads > 1 else ""
    print(
        f"Engine run — {args.model} ({args.mode}, {args.backend} backend, "
        f"noise x{args.noise:g}, seed {args.seed}{batch_note}"
        f"{dtype_note}{stream_note}{kernel_note}{threads_note})"
    )
    header = f"{'layer':<22} {'kind':<8} {'xbars':>6} {'rel. error':>12}"
    print(header)
    print("-" * len(header))
    for trace in result.traces:
        err = f"{trace.rel_error:.3e}" if validate else "-"
        print(f"{trace.name:<22} {trace.kind:<8} {trace.crossbars:>6} {err:>12}")
    print("-" * len(header))
    timing = f"{elapsed:.2f}s ({program_s:.2f}s programming + {run_s:.2f}s run)"
    if args.state_cache is not None:
        timing += f", state {executor.state.key}: {cache_source}"
    if args.stream:
        timing += f", peak wired {result.peak_wired_bytes / 1e6:.1f} MB"
    if faults is not None:
        print(
            f"faults: {result.stuck_cells} stuck cells, "
            f"{result.remapped_rows} rows remapped onto spares "
            f"(spare rows {arch.spare_rows}, threshold "
            f"{faults.remap_threshold:g})"
        )
    if validate:
        print(
            f"output rel. error vs float reference: {result.rel_error:.3e}  "
            f"({executor.crossbars} crossbars, {timing})"
        )
    else:
        print(
            f"validation skipped (--no-validate)  "
            f"({executor.crossbars} crossbars, {timing})"
        )
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim sweep",
        description=(
            "Monte-Carlo accuracy sweep: run a (model x noise-scale x trial "
            "x cell-bits x backend) grid of engine trials through a process "
            "pool, record each trial in a resumable JSON-lines store and "
            "reduce the rows to mean/p95 relative error per noise scale."
        ),
    )
    parser.add_argument(
        "--model",
        default="cnn_1",
        help="comma-separated model names from the zoo (default: cnn_1)",
    )
    parser.add_argument(
        "--noise-grid",
        default="0,0.5,1",
        metavar="SCALES",
        help=(
            "comma-separated noise severities; each scales the Section-V "
            "sigmas (0 = ideal hardware; default: 0,0.5,1)"
        ),
    )
    parser.add_argument(
        "--stuck-grid",
        default="0",
        metavar="FRACS",
        help=(
            "comma-separated total stuck-cell fractions to sweep (split "
            "evenly between stuck-at-G_on and stuck-at-G_off; each trial "
            "samples an independent seed-stable chip realisation; "
            "default: 0 — no faults)"
        ),
    )
    parser.add_argument(
        "--trials",
        type=_positive_int,
        default=8,
        help="Monte-Carlo trials per grid point (default: 8)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default="auto",
        help=(
            "read-out/im2col kernel tier for every trial, exported to "
            "pool workers via REPRO_KERNEL (default: auto; tiers are "
            "bit-identical in float64 so content keys and resumability "
            "are unaffected)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers; <=1 runs inline (default: 1)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help=(
            "retry a failed/crashed unit of work up to N times with "
            "exponential backoff before giving up on it (default: 2)"
        ),
    )
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "stall watchdog: restart the pool when no unit of work "
            "completes within SECONDS per in-flight trial (0 = disabled)"
        ),
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "record trials that exhaust their retries as structured error "
            "rows and finish the sweep instead of aborting; a later "
            "--resume retries exactly those trials"
        ),
    )
    parser.add_argument(
        "--cell-bits",
        default="4",
        metavar="BITS",
        help="comma-separated bits-per-cell grid values (default: 4)",
    )
    parser.add_argument(
        "--backend",
        default=ENGINE_BACKENDS[0],
        metavar="NAME",
        help=(
            "comma-separated engine backends to sweep "
            f"(choose from: {', '.join(ENGINE_BACKENDS)}; default: packed)"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("analog", "ideal"),
        default="analog",
        help="tile read-out: full time-domain chains or exact integer",
    )
    parser.add_argument("--rows", type=int, default=256, help="crossbar rows")
    parser.add_argument("--cols", type=int, default=256, help="crossbar columns")
    parser.add_argument("--weight-bits", type=int, default=8, help="weight precision")
    parser.add_argument("--input-bits", type=int, default=8, help="input precision")
    parser.add_argument(
        "--compute-dtype",
        default=COMPUTE_DTYPES[0],
        metavar="DTYPES",
        help=(
            "comma-separated packed-engine precisions to sweep "
            f"(choose from: {', '.join(COMPUTE_DTYPES)}; default: float64 — "
            "each dtype gets its own content keys and programmed state)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed: fixes weights/input; per-trial noise seeds derive from it",
    )
    parser.add_argument(
        "--output",
        default="sweep_results.jsonl",
        help="JSON-lines result store (default: sweep_results.jsonl)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "keep the existing store and skip trials whose content keys are "
            "already recorded (a completed sweep computes 0 new trials)"
        ),
    )
    parser.add_argument(
        "--state-cache",
        default=None,
        metavar="DIR",
        help=(
            "programmed-state cache directory: reuse programmed chip states "
            "across sweep invocations (each distinct model/arch/seed group "
            "is programmed at most once either way; the cache persists the "
            "snapshots beyond this run)"
        ),
    )
    parser.add_argument(
        "--per-layer",
        action="store_true",
        help="also print per-layer mean error attribution under each grid row",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON document instead of a table"
    )
    return parser


def _parse_list(text: str, kind, what: str) -> list:
    values = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            values.append(kind(part))
        except ValueError:
            raise ValueError(f"invalid {what} value {part!r}")
    if not values:
        raise ValueError(f"at least one {what} value is required")
    return values


def main_sweep(argv: Optional[Sequence[str]] = None) -> int:
    args = build_sweep_parser().parse_args(argv)

    from repro.sweep import SweepGrid, SweepStore, format_summary, run_sweep, summarize

    try:
        models = _parse_list(args.model, str, "model")
        for name in models:
            _load_model(name)  # fail fast on unknown models
        grid = SweepGrid(
            models=tuple(models),
            noise_scales=tuple(_parse_list(args.noise_grid, float, "--noise-grid")),
            trials=args.trials,
            cell_bits=tuple(_parse_list(args.cell_bits, int, "--cell-bits")),
            backends=tuple(_parse_list(args.backend, str, "--backend")),
            seed=args.seed,
            mode=args.mode,
            rows=args.rows,
            cols=args.cols,
            weight_bits=args.weight_bits,
            input_bits=args.input_bits,
            compute_dtypes=tuple(
                _parse_list(args.compute_dtype, str, "--compute-dtype")
            ),
            stuck_fractions=tuple(_parse_list(args.stuck_grid, float, "--stuck-grid")),
        )
        if args.workers < 0:
            raise ValueError("--workers must be non-negative")
        if args.max_retries < 0:
            raise ValueError("--max-retries must be non-negative")
        if args.trial_timeout < 0:
            raise ValueError("--trial-timeout must be non-negative")
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid sweep configuration: {exc}", file=sys.stderr)
        return 2

    if args.kernel != "auto":
        # Pool workers inherit the environment, so exporting the tier here
        # reaches every trial without widening TrialSpec or content keys
        # (the tier is bit-identical metadata, not a result dimension).
        os.environ["REPRO_KERNEL"] = args.kernel

    store = SweepStore(args.output)
    progress = None if args.json else print
    from repro.engine import EngineError, ProgrammedStateCache

    cache = (
        ProgrammedStateCache(root=args.state_cache)
        if args.state_cache is not None
        else None
    )
    try:
        outcome = run_sweep(
            grid,
            store,
            workers=args.workers,
            resume=args.resume,
            progress=progress,
            cache=cache,
            max_retries=args.max_retries,
            trial_timeout_s=args.trial_timeout or None,
            keep_going=args.keep_going,
        )
    except EngineError as exc:
        print(f"sweep cannot run: {exc}", file=sys.stderr)
        return 2
    summary = summarize(outcome.rows)

    if args.json:
        doc = {
            "grid": grid.to_dict(),
            "output": str(store.path),
            "trials": len(grid),
            "computed": outcome.computed,
            "skipped": outcome.skipped,
            "executed": outcome.executed,
            "failed": outcome.failed,
            "workers": args.workers,
            "kernel": _resolved_kernel(args.kernel),
            "elapsed_s": outcome.elapsed_s,
            "program_s": outcome.program_s,
            "pool_startup_s": outcome.pool_startup_s,
            "trials_per_sec": outcome.trials_per_sec,
            "summary": summary,
        }
        print(json.dumps(doc, indent=2))
        return 0

    failed_note = f", {outcome.failed} FAILED" if outcome.failed else ""
    print(
        f"Sweep — {','.join(grid.models)}: {len(grid)} trials "
        f"({outcome.computed} computed via {outcome.executed} engine runs, "
        f"{outcome.skipped} skipped{failed_note}, {args.workers} worker(s), "
        f"{outcome.elapsed_s:.2f}s, {outcome.trials_per_sec:.1f} trials/s)"
    )
    print(f"store: {store.path}")
    print()
    print(format_summary(summary, per_layer=args.per_layer))
    return 0


def _timed_engine_run(
    network, ctx, backend: str, x, repeats: int = 5, with_rel_error: bool = False
) -> dict:
    """Engine timing (programming and execution separately) plus peak memory.

    With ``with_rel_error`` one additional validated run records the
    end-to-end relative error against the float reference (kept out of the
    timed runs — the double-compute would hide the engine timing).

    Weights are programmed **once** (no second construction just for the
    memory figure, which used to double the ~29 s vgg_d programming cost):
    the construction and one forward pass run under :mod:`tracemalloc`, so
    ``peak_mb`` covers the true peak — programming transients included.
    ``program_s`` is therefore measured under tracing; programming is
    dominated by large tensor allocations, where the per-allocation tracing
    overhead is small, and the honest trade is preferred over an
    incomplete peak.  ``elapsed_s`` is then re-timed best-of-``repeats``
    with tracing **off**, so the headline forward timing carries no
    overhead.  All timed runs skip validation (the float double-compute
    would hide the backend difference).
    """
    import tracemalloc

    from repro.engine import NetworkExecutor

    tracemalloc.start()
    start = time.perf_counter()
    executor = NetworkExecutor(network, ctx, mode="analog", backend=backend)
    program_s = time.perf_counter() - start
    executor.run(x, validate=False)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        executor.run(x, validate=False)
        best = min(best, time.perf_counter() - start)
    timing = {
        "elapsed_s": best,
        "program_s": program_s,
        "peak_mb": peak / 1e6,
        "programmed_mb": executor.programmed_bytes / 1e6,
        "crossbars": executor.crossbars,
    }
    if with_rel_error:
        timing["rel_error"] = executor.run(x).rel_error
    return timing


def main_bench(argv: Optional[Sequence[str]] = None) -> int:
    args = build_bench_parser().parse_args(argv)
    output = args.output if args.output is not None else _default_bench_output()

    import numpy as np

    from repro.engine import NetworkExecutor
    from repro.nn import functional as F

    try:
        estimator_net = _load_model(args.estimator_model)
        engine_net = _load_model(args.engine_model)
        branching_net = _load_model(args.branching_model)
        liveness_net = _load_model(args.liveness_model)
        stream_net = _load_model(args.stream_model)
        _load_model(args.sweep_model)  # fail fast before the timed legs
        deep_net = _load_model(args.deep_model) if args.deep_model else None
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    # 1. analytic estimator over the three paper configurations
    start = time.perf_counter()
    estimates = compare_accelerators(estimator_net, pipelined=True)
    estimator_elapsed = time.perf_counter() - start

    # 2. functional engine: packed vs legacy tiled backend on the same batch
    ctx = SimContext()
    executor = NetworkExecutor(engine_net, ctx, mode="analog")
    batch = max(args.engine_batch, 1)
    x = executor.random_batch(batch)
    backends = {
        backend: _timed_engine_run(engine_net, ctx, backend, x)
        for backend in ("packed", "tiled")
    }
    # one validated packed run of the actual batch for the accuracy figure
    result = executor.run(x)

    # 3. im2col kernel micro-benchmark (vgg_d conv1_1 geometry), best of 3
    xi = np.random.default_rng(stable_seed("bench", "im2col")).normal(
        size=(3, 224, 224)
    )

    def best_of(func, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            func(xi, 3, 1, 1)
            best = min(best, time.perf_counter() - start)
        return best

    loop_elapsed = best_of(F._im2col_loop)
    vectorized_elapsed = best_of(F.im2col)

    # 4. optional deep-model run on the packed backend (no validation),
    # measured with the same methodology as the backend comparison above
    deep = None
    if deep_net is not None:
        deep = {
            "model": args.deep_model,
            "mode": "analog",
            "backend": "packed",
            "validate": False,
            **_timed_engine_run(deep_net, ctx, "packed", None, repeats=1),
        }

    # 5. Monte-Carlo sweep smoke: the legacy program-every-trial serial path
    # against the program-once paths.  The grid carries enough noisy trials
    # that per-trial compute dominates bookkeeping, and the pooled leg runs
    # on a pre-warmed pool with its startup reported separately — so
    # parallel_speedup measures steady-state throughput of the new path
    # (shared programming + chunked pool) over the old one (re-programming
    # in every trial, inline), not process spawn overhead.
    import tempfile

    from repro.sweep import SweepGrid, SweepStore, run_sweep, warm_pool

    grid = SweepGrid(
        models=(args.sweep_model,),
        noise_scales=(0.0, 1.0),
        trials=args.sweep_trials,
        seed=0,
    )
    with tempfile.TemporaryDirectory() as tmp:
        legacy = run_sweep(
            grid,
            SweepStore(Path(tmp) / "legacy.jsonl"),
            workers=1,
            share_state=False,
        )
        shared = run_sweep(grid, SweepStore(Path(tmp) / "shared.jsonl"), workers=1)
        pool, pool_startup_s = warm_pool(args.sweep_workers)
        try:
            pooled = run_sweep(
                grid,
                SweepStore(Path(tmp) / "pooled.jsonl"),
                workers=args.sweep_workers,
                pool=pool,
            )
        finally:
            pool.shutdown()
    sweep = {
        "model": args.sweep_model,
        "trials": len(grid),
        "engine_runs": legacy.executed,
        "workers": args.sweep_workers,
        # legacy path: every trial re-programs its chip, inline
        "serial_s": legacy.elapsed_s,
        # program-once path, still inline: isolates the amortisation win
        "shared_serial_s": shared.elapsed_s,
        "program_s": shared.program_s,
        # program-once path through the (pre-warmed) pool; startup separate
        "parallel_s": pooled.elapsed_s,
        "pool_startup_s": pool_startup_s,
        "serial_trials_per_sec": legacy.trials_per_sec,
        "parallel_trials_per_sec": pooled.trials_per_sec,
        # the headline: new steady-state path vs the old path
        "parallel_speedup": legacy.elapsed_s / pooled.elapsed_s,
        # pool cost/benefit at this core count: pooled vs inline, both shared
        "steady_state_speedup": shared.elapsed_s / pooled.elapsed_s,
    }

    # 5b. programmed-state cache: one cnn_1-sized state programmed cold,
    # then served from a fresh cache's disk directory and from the LRU
    from repro.engine import ProgrammedStateCache

    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = ProgrammedStateCache(root=tmp)
        start = time.perf_counter()
        state, source_cold = cold_cache.get_or_program(engine_net, ctx)
        cache_program_s = time.perf_counter() - start
        fresh_cache = ProgrammedStateCache(root=tmp)  # models a new process
        start = time.perf_counter()
        _, source_disk = fresh_cache.get_or_program(engine_net, ctx)
        disk_hit_s = time.perf_counter() - start
        start = time.perf_counter()
        _, source_memory = fresh_cache.get_or_program(engine_net, ctx)
        memory_hit_s = time.perf_counter() - start
    programming_cache = {
        "model": args.engine_model,
        "key": state.key,
        "state_mb": state.nbytes / 1e6,
        "sources": [source_cold, source_disk, source_memory],
        "program_s": cache_program_s,
        "disk_hit_s": disk_hit_s,
        "memory_hit_s": memory_hit_s,
        "disk_speedup": cache_program_s / disk_hit_s,
    }

    # 6. branching-topology engine smoke: a DAG model (residual add +
    # projection branch) timed with the same methodology as the backend
    # comparison, plus one validated run for the rel-error figure
    branching = {
        "model": args.branching_model,
        "mode": "analog",
        "backend": ctx.backend,
        **_timed_engine_run(
            branching_net, ctx, ctx.backend, None, repeats=3, with_rel_error=True
        ),
    }

    # 7. liveness-based activation freeing: peak live activation bytes of
    # the graph executor with freeing on vs off (same run otherwise)
    liveness_exec = NetworkExecutor(liveness_net, ctx, mode="ideal")
    liveness_batch = liveness_exec.random_batch(2)
    freed = liveness_exec.run(liveness_batch, validate=False, free_activations=True)
    kept = liveness_exec.run(liveness_batch, validate=False, free_activations=False)
    liveness = {
        "model": args.liveness_model,
        "batch": 2,
        "freed_peak_mb": freed.peak_activation_bytes / 1e6,
        "unfreed_peak_mb": kept.peak_activation_bytes / 1e6,
        "reduction": kept.peak_activation_bytes / freed.peak_activation_bytes,
    }

    # 7b. fault injection: the same cnn_1-class chip clean, with 0.5% stuck
    # cells, and with the same stuck cells remapped onto spare rows —
    # graceful degradation must claw back part of the fault-induced error.
    # (0.5% keeps the degradation in the regime where healing cells
    # reliably lowers the error; at a few percent the output is fault-
    # dominated and the recovery margin is no longer monotone.)
    from repro.faults import FaultModel

    fault_model = FaultModel(
        stuck_on_fraction=0.0025, stuck_off_fraction=0.0025, seed=0
    )
    fb_clean = NetworkExecutor(engine_net, ctx, mode="analog").run()
    fb_faulted = NetworkExecutor(
        engine_net, ctx.with_faults(fault_model), mode="analog"
    ).run()
    remap_ctx = SimContext(
        arch=ArchSpec(spare_rows=16),
        faults=FaultModel(
            stuck_on_fraction=0.0025,
            stuck_off_fraction=0.0025,
            remap_threshold=0.0,  # same masks (threshold is not in the rng
            seed=0,  # salt), but every faulty tile engages its spares
        ),
    )
    fb_remapped = NetworkExecutor(engine_net, remap_ctx, mode="analog").run()
    faults_bench = {
        "model": args.engine_model,
        "stuck_fraction": 0.005,
        "spare_rows": 16,
        "clean_rel_error": fb_clean.rel_error,
        "faulted_rel_error": fb_faulted.rel_error,
        "remapped_rel_error": fb_remapped.rel_error,
        "stuck_cells": fb_faulted.stuck_cells,
        "remapped_rows": fb_remapped.remapped_rows,
        "healed_ratio": (
            fb_faulted.rel_error / fb_remapped.rel_error
            if fb_remapped.rel_error
            else None
        ),
    }

    # 8. streamed / float32 / chunk-fused execution.
    #    (a) dtype: the same deep packed analog forward at float64 vs
    #    float32 — the gemm and read-out chain drop to single precision
    #    while digital recombination stays double
    dtype_runs = {
        dtype: _timed_engine_run(
            stream_net, SimContext(compute_dtype=dtype), "packed", None, repeats=3
        )
        for dtype in COMPUTE_DTYPES
    }
    #    (b) chunking: the section-2 cnn_1 batch with a bounded read-out
    #    working set, against the unchunked packed peak measured above
    chunk_bytes = 1 << 16
    chunked = _timed_engine_run(
        engine_net, SimContext(chunk_bytes=chunk_bytes), "packed", x, repeats=3
    )
    #    (c) streaming: resident vs streamed subprocess runs against one
    #    disk-backed programmed state, compared on self-reported peak RSS
    #    (whole process) and peak wired weight bytes (deterministic)
    import subprocess

    with tempfile.TemporaryDirectory() as tmp:
        ProgrammedStateCache(root=tmp).get_or_program(stream_net, SimContext())

        def _stream_leg(stream: bool) -> dict:
            cmd = [
                sys.executable,
                "-m",
                "repro.sim",
                "run",
                "--model",
                args.stream_model,
                "--state-cache",
                tmp,
                "--no-validate",
                "--json",
            ]
            if stream:
                cmd.append("--stream")
            proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
            return json.loads(proc.stdout)

        resident_leg = _stream_leg(False)
        streamed_leg = _stream_leg(True)
    streaming = {
        "model": args.stream_model,
        "dtype": {
            "float64_s": dtype_runs["float64"]["elapsed_s"],
            "float32_s": dtype_runs["float32"]["elapsed_s"],
            "float32_speedup": (
                dtype_runs["float64"]["elapsed_s"]
                / dtype_runs["float32"]["elapsed_s"]
            ),
        },
        "chunked": {
            "model": args.engine_model,
            "chunk_bytes": chunk_bytes,
            "peak_mb": chunked["peak_mb"],
            "unchunked_peak_mb": backends["packed"]["peak_mb"],
            "reduction": backends["packed"]["peak_mb"] / chunked["peak_mb"],
            "elapsed_s": chunked["elapsed_s"],
        },
        "stream": {
            "resident_peak_rss_mb": resident_leg["peak_rss_mb"],
            "streamed_peak_rss_mb": streamed_leg["peak_rss_mb"],
            # peak_rss_mb degrades to null on platforms without procfs or
            # getrusage — the ratio then degrades with it instead of raising
            "rss_reduction": (
                resident_leg["peak_rss_mb"] / streamed_leg["peak_rss_mb"]
                if resident_leg["peak_rss_mb"] and streamed_leg["peak_rss_mb"]
                else None
            ),
            "resident_peak_wired_mb": resident_leg["peak_wired_mb"],
            "streamed_peak_wired_mb": streamed_leg["peak_wired_mb"],
            "wired_reduction": (
                resident_leg["peak_wired_mb"] / streamed_leg["peak_wired_mb"]
            ),
            "resident_run_s": resident_leg["run_s"],
            "streamed_run_s": streamed_leg["run_s"],
        },
    }

    # 9. kernel dispatch: the fused time-domain read-out chain timed per
    # available tier on one resnet_18-class charge block (3 input slices x
    # 2 weight slices x 3136 positions x 64 columns, the conv2_x working
    # set), every tier fed identical inputs through the public dispatch
    # entry point; plus the threaded chunk walk at 1/2/4 workers on the
    # section-2 batch.  Tiers are bit-identical in float64 so the fastest
    # result is also the reference result.
    from repro.circuits.timing import TimeDomainChainSpec
    from repro.kernels import dispatch as kernel_dispatch

    kscalars = TimeDomainChainSpec.from_context(ctx).scalars()
    krng = np.random.default_rng(stable_seed("bench", "kernels"))
    kcharges = krng.random((3, 2, 1, 3136, 64)) * 1e-12
    kdelays = krng.random((3, 1, 1, 3136, 1)) * 1e-9
    kshifts = np.asarray([16.0, 1.0])
    krec = np.empty((1, 3136, 64))
    kwork = np.empty_like(kcharges)

    def _time_tier(tier: str, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            np.copyto(kwork, kcharges)
            start = time.perf_counter()
            kernel_dispatch.readout_fused(
                kwork,
                kdelays,
                kscalars,
                out=kwork,
                saturation=1.2,
                shifts=kshifts,
                recombine_out=krec,
                kernel=tier,
            )
            best = min(best, time.perf_counter() - start)
        return best

    tier_times = {tier: _time_tier(tier) for tier in kernel_dispatch.available()}
    threaded_runs = {
        workers: _timed_engine_run(
            engine_net,
            SimContext(chunk_bytes=1 << 16, threads=workers),
            "packed",
            x,
            repeats=3,
        )["elapsed_s"]
        for workers in (1, 2, 4)
    }
    kernels_bench = {
        "tiers": list(kernel_dispatch.available()),
        "default": kernel_dispatch.default_kernel(),
        "unavailable": kernel_dispatch.unavailable_reasons(),
        "cores": os.cpu_count() or 1,
        "readout_elements": int(kcharges.size),
        "readout_s": tier_times,
        "readout_gelems_per_sec": {
            tier: kcharges.size / elapsed / 1e9
            for tier, elapsed in tier_times.items()
        },
        # headline: compiled fused chain vs the numpy reference chain
        "fused_speedup": (
            tier_times["numpy"] / tier_times["c"] if "c" in tier_times else None
        ),
        "threaded": {
            "model": args.engine_model,
            "chunk_bytes": 1 << 16,
            "elapsed_s": {str(w): t for w, t in threaded_runs.items()},
            "speedup": threaded_runs[1] / min(threaded_runs[2], threaded_runs[4]),
        },
    }

    doc = {
        "estimator": {
            "model": args.estimator_model,
            "elapsed_s": estimator_elapsed,
            "accelerators": [
                {
                    "name": est.accelerator,
                    "tops_per_watt": est.tops_per_watt,
                    "gops": est.gops,
                    "pipelined_gops": est.pipelined_gops,
                }
                for est in estimates
            ],
        },
        "engine": {
            "model": args.engine_model,
            "mode": "analog",
            "batch": batch,
            # legacy flat keys mirror the packed backend (the default)
            "elapsed_s": backends["packed"]["elapsed_s"],
            "rel_error": result.rel_error,
            "crossbars": backends["packed"]["crossbars"],
            "backends": backends,
            "speedup": backends["tiled"]["elapsed_s"] / backends["packed"]["elapsed_s"],
        },
        "im2col": {
            "loop_s": loop_elapsed,
            "vectorized_s": vectorized_elapsed,
            "speedup": loop_elapsed / vectorized_elapsed,
        },
        "sweep": sweep,
        "programming_cache": programming_cache,
        "branching": branching,
        "liveness": liveness,
        "faults": faults_bench,
        "streaming": streaming,
        "kernels": kernels_bench,
        "deep_engine": deep,
    }
    with open(output, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    print(
        f"  estimator ({args.estimator_model}): {estimator_elapsed:.2f}s, "
        f"TIMELY {estimates[0].tops_per_watt:.1f} TOPS/W"
    )
    print(
        f"  engine ({args.engine_model}, batch {batch}): "
        f"packed {backends['packed']['elapsed_s']:.3f}s "
        f"({backends['packed']['peak_mb']:.1f} MB peak) vs "
        f"tiled {backends['tiled']['elapsed_s']:.3f}s "
        f"({backends['tiled']['peak_mb']:.1f} MB peak) — "
        f"{doc['engine']['speedup']:.1f}x, rel error {result.rel_error:.2e}"
    )
    print(f"  im2col: {doc['im2col']['speedup']:.0f}x vs loop")
    print(
        f"  branching ({branching['model']}): rel error "
        f"{branching['rel_error']:.2e}, forward {branching['elapsed_s']:.3f}s "
        f"(+{branching['program_s']:.2f}s programming, "
        f"{branching['crossbars']} crossbars)"
    )
    print(
        f"  liveness ({liveness['model']}, batch {liveness['batch']}): "
        f"peak {liveness['freed_peak_mb']:.1f} MB freed vs "
        f"{liveness['unfreed_peak_mb']:.1f} MB kept "
        f"({liveness['reduction']:.1f}x reduction)"
    )
    print(
        f"  faults ({faults_bench['model']}, "
        f"{faults_bench['stuck_fraction']:.0%} stuck): rel error "
        f"{faults_bench['clean_rel_error']:.2e} clean -> "
        f"{faults_bench['faulted_rel_error']:.2e} faulted -> "
        f"{faults_bench['remapped_rel_error']:.2e} with "
        f"{faults_bench['spare_rows']} spare rows "
        f"({faults_bench['stuck_cells']} stuck cells, "
        f"{faults_bench['remapped_rows']} rows remapped)"
    )
    print(
        f"  sweep ({sweep['model']}, {sweep['trials']} trials): "
        f"{sweep['serial_trials_per_sec']:.1f} trials/s legacy serial, "
        f"{sweep['parallel_speedup']:.2f}x program-once with "
        f"{sweep['workers']} workers "
        f"(+{sweep['pool_startup_s']:.2f}s pool startup, reported apart)"
    )
    print(
        f"  programming cache ({programming_cache['model']}): "
        f"{programming_cache['program_s'] * 1e3:.1f} ms cold vs "
        f"{programming_cache['disk_hit_s'] * 1e3:.1f} ms disk / "
        f"{programming_cache['memory_hit_s'] * 1e3:.2f} ms memory hit "
        f"({programming_cache['state_mb']:.1f} MB state)"
    )
    print(
        f"  dtype ({streaming['model']}): float64 "
        f"{streaming['dtype']['float64_s']:.3f}s vs float32 "
        f"{streaming['dtype']['float32_s']:.3f}s "
        f"({streaming['dtype']['float32_speedup']:.2f}x)"
    )
    print(
        f"  chunked read-out ({streaming['chunked']['model']}, "
        f"{chunk_bytes >> 10} KB chunks): peak "
        f"{streaming['chunked']['peak_mb']:.1f} MB vs "
        f"{streaming['chunked']['unchunked_peak_mb']:.1f} MB unchunked "
        f"({streaming['chunked']['reduction']:.2f}x)"
    )
    print(
        f"  streaming ({streaming['model']}): wired "
        f"{streaming['stream']['streamed_peak_wired_mb']:.1f} MB streamed vs "
        f"{streaming['stream']['resident_peak_wired_mb']:.1f} MB resident "
        f"({streaming['stream']['wired_reduction']:.1f}x), RSS "
        f"{streaming['stream']['streamed_peak_rss_mb']:.0f} MB vs "
        f"{streaming['stream']['resident_peak_rss_mb']:.0f} MB"
    )
    fused_note = (
        f"{kernels_bench['fused_speedup']:.1f}x fused c vs numpy"
        if kernels_bench["fused_speedup"] is not None
        else "compiled tier unavailable"
    )
    print(
        f"  kernels (tiers: {', '.join(kernels_bench['tiers'])}; default "
        f"{kernels_bench['default']}): {fused_note}; threaded chunk walk "
        f"{kernels_bench['threaded']['speedup']:.2f}x on "
        f"{kernels_bench['cores']} core(s)"
    )
    if deep is not None:
        print(
            f"  deep engine ({deep['model']}): {deep['elapsed_s']:.1f}s packed analog "
            f"(+{deep['program_s']:.1f}s programming), "
            f"{deep['peak_mb'] / 1e3:.2f} GB peak, {deep['crossbars']} crossbars"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        command, rest = argv[0], argv[1:]
    else:
        # historical invocation: bare flags mean `estimate`
        command, rest = "estimate", argv
    if command == "run":
        return main_run(rest)
    if command == "program":
        return main_program(rest)
    if command == "sweep":
        return main_sweep(rest)
    if command == "bench":
        return main_bench(rest)
    return main_estimate(rest)
