"""Command-line interface of the comparison simulator."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.energy.estimator import NetworkEstimate, compare_accelerators
from repro.energy.tables import (
    default_configs,
    isaac_like_config,
    prime_like_config,
    timely_config,
)
from repro.mapping.crossbar_mapping import CrossbarConfig
from repro.nn.models import build_model, list_models

_CONFIG_FACTORIES = {
    "timely": timely_config,
    "prime": prime_like_config,
    "isaac": isaac_like_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description=(
            "Estimate chip-level energy, latency and area of a DNN on the "
            "TIMELY, PRIME-like and ISAAC-like accelerator configurations."
        ),
    )
    parser.add_argument(
        "--model",
        default="vgg_d",
        help="model name from the zoo (default: vgg_d; see --list-models)",
    )
    parser.add_argument(
        "--configs",
        default="timely,prime,isaac",
        help="comma-separated subset of: timely, prime, isaac",
    )
    parser.add_argument("--rows", type=int, default=256, help="crossbar rows")
    parser.add_argument("--cols", type=int, default=256, help="crossbar columns")
    parser.add_argument("--cell-bits", type=int, default=4, help="bits per ReRAM cell")
    parser.add_argument("--weight-bits", type=int, default=8, help="weight precision")
    parser.add_argument("--input-bits", type=int, default=8, help="input precision")
    parser.add_argument(
        "--no-per-layer",
        action="store_true",
        help="print only the totals comparison table",
    )
    parser.add_argument(
        "--summary", action="store_true", help="also print the network summary"
    )
    parser.add_argument(
        "--list-models", action="store_true", help="list available models and exit"
    )
    return parser


def format_per_layer(estimate: NetworkEstimate) -> str:
    """Per-layer energy / latency / area table for one accelerator."""
    lines = [f"{estimate.accelerator} — {estimate.model}, per layer"]
    header = (
        f"{'layer':<22} {'kind':<6} {'xbars':>6} {'util':>6} "
        f"{'energy/uJ':>11} {'latency/us':>11} {'area/mm2':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    area_per_layer = estimate.area_mm2 / max(estimate.total_crossbars, 1)
    for layer in estimate.layers:
        lines.append(
            f"{layer.name:<22} {layer.kind:<6} {layer.crossbars:>6} "
            f"{layer.utilization:>6.1%} {layer.energy_pj / 1e6:>11.3f} "
            f"{layer.latency_ns / 1e3:>11.2f} "
            f"{layer.crossbars * area_per_layer:>9.3f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<22} {'':<6} {estimate.total_crossbars:>6} {'':>6} "
        f"{estimate.total_energy_pj / 1e6:>11.3f} "
        f"{estimate.total_latency_ns / 1e3:>11.2f} {estimate.area_mm2:>9.3f}"
    )
    return "\n".join(lines)


def format_comparison(estimates: Sequence[NetworkEstimate]) -> str:
    """Totals table comparing all estimated accelerator configurations."""
    reference = estimates[0]
    lines = [f"Comparison — {reference.model}"]
    header = (
        f"{'accelerator':<12} {'energy/uJ':>11} {'latency/ms':>11} {'area/mm2':>9} "
        f"{'TOPS/W':>9} {'GOPS':>9} {'eff. vs ' + reference.accelerator:>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for est in estimates:
        ratio = est.tops_per_watt / reference.tops_per_watt
        lines.append(
            f"{est.accelerator:<12} {est.total_energy_pj / 1e6:>11.3f} "
            f"{est.total_latency_ns / 1e6:>11.3f} {est.area_mm2:>9.2f} "
            f"{est.tops_per_watt:>9.3f} {est.gops:>9.1f} {ratio:>13.3f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_models:
        print("\n".join(list_models()))
        return 0

    try:
        network = build_model(args.model)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        config = CrossbarConfig(
            rows=args.rows,
            cols=args.cols,
            cell_bits=args.cell_bits,
            weight_bits=args.weight_bits,
            input_bits=args.input_bits,
        )
    except ValueError as exc:
        print(f"invalid crossbar configuration: {exc}", file=sys.stderr)
        return 2
    names = [name.strip().lower() for name in args.configs.split(",") if name.strip()]
    unknown = [name for name in names if name not in _CONFIG_FACTORIES]
    if unknown or not names:
        print(
            f"unknown configs {', '.join(unknown) or '(none)'}; "
            f"choose from: {', '.join(_CONFIG_FACTORIES)}",
            file=sys.stderr,
        )
        return 2
    specs = [_CONFIG_FACTORIES[name](config) for name in names]

    if args.summary:
        print(network.summary())
        print()

    estimates: List[NetworkEstimate] = compare_accelerators(network, specs, config)
    if not args.no_per_layer:
        for estimate in estimates:
            print(format_per_layer(estimate))
            print()
    print(format_comparison(estimates))
    return 0
