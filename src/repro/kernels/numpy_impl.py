"""Pure-numpy kernel tier: the bit-for-bit reference implementation.

This module is the read-out / im2col code that used to live inline in
:meth:`repro.circuits.timing.TimeDomainChainSpec.read_out` and
:meth:`repro.engine.packed.PackedMatmul._analog_products`, extracted
verbatim.  Every other tier (``c``, ``numba``) is tested bit-for-bit
against these functions in float64 — when in doubt, this file defines
what "correct" means.

Always available (numpy is the repo's only hard dependency), always last
in the dispatch order, and the fallback target whenever a compiled tier
is missing or a call's shapes fall outside the compiled fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.nn import functional as F

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.dispatch import ReadoutScalars


def readout_fused(
    charges: np.ndarray,
    delay_sums: np.ndarray,
    scalars: "ReadoutScalars",
    out: Optional[np.ndarray] = None,
    saturation: Optional[float] = None,
    shifts: Optional[np.ndarray] = None,
    recombine_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The two-phase read-out chain, optionally fused with recombination.

    The chain body is the historical ``TimeDomainChainSpec.read_out``
    sequence, op for op (``scalars`` carries the same constants the spec
    used to read off ``self``); ``saturation`` is the optional early-TDC
    clip (a fraction of ``scalars.dot_max``) and ``shifts`` /
    ``recombine_out`` the optional slice-cascade einsum — both exactly as
    ``PackedMatmul._analog_products`` applied them after the chain.
    """
    offset = scalars.offset_coeff * delay_sums
    net = np.subtract(charges, offset, out=out)
    np.clip(net, 0.0, None, out=net)
    net /= scalars.capacitance_f  # phase-I capacitor voltage
    np.subtract(scalars.v_threshold, net, out=net)
    np.clip(net, 0.0, None, out=net)
    net *= scalars.phase2_scale  # phase-II time
    np.subtract(scalars.full_scale_s, net, out=net)
    net /= scalars.lsb_s
    if saturation is not None:
        # early TDC clipping: per-slice estimates above the saturation
        # point resolve to the saturation code itself
        np.minimum(net, net.dtype.type(saturation * scalars.dot_max), out=net)
    if shifts is not None:
        # recombine: sum over row tiles (t), slice cascade weights over s
        np.einsum("s,tsgpc->gpc", shifts, net, out=recombine_out)
    return net


def slice_recombine(
    shifts: np.ndarray, estimates: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Digital slice/tile recombination: ``out[g,p,c] = sum_ts shifts[s] * e``."""
    np.einsum("s,tsgpc->gpc", shifts, estimates, out=out)
    return out


def im2col_pack(
    x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> Tuple[np.ndarray, int, int]:
    """Batched im2col; delegates to the historical numpy implementation."""
    return F.im2col_batch(x, kernel, stride=stride, pad=pad)
