"""The numba kernel tier: ``@njit(cache=True)`` mirrors of ``readout.c``.

Used when numba (an optional dependency: ``pip install timely-repro`` plus
``numba``) is installed but the C tier is not buildable — e.g. no system
compiler.  Importing this module raises :class:`ImportError` when numba is
missing; the dispatcher treats that as "tier unavailable" and falls back.

The jitted loops replicate the C kernels' arithmetic exactly — per-element
chain in the array dtype, float64 accumulation for the slice cascade,
t-major/s-inner recombination order — so float64 results remain
bit-identical to the numpy reference (numba, like the C build, compiles
without FMA contraction by default on the LLVM fast-math-off path).
Shape/dtype guards mirror ``c_impl``: anything off the packed fast path
delegates to :mod:`repro.kernels.numpy_impl`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

import numba  # noqa: F401  (availability probe: ImportError => tier off)
from numba import njit, prange  # noqa: F401

from repro.kernels import numpy_impl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.dispatch import ReadoutScalars

_SUPPORTED = (np.dtype(np.float64), np.dtype(np.float32))


@njit(cache=True, fastmath=False)
def _readout_chain_jit(
    work, delay_sums, zero, offset_coeff, capacitance, v_threshold,
    phase2_scale, full_scale, lsb, saturation, has_saturation,
    shifts, rec_out, has_recombine,
):  # pragma: no cover - requires numba
    # ``zero`` arrives pre-cast to the work dtype so the clip comparisons
    # and assignments never promote a float32 chain to float64
    tiles, slices, groups, pos, cols = work.shape
    if has_recombine:
        rec_out[:, :, :] = 0.0
    for t in range(tiles):
        for s in range(slices):
            weight = shifts[s] if has_recombine else 0.0
            for g in range(groups):
                for p in range(pos):
                    offset = offset_coeff * delay_sums[t, 0, g, p, 0]
                    for c in range(cols):
                        v = work[t, s, g, p, c] - offset
                        if v < zero:
                            v = zero
                        v /= capacitance
                        v = v_threshold - v
                        if v < zero:
                            v = zero
                        v *= phase2_scale
                        v = full_scale - v
                        v /= lsb
                        if has_saturation and v > saturation:
                            v = saturation
                        work[t, s, g, p, c] = v
                        if has_recombine:
                            rec_out[g, p, c] += weight * np.float64(v)


@njit(cache=True, fastmath=False)
def _slice_recombine_jit(estimates, shifts, rec_out):  # pragma: no cover
    tiles, slices, groups, pos, cols = estimates.shape
    rec_out[:, :, :] = 0.0
    for t in range(tiles):
        for s in range(slices):
            weight = shifts[s]
            for g in range(groups):
                for p in range(pos):
                    for c in range(cols):
                        rec_out[g, p, c] += weight * np.float64(
                            estimates[t, s, g, p, c]
                        )


def _fast_path_ok(charges, delay_sums, out, shifts, recombine_out) -> bool:
    if not isinstance(charges, np.ndarray) or charges.ndim != 5:
        return False
    if charges.dtype not in _SUPPORTED:
        return False
    if not isinstance(delay_sums, np.ndarray) or delay_sums.dtype != charges.dtype:
        return False
    tiles, slices, groups, pos, cols = charges.shape
    if delay_sums.shape != (tiles, 1, groups, pos, 1):
        return False
    if out is not None and out is not charges:
        if (
            not isinstance(out, np.ndarray)
            or out.shape != charges.shape
            or out.dtype != charges.dtype
        ):
            return False
    if shifts is not None:
        if recombine_out is None or recombine_out.dtype != np.float64:
            return False
        if recombine_out.shape != (groups, pos, cols):
            return False
        if np.asarray(shifts).shape != (slices,):
            return False
    return True


def readout_fused(
    charges: np.ndarray,
    delay_sums: np.ndarray,
    scalars: "ReadoutScalars",
    out: Optional[np.ndarray] = None,
    saturation: Optional[float] = None,
    shifts: Optional[np.ndarray] = None,
    recombine_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    if not _fast_path_ok(charges, delay_sums, out, shifts, recombine_out):
        return numpy_impl.readout_fused(
            charges, delay_sums, scalars,
            out=out, saturation=saturation,
            shifts=shifts, recombine_out=recombine_out,
        )
    if out is None:
        work = charges.copy()
    elif out is charges:
        work = charges
    else:
        np.copyto(out, charges)
        work = out
    dt = work.dtype.type
    has_recombine = shifts is not None
    shift_weights = (
        np.ascontiguousarray(np.asarray(shifts, dtype=np.float64))
        if has_recombine
        else np.zeros(work.shape[1])
    )
    rec = recombine_out if has_recombine else np.empty((0, 0, 0))
    _readout_chain_jit(
        work, delay_sums, dt(0.0),
        dt(scalars.offset_coeff), dt(scalars.capacitance_f),
        dt(scalars.v_threshold), dt(scalars.phase2_scale),
        dt(scalars.full_scale_s), dt(scalars.lsb_s),
        dt(0.0 if saturation is None else saturation * scalars.dot_max),
        saturation is not None,
        shift_weights, rec, has_recombine,
    )
    return work


def slice_recombine(
    shifts: np.ndarray, estimates: np.ndarray, out: np.ndarray
) -> np.ndarray:
    if (
        not isinstance(estimates, np.ndarray)
        or estimates.ndim != 5
        or estimates.dtype not in _SUPPORTED
        or out.dtype != np.float64
        or out.shape != estimates.shape[2:]
        or np.asarray(shifts).shape != (estimates.shape[1],)
    ):
        return numpy_impl.slice_recombine(shifts, estimates, out)
    shift_weights = np.ascontiguousarray(np.asarray(shifts, dtype=np.float64))
    _slice_recombine_jit(estimates, shift_weights, out)
    return out


def im2col_pack(
    x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> Tuple[np.ndarray, int, int]:
    # the im2col gather is pure data movement and the numpy strided copy
    # already runs at memcpy speed; no jitted variant needed
    return numpy_impl.im2col_pack(x, kernel, stride=stride, pad=pad)
