"""Runtime kernel dispatch: one entry point per hot loop, tiered backends.

The engine's two hot loops — the fused time-domain read-out chain and the
im2col gather — are reachable only through this module.  An ordered
registry of implementation tiers backs each entry point:

``c``
    Hand-written C (``readout.c``) compiled on first use with the system C
    compiler and loaded through :mod:`ctypes` (which releases the GIL for
    the duration of every call — the property the threaded chunk walk in
    ``engine/packed.py`` relies on).  Bit-for-bit identical to the numpy
    tier; built lazily into a content-hash-keyed cache, or ahead of time
    via ``python -m repro.kernels.build`` / the optional ``setup.py``
    extension.
``numba``
    ``@njit(cache=True)`` mirrors of the same loops, used when numba is
    installed (it is an optional dependency) and the C tier is not.
``numpy``
    The historical pure-numpy code, extracted verbatim into
    :mod:`repro.kernels.numpy_impl`.  Always available; the bit-for-bit
    reference every other tier is tested against.

Selection: the first available tier in ``KERNEL_TIERS`` order, overridden
by (highest precedence first) an explicit ``kernel=`` argument, the
``SimContext.kernel`` field / ``--kernel`` CLI flag (which pass that
argument), or the ``REPRO_KERNEL`` environment variable.  A requested tier
that is unavailable (no compiler, no numba) degrades to the next tier with
a one-time warning — kernels never make an environment fail.

The kernel tier is performance metadata, not simulation semantics: float64
results are bit-identical across tiers, so the tier name deliberately
stays out of every content key (``SimContext.kernel`` is ``compare=False``;
see ``engine/state.py``).

Implementation modules (``numpy_impl``, ``c_impl``, ``numba_impl``) must
never be imported directly by engine code — the ``kernel-dispatch``
rule in ``repro.analysis`` enforces that only this module reaches them,
which is what keeps the fallback contract honest.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from types import ModuleType
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.kernels import numpy_impl

#: preference order of the implementation tiers
KERNEL_TIERS: Tuple[str, ...] = ("c", "numba", "numpy")
#: valid values for SimContext.kernel / --kernel / REPRO_KERNEL
KERNEL_CHOICES: Tuple[str, ...] = ("auto",) + KERNEL_TIERS
#: environment variable overriding the default tier
ENV_VAR = "REPRO_KERNEL"


class KernelError(ValueError):
    """An unknown kernel tier was requested."""


@dataclass(frozen=True)
class ReadoutScalars:
    """The scalar constants of one time-domain read-out chain.

    A frozen, hashable bundle of exactly the quantities
    ``TimeDomainChainSpec.read_out`` used to read off ``self`` — factored
    out so implementations in any language receive one flat argument pack.
    ``offset_coeff`` is the precomputed ``v_dd * g_min_s`` product and
    ``phase2_scale`` the precomputed ``capacitance_f / phase2_current_a``
    ratio; both are single IEEE-754 doubles, so precomputation cannot
    change any result bit.
    """

    offset_coeff: float
    capacitance_f: float
    v_threshold: float
    phase2_scale: float
    full_scale_s: float
    lsb_s: float
    dot_max: float


_lock = threading.Lock()
_modules: Dict[str, Optional[ModuleType]] = {"numpy": numpy_impl}
_unavailable: Dict[str, str] = {}
_warned: Set[str] = set()


def _probe(name: str) -> Optional[ModuleType]:
    """Import (and for ``c``, build) a tier; cache the module or the failure."""
    if name in _modules:
        return _modules[name]
    if name in _unavailable:
        return None
    with _lock:
        if name in _modules:
            return _modules[name]
        if name in _unavailable:
            return None
        try:
            if name == "c":
                from repro.kernels import c_impl as module

                module.load()  # compiles on first ever use, then cached
            elif name == "numba":
                from repro.kernels import numba_impl as module
            else:  # pragma: no cover - registry and tiers kept in sync
                raise KernelError(f"unknown kernel tier {name!r}")
        except KernelError:
            raise
        except Exception as exc:  # missing compiler/numba must never fail
            _unavailable[name] = f"{type(exc).__name__}: {exc}"
            return None
        _modules[name] = module
        return module


def available() -> Tuple[str, ...]:
    """The tiers usable right now, in preference order (probes all)."""
    return tuple(name for name in KERNEL_TIERS if _probe(name) is not None)


def unavailable_reasons() -> Dict[str, str]:
    """Why each unusable tier failed to load (after :func:`available`)."""
    return dict(_unavailable)


def reset() -> None:
    """Forget probe results and warnings (tests re-point REPRO_KERNEL)."""
    with _lock:
        _modules.clear()
        _modules["numpy"] = numpy_impl
        _unavailable.clear()
        _warned.clear()


def resolve(kernel: Optional[str] = None) -> Tuple[str, ModuleType]:
    """The ``(tier name, implementation module)`` serving a request.

    ``kernel`` is an explicit tier request (``SimContext.kernel`` /
    ``--kernel``); ``None`` or ``"auto"`` defers to ``REPRO_KERNEL`` and
    then to the registry order.  Unknown names raise :class:`KernelError`;
    known-but-unavailable tiers fall through to the next tier with a
    one-time warning, so a numpy-only environment always works.
    """
    if kernel is None or kernel == "auto":
        kernel = os.environ.get(ENV_VAR) or "auto"
    if kernel not in KERNEL_CHOICES:
        raise KernelError(
            f"unknown kernel tier {kernel!r}; choose from: {', '.join(KERNEL_CHOICES)}"
        )
    start = 0 if kernel == "auto" else KERNEL_TIERS.index(kernel)
    for name in KERNEL_TIERS[start:]:
        module = _probe(name)
        if module is not None:
            if kernel not in ("auto", name) and kernel not in _warned:
                _warned.add(kernel)
                warnings.warn(
                    f"kernel tier {kernel!r} is unavailable "
                    f"({_unavailable.get(kernel, 'unknown reason')}); "
                    f"falling back to {name!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return name, module
    raise AssertionError("the numpy tier can never be unavailable")


def default_kernel() -> str:
    """The tier name a ``kernel=None`` call resolves to right now."""
    return resolve(None)[0]


def readout_fused(
    charges: np.ndarray,
    delay_sums: np.ndarray,
    scalars: ReadoutScalars,
    out: Optional[np.ndarray] = None,
    saturation: Optional[float] = None,
    shifts: Optional[np.ndarray] = None,
    recombine_out: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Fused phase-I/II read-out of raw column charges (plus recombination).

    The elementwise chain — G_min reference-column subtraction, zero clip,
    phase-I capacitor voltage, phase-II threshold-crossing time, LSB
    rescale — applied to ``charges`` against broadcastable ``delay_sums``,
    in place when ``out`` aliases ``charges``.  ``saturation`` adds the
    optional early-TDC clip (a fraction of ``scalars.dot_max``).  When
    ``shifts`` (and ``recombine_out``) are given, ``charges`` must be the
    packed ``(tiles, slices, groups, positions, cols)`` stack and the
    power-of-two slice cascade is recombined into ``recombine_out`` in the
    same pass.  Returns the chain result (the estimates, not the
    recombination).
    """
    return resolve(kernel)[1].readout_fused(
        charges,
        delay_sums,
        scalars,
        out=out,
        saturation=saturation,
        shifts=shifts,
        recombine_out=recombine_out,
    )


def slice_recombine(
    shifts: np.ndarray,
    estimates: np.ndarray,
    out: np.ndarray,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Digital slice/tile recombination (``einsum "s,tsgpc->gpc"``)."""
    return resolve(kernel)[1].slice_recombine(shifts, estimates, out)


def im2col_pack(
    x: np.ndarray,
    kernel_size: int,
    stride: int = 1,
    pad: int = 0,
    kernel: Optional[str] = None,
) -> Tuple[np.ndarray, int, int]:
    """Batched im2col: ``(N, C, H, W)`` to ``(N, positions, C*K*K)`` + dims."""
    return resolve(kernel)[1].im2col_pack(x, kernel_size, stride=stride, pad=pad)
