"""Runtime-dispatched hot-loop kernels (read-out chain, im2col).

Public surface: :mod:`repro.kernels.dispatch` — every consumer goes
through its entry points (``readout_fused``, ``slice_recombine``,
``im2col_pack``) and tier resolution (``resolve`` / ``available``).  The
implementation modules (``numpy_impl``, ``c_impl``, ``numba_impl``) are
internal; the ``kernel-dispatch`` rule in ``repro.analysis`` flags any
direct import of them from outside this package.
"""

from repro.kernels.dispatch import (  # noqa: F401
    ENV_VAR,
    KERNEL_CHOICES,
    KERNEL_TIERS,
    KernelError,
    ReadoutScalars,
    available,
    default_kernel,
    im2col_pack,
    readout_fused,
    resolve,
    slice_recombine,
    unavailable_reasons,
)
