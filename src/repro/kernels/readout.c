/*
 * Compiled hot-path kernels for the time-domain read-out chain and im2col.
 *
 * Bit-for-bit contract: every routine here must reproduce the numpy
 * reference in `repro.kernels.numpy_impl` exactly, element by element, in
 * the same IEEE-754 rounding.  That is only true when the compiler is
 * forbidden from contracting multiply+add into FMA (numpy rounds each op
 * separately), so this file MUST be compiled with `-ffp-contract=off`.
 * The ctypes loader in `c_impl.py` passes that flag; the optional
 * setuptools build in setup.py does too.
 *
 * Layout contract (checked by the Python guards before dispatch):
 *   charges     (T, S, G, P, C)  any element strides, overwritten in place
 *   delay_sums  (T, G, P)        any element strides, same dtype as charges
 *   shifts      (S,)             float64 contiguous, optional
 *   rec_out     (G, P, C)        float64, any element strides
 * All strides are in ELEMENTS, not bytes.
 *
 * The fused chain per element (matching TimeDomainChainSpec.read_out):
 *   v  = charge - offset_coeff * delay_sum     (reference-column subtract)
 *   v  = max(v, 0)                             (clip negative net charge)
 *   v /= capacitance                           (charge -> voltage)
 *   v  = v_threshold - v                       (phase-II headroom)
 *   v  = max(v, 0)
 *   v *= phase2_scale                          (voltage -> crossing time)
 *   v  = full_scale - v                        (time -> count direction)
 *   v /= lsb                                   (counts)
 *   v  = min(v, saturation)                    (optional ADC clamp)
 * then the optional slice recombination accumulates
 *   rec_out[g,p,c] += shifts[s] * v            in t-major, s-inner order —
 * the exact accumulation order numpy's einsum "s,tsgpc->gpc" uses, which
 * the float64 bit-identity tests pin down.
 *
 * The loops touch disjoint data per (t, s, g, p) row, carry no global
 * state, and are called through ctypes (which releases the GIL), so they
 * are safe to run concurrently from the threaded chunk walk in
 * `engine/packed.py`.
 */

#include <stdint.h>
#include <string.h>

#ifdef _MSC_VER
#define API __declspec(dllexport)
#else
#define API __attribute__((visibility("default")))
#endif

/* Bumped whenever a signature changes; the loader refuses mismatches so a
 * stale cached .so can never be called with the wrong ABI. */
API int64_t repro_kernels_abi_version(void) { return 2; }

#define DEFINE_READOUT_FUSED(NAME, REAL)                                       \
API void NAME(                                                                 \
    REAL *charges, const REAL *delay_sums,                                     \
    int64_t n_tiles, int64_t n_slices, int64_t n_groups,                       \
    int64_t n_pos, int64_t n_cols,                                             \
    int64_t ch_st, int64_t ch_ss, int64_t ch_sg, int64_t ch_sp, int64_t ch_sc, \
    int64_t ds_st, int64_t ds_sg, int64_t ds_sp,                               \
    double offset_coeff_d, double capacitance_d, double v_threshold_d,         \
    double phase2_scale_d, double full_scale_d, double lsb_d,                  \
    double saturation_d, int32_t has_saturation,                               \
    const double *shifts, double *rec_out,                                     \
    int64_t rec_sg, int64_t rec_sp, int64_t rec_sc)                            \
{                                                                              \
    /* numpy binds python-float scalars to the array dtype (NEP 50), so    */  \
    /* every chain constant is narrowed exactly once, up front.            */  \
    REAL offset_coeff = (REAL)offset_coeff_d;                                  \
    REAL capacitance = (REAL)capacitance_d;                                    \
    REAL v_threshold = (REAL)v_threshold_d;                                    \
    REAL phase2_scale = (REAL)phase2_scale_d;                                  \
    REAL full_scale = (REAL)full_scale_d;                                      \
    REAL lsb = (REAL)lsb_d;                                                    \
    REAL saturation = (REAL)saturation_d;                                      \
    int64_t t, s, g, p, c;                                                     \
    if (shifts != NULL)                                                        \
        for (g = 0; g < n_groups; ++g)                                         \
            for (p = 0; p < n_pos; ++p) {                                      \
                double *orow = rec_out + g * rec_sg + p * rec_sp;              \
                for (c = 0; c < n_cols; ++c)                                   \
                    orow[c * rec_sc] = 0.0;                                    \
            }                                                                  \
    for (t = 0; t < n_tiles; ++t)                                              \
        for (s = 0; s < n_slices; ++s) {                                       \
            double weight = (shifts != NULL) ? shifts[s] : 0.0;                \
            for (g = 0; g < n_groups; ++g)                                     \
                for (p = 0; p < n_pos; ++p) {                                  \
                    REAL offset = offset_coeff *                               \
                        delay_sums[t * ds_st + g * ds_sg + p * ds_sp];         \
                    REAL *row = charges +                                      \
                        t * ch_st + s * ch_ss + g * ch_sg + p * ch_sp;         \
                    double *orow = (shifts != NULL)                            \
                        ? rec_out + g * rec_sg + p * rec_sp : NULL;            \
                    for (c = 0; c < n_cols; ++c) {                             \
                        REAL v = row[c * ch_sc] - offset;                      \
                        if (v < (REAL)0.0) v = (REAL)0.0;                      \
                        v /= capacitance;                                      \
                        v = v_threshold - v;                                   \
                        if (v < (REAL)0.0) v = (REAL)0.0;                      \
                        v *= phase2_scale;                                     \
                        v = full_scale - v;                                    \
                        v /= lsb;                                              \
                        if (has_saturation && v > saturation) v = saturation;  \
                        row[c * ch_sc] = v;                                    \
                        if (orow != NULL)                                      \
                            orow[c * rec_sc] += weight * (double)v;            \
                    }                                                          \
                }                                                              \
        }                                                                      \
}

DEFINE_READOUT_FUSED(readout_fused_f64, double)
DEFINE_READOUT_FUSED(readout_fused_f32, float)

/* Standalone slice recombination (the einsum "s,tsgpc->gpc"), t-major with
 * the slice loop inner — the accumulation order numpy uses. */
#define DEFINE_SLICE_RECOMBINE(NAME, REAL)                                     \
API void NAME(                                                                 \
    const REAL *estimates, const double *shifts,                               \
    int64_t n_tiles, int64_t n_slices, int64_t n_groups,                       \
    int64_t n_pos, int64_t n_cols,                                             \
    int64_t es_st, int64_t es_ss, int64_t es_sg, int64_t es_sp, int64_t es_sc, \
    double *rec_out, int64_t rec_sg, int64_t rec_sp, int64_t rec_sc)           \
{                                                                              \
    int64_t t, s, g, p, c;                                                     \
    for (g = 0; g < n_groups; ++g)                                             \
        for (p = 0; p < n_pos; ++p) {                                          \
            double *orow = rec_out + g * rec_sg + p * rec_sp;                  \
            for (c = 0; c < n_cols; ++c)                                       \
                orow[c * rec_sc] = 0.0;                                        \
        }                                                                      \
    for (t = 0; t < n_tiles; ++t)                                              \
        for (s = 0; s < n_slices; ++s) {                                       \
            double weight = shifts[s];                                         \
            for (g = 0; g < n_groups; ++g)                                     \
                for (p = 0; p < n_pos; ++p) {                                  \
                    const REAL *row = estimates +                              \
                        t * es_st + s * es_ss + g * es_sg + p * es_sp;         \
                    double *orow = rec_out + g * rec_sg + p * rec_sp;          \
                    for (c = 0; c < n_cols; ++c)                               \
                        orow[c * rec_sc] += weight * (double)row[c * es_sc];   \
                }                                                              \
        }                                                                      \
}

DEFINE_SLICE_RECOMBINE(slice_recombine_f64, double)
DEFINE_SLICE_RECOMBINE(slice_recombine_f32, float)

/* im2col gather: x (N, CH, H, W) C-contiguous float64 -> cols
 * (N, CH*K*K, out_h*out_w) C-contiguous float64, zero-padded borders.
 * Byte-identical to the pad/as_strided/transpose/reshape pipeline in
 * nn/functional.py (pure data movement, no arithmetic). */
API void im2col_f64(
    const double *x, int64_t n, int64_t ch, int64_t h, int64_t w,
    int64_t kernel, int64_t stride, int64_t pad,
    int64_t out_h, int64_t out_w, double *cols)
{
    int64_t out_pos = out_h * out_w;
    int64_t ckk = ch * kernel * kernel;
    int64_t img, c, ki, kj, oh, ow;
    for (img = 0; img < n; ++img)
        for (c = 0; c < ch; ++c)
            for (ki = 0; ki < kernel; ++ki)
                for (kj = 0; kj < kernel; ++kj) {
                    int64_t row_index = (c * kernel + ki) * kernel + kj;
                    double *dst = cols + (img * ckk + row_index) * out_pos;
                    for (oh = 0; oh < out_h; ++oh) {
                        int64_t ih = oh * stride - pad + ki;
                        double *drow = dst + oh * out_w;
                        if (ih < 0 || ih >= h) {
                            memset(drow, 0, (size_t)out_w * sizeof(double));
                            continue;
                        }
                        const double *srow = x + ((img * ch + c) * h + ih) * w;
                        if (stride == 1) {
                            /* contiguous span with zeroed out-of-range edges */
                            int64_t iw0 = -pad + kj;
                            int64_t lo = iw0 < 0 ? -iw0 : 0;
                            int64_t hi = iw0 + out_w > w ? w - iw0 : out_w;
                            if (hi < lo) hi = lo;
                            if (lo > 0) memset(drow, 0, (size_t)lo * sizeof(double));
                            if (hi > lo)
                                memcpy(drow + lo, srow + iw0 + lo,
                                       (size_t)(hi - lo) * sizeof(double));
                            if (hi < out_w)
                                memset(drow + hi, 0,
                                       (size_t)(out_w - hi) * sizeof(double));
                        } else {
                            for (ow = 0; ow < out_w; ++ow) {
                                int64_t iw = ow * stride - pad + kj;
                                drow[ow] = (iw < 0 || iw >= w) ? 0.0 : srow[iw];
                            }
                        }
                    }
                }
}

#ifdef REPRO_BUILD_PYMODULE
/* Optional CPython module shell so `pip install .` can build this file as
 * `repro.kernels._native` via setuptools; the exported C symbols above are
 * still reached through ctypes.CDLL on the resulting extension file. */
#include <Python.h>
static struct PyModuleDef repro_kernels_moduledef = {
    PyModuleDef_HEAD_INIT, "_native",
    "Compiled read-out/im2col kernels (accessed via ctypes, not Python).",
    -1, NULL,
};
PyMODINIT_FUNC PyInit__native(void) {
    return PyModule_Create(&repro_kernels_moduledef);
}
#endif
