"""Ahead-of-time build of the compiled kernel tier.

``python -m repro.kernels.build`` compiles ``readout.c`` into the kernel
cache (the same binary the lazy first-use path would produce) and reports
where it landed, so deployments and CI can pay the compile once up front
and fail loudly when a compiler is expected but missing.  Exit status 0
on success, 1 when the tier cannot be built.
"""

from __future__ import annotations

import sys

from repro.kernels import c_impl, dispatch


def main() -> int:
    try:
        path = c_impl.build(verbose=True)
        c_impl.load()
    except c_impl.KernelBuildError as exc:
        print(f"compiled kernel tier unavailable: {exc}", file=sys.stderr)
        return 1
    tiers = dispatch.available()
    print(f"compiled kernel ready: {path}")
    print(f"available tiers: {', '.join(tiers)} (default: {dispatch.default_kernel()})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
