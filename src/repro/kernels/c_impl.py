"""The compiled kernel tier: ``readout.c`` built and bound through ctypes.

Build model
-----------
The C source ships inside the package.  ``load()`` finds a binary in this
order:

1. a prebuilt ``repro.kernels._native`` extension next to this file (what
   the optional ``setup.py`` ``build_ext`` produces on ``pip install .``),
2. a cached shared object under ``REPRO_KERNEL_CACHE`` (default
   ``$XDG_CACHE_HOME/repro-kernels``), keyed by the SHA-256 of the source
   plus the compile flags, so editing ``readout.c`` can never run a stale
   binary,
3. a fresh compile of ``readout.c`` with the system C compiler
   (``REPRO_KERNEL_CC``, else ``cc``/``gcc``/``clang``) into that cache.

Any failure raises :class:`KernelBuildError`, which the dispatcher treats
as "tier unavailable" — a machine without a compiler silently keeps the
numpy tier.

``-ffp-contract=off`` is mandatory: it forbids fusing multiply+add into
FMA, which would otherwise round differently from numpy and break the
bit-for-bit contract the float64 equivalence tests enforce.

Call model
----------
Every wrapper below guards the compiled fast path: canonical dtypes
(float32/float64), sane shapes, element-addressable strides.  Calls
outside the fast path delegate to :mod:`repro.kernels.numpy_impl`, so this
module accepts exactly the same inputs as the reference and never changes
a result — only its speed.  ctypes releases the GIL for the duration of
each foreign call, which is what lets the threaded chunk walk in
``engine/packed.py`` run chunks truly concurrently.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.kernels import numpy_impl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.dispatch import ReadoutScalars

#: must match repro_kernels_abi_version() in readout.c
ABI_VERSION = 2
#: flags the bit-for-bit contract depends on (see module docstring)
CFLAGS: Tuple[str, ...] = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_i64 = ctypes.c_int64
_i32 = ctypes.c_int32
_f64 = ctypes.c_double
_void_p = ctypes.c_void_p


class KernelBuildError(RuntimeError):
    """The compiled tier could not be built or loaded."""


_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None


def _source_path() -> Path:
    return Path(__file__).with_name("readout.c")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _compiler() -> str:
    env = os.environ.get("REPRO_KERNEL_CC")
    candidates = [env] if env else ["cc", "gcc", "clang"]
    for name in candidates:
        if name and shutil.which(name):
            return name
    raise KernelBuildError(
        "no C compiler found (set REPRO_KERNEL_CC or install cc/gcc/clang)"
    )


def _find_prebuilt() -> Optional[Path]:
    """A ``_native`` extension built by the optional setup.py build_ext."""
    for path in sorted(Path(__file__).parent.glob("_native*")):
        if path.suffix in (".so", ".pyd", ".dylib"):
            return path
    return None


def build(verbose: bool = False) -> Path:
    """Compile ``readout.c`` into the cache (idempotent); return the path."""
    source = _source_path()
    text = source.read_bytes()
    compiler = _compiler()
    key = hashlib.sha256(
        b"|".join([text, " ".join(CFLAGS).encode(), compiler.encode(), sys.platform.encode()])
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"readout-{key}.so"
    if target.exists():
        return target
    cache.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    cmd = [compiler, *CFLAGS, "-o", tmp, str(source)]
    if verbose:
        print("+", " ".join(cmd))
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelBuildError(
                f"C kernel compile failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        os.replace(tmp, target)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return target


def _bind(path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(path))
    lib.repro_kernels_abi_version.restype = _i64
    lib.repro_kernels_abi_version.argtypes = []
    version = lib.repro_kernels_abi_version()
    if version != ABI_VERSION:
        raise KernelBuildError(
            f"{path} exports kernel ABI v{version}, this build needs v{ABI_VERSION}"
        )
    fused = [
        _void_p, _void_p,  # charges, delay_sums
        _i64, _i64, _i64, _i64, _i64,  # T, S, G, P, C
        _i64, _i64, _i64, _i64, _i64,  # charge strides
        _i64, _i64, _i64,  # delay_sum strides
        _f64, _f64, _f64, _f64, _f64, _f64,  # chain scalars
        _f64, _i32,  # saturation, has_saturation
        _void_p, _void_p,  # shifts, rec_out
        _i64, _i64, _i64,  # rec_out strides
    ]
    recombine = [
        _void_p, _void_p,  # estimates, shifts
        _i64, _i64, _i64, _i64, _i64,  # T, S, G, P, C
        _i64, _i64, _i64, _i64, _i64,  # estimate strides
        _void_p, _i64, _i64, _i64,  # rec_out + strides
    ]
    for name, argtypes in (
        ("readout_fused_f64", fused),
        ("readout_fused_f32", fused),
        ("slice_recombine_f64", recombine),
        ("slice_recombine_f32", recombine),
        ("im2col_f64", [_void_p] + [_i64] * 9 + [_void_p]),
    ):
        fn = getattr(lib, name)
        fn.restype = None
        fn.argtypes = argtypes
    return lib


def load() -> ctypes.CDLL:
    """The bound library, building it on first use.  May raise."""
    global _lib
    if _lib is not None:
        return _lib
    with _lock:
        if _lib is not None:
            return _lib
        prebuilt = _find_prebuilt()
        if prebuilt is not None:
            try:
                _lib = _bind(prebuilt)
                return _lib
            except (OSError, KernelBuildError):
                pass  # stale/foreign extension: fall through to a fresh build
        _lib = _bind(build())
        return _lib


_SUPPORTED = (np.dtype(np.float64), np.dtype(np.float32))


def _element_strides(a: np.ndarray) -> List[int]:
    return [s // a.itemsize for s in a.strides]


def _fast_path_ok(
    charges: np.ndarray,
    delay_sums: np.ndarray,
    out: Optional[np.ndarray],
    shifts: Optional[np.ndarray],
    recombine_out: Optional[np.ndarray],
) -> bool:
    """Whether this call fits the compiled packed-stack layout."""
    if not isinstance(charges, np.ndarray) or charges.ndim != 5:
        return False
    if charges.dtype not in _SUPPORTED:
        return False
    if not isinstance(delay_sums, np.ndarray) or delay_sums.dtype != charges.dtype:
        return False
    tiles, slices, groups, pos, cols = charges.shape
    if delay_sums.shape != (tiles, 1, groups, pos, 1):
        return False
    if any(s % charges.itemsize for s in charges.strides):
        return False
    if any(s % delay_sums.itemsize for s in delay_sums.strides):
        return False
    if out is not None and out is not charges:
        if (
            not isinstance(out, np.ndarray)
            or out.shape != charges.shape
            or out.dtype != charges.dtype
            or any(s % out.itemsize for s in out.strides)
        ):
            return False
    if shifts is not None:
        if recombine_out is None or recombine_out.dtype != np.float64:
            return False
        if recombine_out.shape != (groups, pos, cols):
            return False
        if any(s % recombine_out.itemsize for s in recombine_out.strides):
            return False
        if np.asarray(shifts).shape != (slices,):
            return False
    return True


def readout_fused(
    charges: np.ndarray,
    delay_sums: np.ndarray,
    scalars: "ReadoutScalars",
    out: Optional[np.ndarray] = None,
    saturation: Optional[float] = None,
    shifts: Optional[np.ndarray] = None,
    recombine_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    if not _fast_path_ok(charges, delay_sums, out, shifts, recombine_out):
        return numpy_impl.readout_fused(
            charges,
            delay_sums,
            scalars,
            out=out,
            saturation=saturation,
            shifts=shifts,
            recombine_out=recombine_out,
        )
    lib = load()
    if out is None:
        work = charges.copy()
    elif out is charges:
        work = charges
    else:
        np.copyto(out, charges)
        work = out
    tiles, slices, groups, pos, cols = work.shape
    ch = _element_strides(work)
    ds = _element_strides(delay_sums)
    if shifts is not None:
        shift_weights = np.ascontiguousarray(np.asarray(shifts, dtype=np.float64))
        rec = recombine_out
        rec_strides = _element_strides(rec)
        shifts_ptr = shift_weights.ctypes.data
        rec_ptr = rec.ctypes.data
    else:
        shifts_ptr = None
        rec_ptr = None
        rec_strides = [0, 0, 0]
    fn = lib.readout_fused_f64 if work.dtype == np.float64 else lib.readout_fused_f32
    fn(
        work.ctypes.data,
        delay_sums.ctypes.data,
        tiles, slices, groups, pos, cols,
        ch[0], ch[1], ch[2], ch[3], ch[4],
        ds[0], ds[2], ds[3],
        scalars.offset_coeff,
        scalars.capacitance_f,
        scalars.v_threshold,
        scalars.phase2_scale,
        scalars.full_scale_s,
        scalars.lsb_s,
        0.0 if saturation is None else saturation * scalars.dot_max,
        0 if saturation is None else 1,
        shifts_ptr,
        rec_ptr,
        rec_strides[0], rec_strides[1], rec_strides[2],
    )
    return work


def slice_recombine(
    shifts: np.ndarray, estimates: np.ndarray, out: np.ndarray
) -> np.ndarray:
    if (
        not isinstance(estimates, np.ndarray)
        or estimates.ndim != 5
        or estimates.dtype not in _SUPPORTED
        or out.dtype != np.float64
        or out.shape != estimates.shape[2:]
        or np.asarray(shifts).shape != (estimates.shape[1],)
        or any(s % estimates.itemsize for s in estimates.strides)
        or any(s % out.itemsize for s in out.strides)
    ):
        return numpy_impl.slice_recombine(shifts, estimates, out)
    lib = load()
    shift_weights = np.ascontiguousarray(np.asarray(shifts, dtype=np.float64))
    tiles, slices, groups, pos, cols = estimates.shape
    es = _element_strides(estimates)
    rec_strides = _element_strides(out)
    fn = (
        lib.slice_recombine_f64
        if estimates.dtype == np.float64
        else lib.slice_recombine_f32
    )
    fn(
        estimates.ctypes.data,
        shift_weights.ctypes.data,
        tiles, slices, groups, pos, cols,
        es[0], es[1], es[2], es[3], es[4],
        out.ctypes.data,
        rec_strides[0], rec_strides[1], rec_strides[2],
    )
    return out


def im2col_pack(
    x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> Tuple[np.ndarray, int, int]:
    if (
        not isinstance(x, np.ndarray)
        or x.ndim != 4
        or x.dtype != np.float64
        or not x.flags.c_contiguous
        or kernel <= 0
        or stride <= 0
        or pad < 0
    ):
        return numpy_impl.im2col_pack(x, kernel, stride=stride, pad=pad)
    n, channels, height, width = x.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel/stride/pad combination produces empty output")
    lib = load()
    cols = np.empty((n, channels * kernel * kernel, out_h * out_w))
    lib.im2col_f64(
        x.ctypes.data, n, channels, height, width,
        kernel, stride, pad, out_h, out_w, cols.ctypes.data,
    )
    # same value, bytes and layout as the numpy reference: a C-contiguous
    # (N, C*k*k, positions) buffer viewed as its (N, positions, C*k*k)
    # transpose, F-contiguous per image for the downstream BLAS matmul
    return cols.transpose(0, 2, 1), out_h, out_w
