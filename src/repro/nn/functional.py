"""Numpy reference kernels.

These kernels provide a framework-free functional execution path used by the
circuit unit tests, which cross-check the analog crossbar / time-domain
dot-product models (:mod:`repro.circuits`) against these exact
implementations.  The ``matmul`` hooks on :func:`conv2d` and
:func:`fully_connected` let accuracy studies inject the behavioural crossbar
model in place of the ideal dot product.

All kernels operate on single images (no batch dimension) laid out as
``(channels, height, width)``, matching :class:`repro.nn.layers.TensorShape`,
except where noted.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def pad_spatial(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two trailing spatial dimensions of a (C, H, W) tensor."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)), mode="constant")


def im2col(x: np.ndarray, kernel: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold a (C, H, W) tensor into convolution patches.

    Returns
    -------
    cols:
        Array of shape ``(out_h * out_w, C * kernel * kernel)`` — one row per
        output position, matching how inputs are presented to a crossbar.
    out_h, out_w:
        Spatial output dimensions.
    """
    cols, out_h, out_w = im2col_batch(x[None], kernel, stride, pad)
    return cols[0], out_h, out_w


def im2col_batch(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Batched :func:`im2col`: unfold ``(N, C, H, W)`` into patches per image.

    Returns ``(cols, out_h, out_w)`` with ``cols`` of shape
    ``(N, out_h * out_w, C * kernel * kernel)`` — image ``n``'s slice equals
    ``im2col(x[n], ...)`` exactly (the single-image kernel delegates here),
    so the batched engine path sees the same codes as ``N`` single-image
    calls while gathering all patches in one strided copy.

    This is the numpy reference implementation behind
    ``repro.kernels.dispatch.im2col_pack`` — the engine's conv path goes
    through the dispatcher (which may serve a compiled tier reproducing
    these bytes *and* strides), while this function stays the always-
    available ground truth the tiers are tested against.

    The copy is gathered in ``(C*k*k, position)`` order — for unit stride
    the innermost axis is then a contiguous image row, so it runs at memcpy
    speed — and returned as the ``(position, C*k*k)`` transpose, which is
    F-contiguous per image and consumed directly by BLAS in the following
    matmul.
    """
    n, channels, height, width = x.shape
    padded = (
        np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
        if pad
        else x
    )
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel/stride/pad combination produces empty output")
    windows = sliding_window_view(padded, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, out_h, out_w, k, k)
    cols = np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3)).reshape(
        n, channels * kernel * kernel, out_h * out_w
    )
    return cols.transpose(0, 2, 1), out_h, out_w


def _im2col_loop(x: np.ndarray, kernel: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Naive per-output-position loop reference for :func:`im2col`.

    Kept (not exported) so the vectorization micro-benchmark can assert the
    strided path matches this reference bit-for-bit; see
    ``tests/test_functional.py``.
    """
    channels, height, width = x.shape
    padded = pad_spatial(x, pad)
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel/stride/pad combination produces empty output")

    cols = np.empty((out_h * out_w, channels * kernel * kernel), dtype=padded.dtype)
    row = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = padded[:, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            cols[row] = patch.reshape(-1)
            row += 1
    return cols, out_h, out_w


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    matmul: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """2-D convolution via im2col.

    Parameters
    ----------
    x:
        Input tensor of shape ``(C, H, W)``.
    weights:
        Weight tensor of shape ``(D, C // groups, Z, G)``.
    bias:
        Optional bias of shape ``(D,)``.
    stride, pad:
        Convolution stride and symmetric zero padding.
    groups:
        Grouped convolution: input channels are split into ``groups``
        contiguous blocks and output block ``g`` only sees input block ``g``
        (matching :class:`repro.nn.layers.Conv2D` semantics).
    matmul:
        Optional replacement for the matrix multiplication.  The accuracy
        study passes the behavioural crossbar model here so that the same
        functional path exercises the hardware model.
    """
    out_channels, group_channels, kernel_h, kernel_w = weights.shape
    if kernel_h != kernel_w:
        raise ValueError("conv2d reference kernel assumes square filters")
    if groups <= 0:
        raise ValueError("groups must be positive")
    in_channels = x.shape[0]
    if in_channels % groups != 0 or out_channels % groups != 0:
        raise ValueError(
            f"groups={groups} must divide input channels ({in_channels}) and "
            f"output channels ({out_channels})"
        )
    if group_channels != in_channels // groups:
        raise ValueError(
            f"expected weights for {in_channels // groups} channels per group, "
            f"got {group_channels}"
        )

    multiply = matmul if matmul is not None else np.matmul
    group_out = out_channels // groups
    outputs = []
    for g in range(groups):
        x_g = x[g * group_channels : (g + 1) * group_channels]
        w_g = weights[g * group_out : (g + 1) * group_out]
        cols, out_h, out_w = im2col(x_g, kernel_h, stride, pad)
        weight_matrix = w_g.reshape(group_out, -1).T  # (C/groups*Z*G, D/groups)
        outputs.append(multiply(cols, weight_matrix))  # (out_h*out_w, D/groups)
    out = np.concatenate(outputs, axis=1)  # (out_h*out_w, D)
    if bias is not None:
        out = out + bias
    return out.T.reshape(out_channels, out_h, out_w)


def fully_connected(
    x: np.ndarray,
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    matmul: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Dense layer: ``y = x @ W^T + b`` with ``W`` of shape (out, in)."""
    flat = x.reshape(-1)
    if flat.shape[0] != weights.shape[1]:
        raise ValueError(
            f"expected {weights.shape[1]} input features, got {flat.shape[0]}"
        )
    multiply = matmul if matmul is not None else np.matmul
    out = multiply(flat[None, :], weights.T)[0]
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: np.ndarray, kernel: int, stride: int = 0, pad: int = 0) -> np.ndarray:
    """Max pooling of a (C, H, W) tensor.

    Padded positions are filled with ``-inf`` so an all-negative window is
    not corrupted by the padding value.
    """
    return _pool2d(x, kernel, stride, np.max, pad, fill=-np.inf)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int = 0, pad: int = 0) -> np.ndarray:
    """Average pooling of a (C, H, W) tensor.

    Padded positions contribute zeros and the divisor is the full window
    size (count-include-pad semantics).
    """
    return _pool2d(x, kernel, stride, np.mean, pad, fill=0.0)


def _pool2d_padded(
    x: np.ndarray, kernel: int, stride: int, pad: int, fill: float
) -> Tuple[np.ndarray, int, int, int]:
    """Shared validation + padding of the pooling implementations.

    Returns the (possibly padded) input, the output dimensions and the
    normalised stride (``stride == 0`` means "same as kernel").
    """
    stride = stride if stride > 0 else kernel
    if pad < 0:
        raise ValueError("pad must be non-negative")
    if pad * 2 > kernel:
        raise ValueError(
            f"pad ({pad}) may be at most half the kernel ({kernel}); larger "
            "padding creates windows made entirely of padding"
        )
    channels, height, width = x.shape
    if pad > 0:
        # float cast: integer inputs cannot hold the -inf fill of max pooling
        x = np.pad(
            np.asarray(x, dtype=float),
            ((0, 0), (pad, pad), (pad, pad)),
            mode="constant",
            constant_values=fill,
        )
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("pooling window does not fit the input")
    return x, out_h, out_w, stride


def _pool2d(
    x: np.ndarray, kernel: int, stride: int, reducer, pad: int = 0, fill: float = 0.0
) -> np.ndarray:
    x, out_h, out_w, stride = _pool2d_padded(x, kernel, stride, pad, fill)
    channels = x.shape[0]
    # (C, out_h, out_w, k*k) strided view of every pooling window; the
    # reduction runs over the window axis in the same element order as the
    # per-position loop reference, so results match it bit-for-bit.
    windows = sliding_window_view(x, (kernel, kernel), axis=(1, 2))
    windows = windows[:, ::stride, ::stride].reshape(channels, out_h, out_w, -1)
    return np.asarray(reducer(windows, axis=-1), dtype=float)


def _pool2d_loop(
    x: np.ndarray, kernel: int, stride: int, reducer, pad: int = 0, fill: float = 0.0
) -> np.ndarray:
    """Naive per-output-position loop reference for :func:`_pool2d`.

    Kept (not exported) for the vectorization micro-benchmark; see
    ``tests/test_functional.py``.
    """
    x, out_h, out_w, stride = _pool2d_padded(x, kernel, stride, pad, fill)
    channels = x.shape[0]
    out = np.empty((channels, out_h, out_w), dtype=float)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            out[:, i, j] = reducer(window.reshape(channels, -1), axis=1)
    return out


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling of a (C, H, W) tensor to a (C,) vector."""
    return x.reshape(x.shape[0], -1).mean(axis=1)


def batch_norm(
    x: np.ndarray, scale: np.ndarray, shift: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Inference-time batch normalisation with pre-folded statistics.

    ``scale`` and ``shift`` are per-channel and already include the running
    mean/variance, i.e. ``y = scale * x + shift``.
    """
    return x * scale[:, None, None] + shift[:, None, None]
