"""Benchmark model zoo.

The paper evaluates TIMELY on 15 benchmarks (Table III):

* ``vgg_d``, ``cnn_1``, ``mlp_l`` — for a fair comparison with PRIME,
* ``vgg_1`` … ``vgg_4`` and ``msra_1`` … ``msra_3`` — for a fair comparison
  with ISAAC,
* ``resnet_18/50/101/152`` and ``squeezenet`` — to show performance on more
  recent CNNs.

The model definitions follow the original publications:

* VGG-A/B/C/D/E (Simonyan & Zisserman) map to ``vgg_1``/``vgg_2``/``vgg_3``/
  ``vgg_d``/``vgg_4`` — ISAAC's "VGG-1..4" naming is preserved.
* MSRA-1/2/3 are the model-A/B/C networks of He et al. ("Delving Deep into
  Rectifiers"); their stage widths/depths are reproduced at the level of
  detail the energy model needs (layer shapes and MAC counts).  Where the
  original table is ambiguous we use the commonly cited configuration and
  note it in the factory docstring.
* ``cnn_1`` and ``mlp_l`` are PRIME's MNIST benchmarks (a LeNet-5-style CNN
  and the 784-1500-1000-500-10 MLP).
* ``tiny_cnn`` and ``tiny_mlp`` are small, fast models used by the examples,
  tests and the accuracy study; ``resnet_smoke`` (truncated ResNet stem +
  one residual block) and ``bottleneck_smoke`` (three chained bottleneck
  blocks) are small *branching* models used by the CI engine smoke and the
  liveness-memory bench.  None of these four are paper benchmarks.

All ImageNet models take a 3x224x224 input; MNIST models take 1x28x28.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.nn.layers import TensorShape
from repro.nn.network import Network, NetworkBuilder

IMAGENET_INPUT = TensorShape(3, 224, 224)
MNIST_INPUT = TensorShape(1, 28, 28)


# ---------------------------------------------------------------------------
# VGG family
# ---------------------------------------------------------------------------

def _vgg(name: str, stage_config: Sequence[Sequence[int]], with_1x1: bool = False) -> Network:
    """Build a VGG-style network from per-stage channel lists.

    ``stage_config`` holds one list of conv output-channel counts per stage;
    a 2x2/stride-2 max-pool follows every stage.  When ``with_1x1`` is set the
    *last* conv of stages 3-5 uses a 1x1 kernel (VGG configuration C).
    """
    builder = NetworkBuilder(name, IMAGENET_INPUT)
    for stage_index, stage in enumerate(stage_config):
        for conv_index, channels in enumerate(stage):
            kernel = 3
            if with_1x1 and stage_index >= 2 and conv_index == len(stage) - 1:
                kernel = 1
            builder.conv(channels, kernel, name=f"conv{stage_index + 1}_{conv_index + 1}")
            builder.relu()
        builder.pool(2, name=f"pool{stage_index + 1}")
    builder.fc(4096, name="fc6").relu()
    builder.fc(4096, name="fc7").relu()
    builder.fc(1000, name="fc8")
    return builder.build()


def vgg_d() -> Network:
    """VGG configuration D (VGG-16), the paper's primary PRIME benchmark."""
    return _vgg(
        "vgg_d",
        [[64, 64], [128, 128], [256, 256, 256], [512, 512, 512], [512, 512, 512]],
    )


def vgg_1() -> Network:
    """VGG configuration A (11 weight layers); ISAAC's VGG-1."""
    return _vgg("vgg_1", [[64], [128], [256, 256], [512, 512], [512, 512]])


def vgg_2() -> Network:
    """VGG configuration B (13 weight layers); ISAAC's VGG-2."""
    return _vgg("vgg_2", [[64, 64], [128, 128], [256, 256], [512, 512], [512, 512]])


def vgg_3() -> Network:
    """VGG configuration C (16 weight layers with 1x1 convs); ISAAC's VGG-3."""
    return _vgg(
        "vgg_3",
        [[64, 64], [128, 128], [256, 256, 256], [512, 512, 512], [512, 512, 512]],
        with_1x1=True,
    )


def vgg_4() -> Network:
    """VGG configuration E (19 weight layers); ISAAC's VGG-4."""
    return _vgg(
        "vgg_4",
        [
            [64, 64],
            [128, 128],
            [256, 256, 256, 256],
            [512, 512, 512, 512],
            [512, 512, 512, 512],
        ],
    )


# ---------------------------------------------------------------------------
# MSRA family (He et al., "Delving Deep into Rectifiers")
# ---------------------------------------------------------------------------

def _msra(name: str, convs_per_stage: int, widths: Sequence[int]) -> Network:
    """MSRA model template: a 7x7 stem followed by three 3x3 conv stages."""
    builder = NetworkBuilder(name, IMAGENET_INPUT)
    builder.conv(96, 7, stride=2, name="conv1")
    builder.relu()
    builder.pool(3, stride=2, padding=1, name="pool1")
    for stage_index, width in enumerate(widths):
        for conv_index in range(convs_per_stage):
            builder.conv(width, 3, name=f"conv{stage_index + 2}_{conv_index + 1}")
            builder.relu()
        builder.pool(2, name=f"pool{stage_index + 2}")
    builder.fc(4096, name="fc1").relu()
    builder.fc(4096, name="fc2").relu()
    builder.fc(1000, name="fc3")
    return builder.build()


def msra_1() -> Network:
    """MSRA model A (19 weight layers): 5 convs per stage, widths 256/512/512."""
    return _msra("msra_1", 5, [256, 512, 512])


def msra_2() -> Network:
    """MSRA model B (22 weight layers): 6 convs per stage, widths 256/512/512."""
    return _msra("msra_2", 6, [256, 512, 512])


def msra_3() -> Network:
    """MSRA model C (22 weight layers, wider): widths 384/768/896.

    This is the model for which ISAAC reports each CONV input being read 47
    times on average (Section III-A of the TIMELY paper).
    """
    return _msra("msra_3", 6, [384, 768, 896])


# ---------------------------------------------------------------------------
# ResNet family
# ---------------------------------------------------------------------------

def _resnet_basic_block(
    builder: NetworkBuilder, block_name: str, channels: int, stride: int
) -> None:
    """A 2-conv basic residual block (ResNet-18/34)."""
    entry = builder.branch()
    entry_channels = builder.current_shape.channels
    builder.conv(channels, 3, stride=stride, name=f"{block_name}_conv1", bias=False)
    builder.batch_norm().relu()
    builder.conv(channels, 3, name=f"{block_name}_conv2", bias=False)
    builder.batch_norm()
    main = builder.branch()
    shortcut = entry
    if stride != 1 or entry_channels != channels:
        builder.resume(entry)
        builder.conv(channels, 1, stride=stride, name=f"{block_name}_proj", bias=False)
        builder.batch_norm()
        shortcut = builder.branch()
    builder.resume(main)
    builder.add(shortcut, name=f"{block_name}_add").relu()


def _resnet_bottleneck_block(
    builder: NetworkBuilder, block_name: str, channels: int, stride: int
) -> None:
    """A 3-conv bottleneck residual block (ResNet-50/101/152)."""
    entry = builder.branch()
    entry_channels = builder.current_shape.channels
    expanded = channels * 4
    builder.conv(channels, 1, name=f"{block_name}_conv1", bias=False)
    builder.batch_norm().relu()
    builder.conv(channels, 3, stride=stride, name=f"{block_name}_conv2", bias=False)
    builder.batch_norm().relu()
    builder.conv(expanded, 1, name=f"{block_name}_conv3", bias=False)
    builder.batch_norm()
    main = builder.branch()
    shortcut = entry
    if stride != 1 or entry_channels != expanded:
        builder.resume(entry)
        builder.conv(expanded, 1, stride=stride, name=f"{block_name}_proj", bias=False)
        builder.batch_norm()
        shortcut = builder.branch()
    builder.resume(main)
    builder.add(shortcut, name=f"{block_name}_add").relu()


def _resnet(name: str, block_counts: Sequence[int], bottleneck: bool) -> Network:
    builder = NetworkBuilder(name, IMAGENET_INPUT)
    builder.conv(64, 7, stride=2, name="conv1", bias=False)
    builder.batch_norm().relu()
    builder.pool(3, stride=2, padding=1, name="pool1")
    widths = [64, 128, 256, 512]
    block = _resnet_bottleneck_block if bottleneck else _resnet_basic_block
    for stage_index, (width, count) in enumerate(zip(widths, block_counts)):
        for block_index in range(count):
            stride = 2 if stage_index > 0 and block_index == 0 else 1
            block(builder, f"stage{stage_index + 2}_block{block_index + 1}", width, stride)
    builder.global_avg_pool(name="gap")
    builder.fc(1000, name="fc")
    return builder.build()


def resnet_18() -> Network:
    """ResNet-18 (basic blocks, [2, 2, 2, 2])."""
    return _resnet("resnet_18", [2, 2, 2, 2], bottleneck=False)


def resnet_50() -> Network:
    """ResNet-50 (bottleneck blocks, [3, 4, 6, 3])."""
    return _resnet("resnet_50", [3, 4, 6, 3], bottleneck=True)


def resnet_101() -> Network:
    """ResNet-101 (bottleneck blocks, [3, 4, 23, 3])."""
    return _resnet("resnet_101", [3, 4, 23, 3], bottleneck=True)


def resnet_152() -> Network:
    """ResNet-152 (bottleneck blocks, [3, 8, 36, 3])."""
    return _resnet("resnet_152", [3, 8, 36, 3], bottleneck=True)


# ---------------------------------------------------------------------------
# SqueezeNet (v1.0)
# ---------------------------------------------------------------------------

def _fire_module(
    builder: NetworkBuilder, name: str, squeeze: int, expand1: int, expand3: int
) -> None:
    """SqueezeNet fire module: squeeze 1x1 -> parallel expand 1x1 / 3x3 -> concat."""
    builder.conv(squeeze, 1, name=f"{name}_squeeze")
    builder.relu(name=f"{name}_squeeze_relu")
    squeezed = builder.branch()
    builder.conv(expand1, 1, name=f"{name}_expand1x1")
    builder.relu(name=f"{name}_expand1x1_relu")
    expand1x1 = builder.branch()
    builder.resume(squeezed)
    builder.conv(expand3, 3, name=f"{name}_expand3x3")
    builder.relu(name=f"{name}_expand3x3_relu")
    expand3x3 = builder.branch()
    builder.concat([expand1x1, expand3x3], name=f"{name}_concat")


def squeezenet() -> Network:
    """SqueezeNet v1.0 — the paper's compact-CNN data point."""
    builder = NetworkBuilder("squeezenet", IMAGENET_INPUT)
    builder.conv(96, 7, stride=2, name="conv1")
    builder.relu()
    builder.pool(3, stride=2, name="pool1")
    _fire_module(builder, "fire2", 16, 64, 64)
    _fire_module(builder, "fire3", 16, 64, 64)
    _fire_module(builder, "fire4", 32, 128, 128)
    builder.pool(3, stride=2, name="pool4")
    _fire_module(builder, "fire5", 32, 128, 128)
    _fire_module(builder, "fire6", 48, 192, 192)
    _fire_module(builder, "fire7", 48, 192, 192)
    _fire_module(builder, "fire8", 64, 256, 256)
    builder.pool(3, stride=2, name="pool8")
    _fire_module(builder, "fire9", 64, 256, 256)
    builder.conv(1000, 1, name="conv10")
    builder.relu()
    builder.global_avg_pool(name="gap")
    return builder.build()


# ---------------------------------------------------------------------------
# PRIME's MNIST benchmarks and small test models
# ---------------------------------------------------------------------------

def cnn_1() -> Network:
    """PRIME's CNN-1 benchmark (LeNet-5-style MNIST CNN)."""
    builder = NetworkBuilder("cnn_1", MNIST_INPUT)
    builder.conv(6, 5, padding=2, name="conv1").relu()
    builder.pool(2, name="pool1")
    builder.conv(16, 5, padding=0, name="conv2").relu()
    builder.pool(2, name="pool2")
    builder.fc(120, name="fc1").relu()
    builder.fc(84, name="fc2").relu()
    builder.fc(10, name="fc3")
    return builder.build()


def mlp_l() -> Network:
    """PRIME's MLP-L benchmark: 784-1500-1000-500-10."""
    builder = NetworkBuilder("mlp_l", MNIST_INPUT)
    builder.flatten()
    builder.fc(1500, name="fc1").relu()
    builder.fc(1000, name="fc2").relu()
    builder.fc(500, name="fc3").relu()
    builder.fc(10, name="fc4")
    return builder.build()


def tiny_cnn() -> Network:
    """A small CNN for tests, examples and the accuracy study (not a paper benchmark)."""
    builder = NetworkBuilder("tiny_cnn", TensorShape(1, 12, 12))
    builder.conv(8, 3, name="conv1").relu()
    builder.pool(2, name="pool1")
    builder.conv(16, 3, name="conv2").relu()
    builder.pool(2, name="pool2")
    builder.fc(32, name="fc1").relu()
    builder.fc(4, name="fc2")
    return builder.build()


def tiny_mlp() -> Network:
    """A small MLP for tests and the accuracy study (not a paper benchmark)."""
    builder = NetworkBuilder("tiny_mlp", TensorShape(1, 8, 8))
    builder.flatten()
    builder.fc(32, name="fc1").relu()
    builder.fc(16, name="fc2").relu()
    builder.fc(4, name="fc3")
    return builder.build()


def resnet_smoke() -> Network:
    """A truncated ResNet stem plus one strided basic block (CI engine smoke).

    The 3x64x64 input keeps the analog engine run in CI-friendly territory
    while the stride-2 / channel-doubling block exercises the projection
    branch, the two-input residual add and folded batch-norms — the graph
    features the full ResNets rely on.  Not a paper benchmark.
    """
    builder = NetworkBuilder("resnet_smoke", TensorShape(3, 64, 64))
    builder.conv(64, 7, stride=2, name="conv1", bias=False)
    builder.batch_norm().relu()
    builder.pool(3, stride=2, padding=1, name="pool1")
    _resnet_basic_block(builder, "block1", 128, 2)
    builder.global_avg_pool(name="gap")
    builder.fc(10, name="fc")
    return builder.build()


def bottleneck_smoke() -> Network:
    """Three chained bottleneck residual blocks (liveness-memory bench model).

    Each block keeps its wide 256-channel entry activation alive across the
    whole bottleneck body for the residual add, so executing the chain
    without liveness-based freeing accumulates every intermediate — the
    model pins the peak-activation-memory win of the graph executor.  Not a
    paper benchmark.
    """
    builder = NetworkBuilder("bottleneck_smoke", TensorShape(64, 32, 32))
    for i in range(3):
        _resnet_bottleneck_block(builder, f"block{i + 1}", 64, 1)
    builder.global_avg_pool(name="gap")
    builder.fc(10, name="fc")
    return builder.build()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

MODEL_ZOO: Dict[str, Callable[[], Network]] = {
    "vgg_d": vgg_d,
    "vgg_1": vgg_1,
    "vgg_2": vgg_2,
    "vgg_3": vgg_3,
    "vgg_4": vgg_4,
    "msra_1": msra_1,
    "msra_2": msra_2,
    "msra_3": msra_3,
    "resnet_18": resnet_18,
    "resnet_50": resnet_50,
    "resnet_101": resnet_101,
    "resnet_152": resnet_152,
    "squeezenet": squeezenet,
    "cnn_1": cnn_1,
    "mlp_l": mlp_l,
    "tiny_cnn": tiny_cnn,
    "tiny_mlp": tiny_mlp,
    "resnet_smoke": resnet_smoke,
    "bottleneck_smoke": bottleneck_smoke,
}

#: The 15 benchmarks listed in Table III of the paper.
PAPER_BENCHMARKS: List[str] = [
    "vgg_d",
    "cnn_1",
    "mlp_l",
    "vgg_1",
    "vgg_2",
    "vgg_3",
    "vgg_4",
    "msra_1",
    "msra_2",
    "msra_3",
    "resnet_18",
    "resnet_50",
    "resnet_101",
    "resnet_152",
    "squeezenet",
]


def list_models(paper_only: bool = False) -> List[str]:
    """Names of all available models (optionally only the paper benchmarks)."""
    if paper_only:
        return list(PAPER_BENCHMARKS)
    return sorted(MODEL_ZOO)


def build_model(name: str) -> Network:
    """Instantiate a model from the zoo by name."""
    try:
        factory = MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available models: {', '.join(sorted(MODEL_ZOO))}"
        ) from None
    return factory()
