"""Resolved networks and a builder for constructing them.

A :class:`Network` is a flat list of :class:`LayerInstance` objects, i.e.
layers whose input and output shapes have been fully resolved.  The
accelerator models in this repository only need that flat, shape-resolved
view: for branching topologies (ResNet, SqueezeNet) the branches are listed
in order, and branch inputs are set explicitly through
:meth:`NetworkBuilder.at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    ElementwiseAdd,
    Flatten,
    FullyConnected,
    GlobalAvgPool,
    Layer,
    Pool2D,
    ReLU,
    TensorShape,
)


@dataclass(frozen=True)
class LayerInstance:
    """A layer bound to concrete input and output shapes."""

    layer: Layer
    input_shape: TensorShape
    output_shape: TensorShape
    index: int

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def kind(self) -> str:
        return self.layer.kind

    @property
    def macs(self) -> int:
        return self.layer.macs(self.input_shape)

    @property
    def weights(self) -> int:
        return self.layer.weight_count()

    @property
    def is_compute(self) -> bool:
        return self.layer.is_compute


class Network:
    """A shape-resolved CNN/DNN description."""

    def __init__(self, name: str, input_shape: TensorShape, instances: Iterable[LayerInstance]):
        self.name = name
        self.input_shape = input_shape
        self._instances: List[LayerInstance] = list(instances)
        if not self._instances:
            raise ValueError("a Network must contain at least one layer")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[LayerInstance]:
        return iter(self._instances)

    def __getitem__(self, index: int) -> LayerInstance:
        return self._instances[index]

    # -- views ---------------------------------------------------------------
    @property
    def instances(self) -> List[LayerInstance]:
        return list(self._instances)

    @property
    def compute_instances(self) -> List[LayerInstance]:
        """Conv and FC layer instances (the ones mapped onto crossbars)."""
        return [inst for inst in self._instances if inst.is_compute]

    @property
    def conv_instances(self) -> List[LayerInstance]:
        return [inst for inst in self._instances if inst.kind == "conv"]

    @property
    def fc_instances(self) -> List[LayerInstance]:
        return [inst for inst in self._instances if inst.kind == "fc"]

    @property
    def output_shape(self) -> TensorShape:
        return self._instances[-1].output_shape

    # -- aggregate statistics -------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(inst.macs for inst in self._instances)

    @property
    def total_weights(self) -> int:
        return sum(inst.weights for inst in self._instances)

    @property
    def total_activations(self) -> int:
        """Total output elements produced across all layers."""
        return sum(inst.output_shape.elements for inst in self._instances)

    def find(self, name: str) -> LayerInstance:
        """Return the instance with the given layer name."""
        for inst in self._instances:
            if inst.name == name:
                return inst
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    def summary(self) -> str:
        """Human-readable per-layer summary (useful in examples and docs)."""
        lines = [f"Network {self.name}  (input {self.input_shape})"]
        header = f"{'idx':>4}  {'name':<20} {'kind':<8} {'input':<16} {'output':<16} {'MACs':>14} {'weights':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for inst in self._instances:
            lines.append(
                f"{inst.index:>4}  {inst.name:<20} {inst.kind:<8} "
                f"{str(inst.input_shape):<16} {str(inst.output_shape):<16} "
                f"{inst.macs:>14,} {inst.weights:>12,}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total MACs {self.total_macs:,}   total weights {self.total_weights:,}   "
            f"total activations {self.total_activations:,}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(name={self.name!r}, layers={len(self)}, macs={self.total_macs:,})"


class NetworkBuilder:
    """Incrementally build a :class:`Network`, tracking the current shape.

    Example
    -------
    >>> b = NetworkBuilder("tiny", TensorShape(3, 32, 32))
    >>> b.conv(16, 3).relu().pool(2).flatten().fc(10)
    NetworkBuilder(...)
    >>> net = b.build()
    """

    def __init__(self, name: str, input_shape: TensorShape):
        self.name = name
        self.input_shape = input_shape
        self._shape = input_shape
        self._instances: List[LayerInstance] = []
        self._counters: dict = {}

    # -- internals -----------------------------------------------------------
    def _auto_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}{count}"

    def add_layer(self, layer: Layer) -> "NetworkBuilder":
        """Append an arbitrary layer, resolving shapes from the current shape."""
        output = layer.output_shape(self._shape)
        inst = LayerInstance(
            layer=layer,
            input_shape=self._shape,
            output_shape=output,
            index=len(self._instances),
        )
        self._instances.append(inst)
        self._shape = output
        return self

    # -- shape control --------------------------------------------------------
    @property
    def current_shape(self) -> TensorShape:
        return self._shape

    def at(self, shape: TensorShape) -> "NetworkBuilder":
        """Set the current shape explicitly (used for branch inputs)."""
        self._shape = shape
        return self

    # -- layer helpers ---------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding="same",
        groups: int = 1,
        name: Optional[str] = None,
        bias: bool = True,
    ) -> "NetworkBuilder":
        layer = Conv2D(
            name=name or self._auto_name("conv"),
            in_channels=self._shape.channels,
            out_channels=out_channels,
            kernel_h=kernel,
            kernel_w=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=bias,
        )
        return self.add_layer(layer)

    def fc(self, out_features: int, name: Optional[str] = None, bias: bool = True) -> "NetworkBuilder":
        if not self._shape.is_flat:
            self.flatten()
        layer = FullyConnected(
            name=name or self._auto_name("fc"),
            in_features=self._shape.elements,
            out_features=out_features,
            bias=bias,
        )
        return self.add_layer(layer)

    def pool(
        self,
        kernel: int,
        stride: int = 0,
        mode: str = "max",
        padding=0,
        name: Optional[str] = None,
    ) -> "NetworkBuilder":
        layer = Pool2D(
            name=name or self._auto_name("pool"),
            kernel=kernel,
            stride=stride,
            mode=mode,
            padding=padding,
        )
        return self.add_layer(layer)

    def relu(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(ReLU(name=name or self._auto_name("relu")))

    def batch_norm(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(
            BatchNorm(name=name or self._auto_name("bn"), channels=self._shape.channels)
        )

    def flatten(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(Flatten(name=name or self._auto_name("flatten")))

    def global_avg_pool(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(GlobalAvgPool(name=name or self._auto_name("gap")))

    def add(self, name: Optional[str] = None) -> "NetworkBuilder":
        """Residual elementwise addition at the current shape."""
        return self.add_layer(ElementwiseAdd(name=name or self._auto_name("add")))

    # -- finalisation -----------------------------------------------------------
    def build(self) -> Network:
        return Network(self.name, self.input_shape, self._instances)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkBuilder(name={self.name!r}, layers={len(self._instances)}, shape={self._shape})"
