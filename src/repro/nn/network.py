"""Resolved networks as dataflow graphs, and a builder for constructing them.

A :class:`Network` is a dataflow-graph IR: a list of :class:`LayerInstance`
objects, each bound to concrete input/output shapes and carrying explicit
``inputs`` edges naming its producers (:data:`NETWORK_INPUT` stands for the
network input).  Linear chains are the one-edge-per-node special case;
branching topologies (ResNet residual joins, SqueezeNet fire-module
concatenations) are first-class — :class:`~repro.nn.layers.ElementwiseAdd`
and :class:`~repro.nn.layers.Concat` consume several named producers.

Construction validates the graph: duplicate node names, dangling producers,
cycles and shape mismatches at merge points are all rejected with errors
that name the offending layers.  Consumers traverse the graph through
:meth:`Network.topological_order` (deterministic: among ready nodes the
lowest declaration index runs first, so a chain-declared network executes
in declaration order) and free intermediate results via
:meth:`Network.consumers` liveness information.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.nn.layers import (
    BatchNorm,
    Concat,
    Conv2D,
    ElementwiseAdd,
    Flatten,
    FullyConnected,
    GlobalAvgPool,
    Layer,
    Pool2D,
    ReLU,
    TensorShape,
)

#: sentinel producer name standing for the network input tensor
NETWORK_INPUT = "@input"


class GraphError(ValueError):
    """A malformed network graph (cycle, dangling producer, bad merge, ...).

    Every message names the offending layer(s) so a model-zoo bug points
    straight at the node that caused it.
    """


@dataclass(frozen=True)
class LayerInstance:
    """A layer bound to concrete input and output shapes.

    ``inputs`` names the producer node(s) this instance consumes, in
    operand order (:data:`NETWORK_INPUT` for the network input);
    ``input_shapes`` mirrors it.  ``input_shape`` is the primary (first)
    operand's shape, which is what single-input layers and the MAC/weight
    accounting consume.  Instances created without edges are wired to the
    preceding list entry by :class:`Network` (the legacy sequential view).
    """

    layer: Layer
    input_shape: TensorShape
    output_shape: TensorShape
    index: int
    inputs: Tuple[str, ...] = ()
    input_shapes: Tuple[TensorShape, ...] = ()

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def kind(self) -> str:
        return self.layer.kind

    @property
    def macs(self) -> int:
        return self.layer.macs(self.input_shape)

    @property
    def weights(self) -> int:
        return self.layer.weight_count()

    @property
    def is_compute(self) -> bool:
        return self.layer.is_compute


class Network:
    """A shape-resolved DNN dataflow graph."""

    def __init__(self, name: str, input_shape: TensorShape, instances: Iterable[LayerInstance]):
        self.name = name
        self.input_shape = input_shape
        self._instances: List[LayerInstance] = self._wire(list(instances))
        if not self._instances:
            raise GraphError(f"network {name!r} must contain at least one layer")
        self._by_name: Dict[str, LayerInstance] = {}
        for inst in self._instances:
            if inst.name == NETWORK_INPUT:
                raise GraphError(
                    f"layer name {NETWORK_INPUT!r} is reserved for the network input"
                )
            if inst.name in self._by_name:
                raise GraphError(
                    f"duplicate layer name {inst.name!r} "
                    f"(indices {self._by_name[inst.name].index} and {inst.index})"
                )
            self._by_name[inst.name] = inst
        self._topo_order = self._sort_topologically()
        self._validate_shapes()
        self._consumers = self._build_consumers()

    @staticmethod
    def _wire(instances: List[LayerInstance]) -> List[LayerInstance]:
        """Fill missing edges: an instance without ``inputs`` consumes its
        list predecessor (the legacy flat-sequential construction)."""
        wired: List[LayerInstance] = []
        previous = NETWORK_INPUT
        for inst in instances:
            if not inst.inputs:
                inst = replace(
                    inst, inputs=(previous,), input_shapes=(inst.input_shape,)
                )
            previous = inst.name
            wired.append(inst)
        return wired

    def _sort_topologically(self) -> List[LayerInstance]:
        """Deterministic Kahn sort; raises :class:`GraphError` on cycles and
        dangling producers, naming the layers involved."""
        indegree: Dict[str, int] = {inst.name: 0 for inst in self._instances}
        dependents: Dict[str, List[str]] = {inst.name: [] for inst in self._instances}
        for inst in self._instances:
            for src in inst.inputs:
                if src == NETWORK_INPUT:
                    continue
                if src not in self._by_name:
                    raise GraphError(
                        f"layer {inst.name!r} consumes {src!r}, which no layer "
                        "produces (dangling producer)"
                    )
                if src == inst.name:
                    raise GraphError(f"layer {inst.name!r} consumes itself")
                indegree[inst.name] += 1
                dependents[src].append(inst.name)
        # among ready nodes, the lowest declaration index runs first — this
        # makes the order deterministic and equal to declaration order for
        # any graph whose declaration order is already topological
        ready = sorted(
            (name for name, deg in indegree.items() if deg == 0),
            key=lambda n: self._by_name[n].index,
        )
        order: List[LayerInstance] = []
        while ready:
            name = ready.pop(0)
            order.append(self._by_name[name])
            freed = []
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    freed.append(dep)
            if freed:
                ready = sorted(
                    ready + freed, key=lambda n: self._by_name[n].index
                )
        if len(order) != len(self._instances):
            stuck = sorted(
                (name for name, deg in indegree.items() if deg > 0),
                key=lambda n: self._by_name[n].index,
            )
            raise GraphError(
                f"network {self.name!r} contains a cycle through layers: "
                f"{', '.join(repr(n) for n in stuck)}"
            )
        return order

    def _validate_shapes(self) -> None:
        """Check every edge's shape and every node's resolved output shape."""
        produced: Dict[str, TensorShape] = {NETWORK_INPUT: self.input_shape}
        updated: Dict[str, LayerInstance] = {}
        for inst in self._topo_order:
            shapes = tuple(produced[src] for src in inst.inputs)
            if inst.input_shapes and inst.input_shapes != shapes:
                raise GraphError(
                    f"layer {inst.name!r} was resolved against input shapes "
                    f"{tuple(str(s) for s in inst.input_shapes)}, but its "
                    f"producers ({', '.join(repr(s) for s in inst.inputs)}) "
                    f"output {tuple(str(s) for s in shapes)}"
                )
            try:
                output = inst.layer.resolve_shape(shapes)
            except ValueError as exc:
                raise GraphError(str(exc)) from exc
            if output != inst.output_shape:
                raise GraphError(
                    f"layer {inst.name!r} resolves to output {output}, but the "
                    f"instance records {inst.output_shape}"
                )
            if not inst.input_shapes or inst.input_shape != shapes[0]:
                updated[inst.name] = replace(
                    inst, input_shape=shapes[0], input_shapes=shapes
                )
            produced[inst.name] = output
        if updated:
            self._instances = [
                updated.get(inst.name, inst) for inst in self._instances
            ]
            self._by_name = {inst.name: inst for inst in self._instances}
            self._topo_order = [
                self._by_name[inst.name] for inst in self._topo_order
            ]

    def _build_consumers(self) -> Dict[str, Tuple[str, ...]]:
        consumers: Dict[str, List[str]] = {NETWORK_INPUT: []}
        for inst in self._instances:
            consumers.setdefault(inst.name, [])
        for inst in self._topo_order:
            for src in inst.inputs:
                consumers[src].append(inst.name)
        return {name: tuple(names) for name, names in consumers.items()}

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[LayerInstance]:
        return iter(self._instances)

    def __getitem__(self, index: int) -> LayerInstance:
        return self._instances[index]

    # -- graph views ---------------------------------------------------------
    def topological_order(self) -> List[LayerInstance]:
        """Instances in deterministic topological order (producers first;
        ties broken by declaration index)."""
        return list(self._topo_order)

    def consumers(self) -> Dict[str, Tuple[str, ...]]:
        """Map of node name (incl. :data:`NETWORK_INPUT`) to the names of
        the nodes consuming its output — the liveness information executors
        use to free activations after their last consumer has run."""
        return dict(self._consumers)

    @property
    def output(self) -> LayerInstance:
        """The network output node (the last declared instance)."""
        return self._instances[-1]

    @property
    def is_sequential(self) -> bool:
        """True when every node consumes exactly its declaration predecessor."""
        previous = NETWORK_INPUT
        for inst in self._instances:
            if inst.inputs != (previous,):
                return False
            previous = inst.name
        return True

    # -- views ---------------------------------------------------------------
    @property
    def instances(self) -> List[LayerInstance]:
        return list(self._instances)

    @property
    def compute_instances(self) -> List[LayerInstance]:
        """Conv and FC layer instances (the ones mapped onto crossbars)."""
        return [inst for inst in self._instances if inst.is_compute]

    @property
    def conv_instances(self) -> List[LayerInstance]:
        return [inst for inst in self._instances if inst.kind == "conv"]

    @property
    def fc_instances(self) -> List[LayerInstance]:
        return [inst for inst in self._instances if inst.kind == "fc"]

    @property
    def output_shape(self) -> TensorShape:
        return self._instances[-1].output_shape

    # -- aggregate statistics -------------------------------------------------
    @property
    def total_macs(self) -> int:
        return sum(inst.macs for inst in self._instances)

    @property
    def total_weights(self) -> int:
        return sum(inst.weights for inst in self._instances)

    @property
    def total_activations(self) -> int:
        """Total output elements produced across all layers."""
        return sum(inst.output_shape.elements for inst in self._instances)

    def find(self, name: str) -> LayerInstance:
        """Return the instance with the given layer name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r} in network {self.name!r}") from None

    def summary(self) -> str:
        """Human-readable per-layer summary (useful in examples and docs).

        Branch edges are shown explicitly: a node whose input is not simply
        the preceding row carries a ``<- producer[, producer]`` annotation.
        """
        lines = [f"Network {self.name}  (input {self.input_shape})"]
        header = f"{'idx':>4}  {'name':<20} {'kind':<8} {'input':<16} {'output':<16} {'MACs':>14} {'weights':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        previous = NETWORK_INPUT
        for inst in self._instances:
            edge = ""
            if inst.inputs != (previous,):
                edge = "  <- " + ", ".join(inst.inputs)
            previous = inst.name
            lines.append(
                f"{inst.index:>4}  {inst.name:<20} {inst.kind:<8} "
                f"{str(inst.input_shape):<16} {str(inst.output_shape):<16} "
                f"{inst.macs:>14,} {inst.weights:>12,}{edge}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total MACs {self.total_macs:,}   total weights {self.total_weights:,}   "
            f"total activations {self.total_activations:,}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(name={self.name!r}, layers={len(self)}, macs={self.total_macs:,})"


class NetworkBuilder:
    """Incrementally build a :class:`Network`, tracking the current tip.

    The builder maintains a *tip* — the node whose output the next layer
    consumes.  Linear chains never need to touch it; branching topologies
    record branch points with :meth:`branch`, rewind with :meth:`resume`
    and join with :meth:`add` (residual sum) or :meth:`concat`
    (channel concatenation):

    >>> b = NetworkBuilder("block", TensorShape(8, 8, 8))
    >>> entry = b.branch()
    >>> _ = b.conv(8, 3, name="c1").relu()
    >>> _ = b.add(entry, name="join").relu()
    >>> b.build().find("join").inputs
    ('c1', '@input')
    """

    def __init__(self, name: str, input_shape: TensorShape):
        self.name = name
        self.input_shape = input_shape
        self._tip: str = NETWORK_INPUT
        self._shapes: Dict[str, TensorShape] = {NETWORK_INPUT: input_shape}
        self._instances: List[LayerInstance] = []
        self._counters: dict = {}

    # -- internals -----------------------------------------------------------
    def _auto_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}{count}"

    def add_layer(
        self, layer: Layer, inputs: Optional[Sequence[str]] = None
    ) -> "NetworkBuilder":
        """Append a layer consuming ``inputs`` (default: the current tip)."""
        sources = tuple(inputs) if inputs is not None else (self._tip,)
        if layer.name in self._shapes:
            raise GraphError(
                f"duplicate layer name {layer.name!r} in network {self.name!r}"
            )
        shapes = []
        for src in sources:
            if src not in self._shapes:
                raise GraphError(
                    f"layer {layer.name!r} consumes {src!r}, which no layer "
                    "produces (dangling producer)"
                )
            shapes.append(self._shapes[src])
        try:
            output = layer.resolve_shape(shapes)
        except ValueError as exc:
            raise GraphError(str(exc)) from exc
        inst = LayerInstance(
            layer=layer,
            input_shape=shapes[0],
            output_shape=output,
            index=len(self._instances),
            inputs=sources,
            input_shapes=tuple(shapes),
        )
        self._instances.append(inst)
        self._shapes[layer.name] = output
        self._tip = layer.name
        return self

    # -- branch control --------------------------------------------------------
    @property
    def current_shape(self) -> TensorShape:
        return self._shapes[self._tip]

    @property
    def tip(self) -> str:
        """Name of the node the next layer will consume (:data:`NETWORK_INPUT`
        before any layer is added)."""
        return self._tip

    def branch(self) -> str:
        """Record the current tip as a branch point and return its name."""
        return self._tip

    def resume(self, point: str) -> "NetworkBuilder":
        """Rewind the tip to a recorded branch point (or any node name)."""
        if point not in self._shapes:
            raise GraphError(
                f"cannot resume from {point!r}: no such node in network "
                f"{self.name!r}"
            )
        self._tip = point
        return self

    # -- layer helpers ---------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding="same",
        groups: int = 1,
        name: Optional[str] = None,
        bias: bool = True,
    ) -> "NetworkBuilder":
        layer = Conv2D(
            name=name or self._auto_name("conv"),
            in_channels=self.current_shape.channels,
            out_channels=out_channels,
            kernel_h=kernel,
            kernel_w=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=bias,
        )
        return self.add_layer(layer)

    def fc(self, out_features: int, name: Optional[str] = None, bias: bool = True) -> "NetworkBuilder":
        if not self.current_shape.is_flat:
            self.flatten()
        layer = FullyConnected(
            name=name or self._auto_name("fc"),
            in_features=self.current_shape.elements,
            out_features=out_features,
            bias=bias,
        )
        return self.add_layer(layer)

    def pool(
        self,
        kernel: int,
        stride: int = 0,
        mode: str = "max",
        padding=0,
        name: Optional[str] = None,
    ) -> "NetworkBuilder":
        layer = Pool2D(
            name=name or self._auto_name("pool"),
            kernel=kernel,
            stride=stride,
            mode=mode,
            padding=padding,
        )
        return self.add_layer(layer)

    def relu(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(ReLU(name=name or self._auto_name("relu")))

    def batch_norm(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(
            BatchNorm(name=name or self._auto_name("bn"), channels=self.current_shape.channels)
        )

    def flatten(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(Flatten(name=name or self._auto_name("flatten")))

    def global_avg_pool(self, name: Optional[str] = None) -> "NetworkBuilder":
        return self.add_layer(GlobalAvgPool(name=name or self._auto_name("gap")))

    # -- merge helpers ----------------------------------------------------------
    def add(self, *others: str, name: Optional[str] = None) -> "NetworkBuilder":
        """Residual elementwise addition of the current tip with ``others``
        (branch-point names recorded via :meth:`branch`)."""
        layer = ElementwiseAdd(name=name or self._auto_name("add"))
        return self.add_layer(layer, inputs=(self._tip,) + others)

    def concat(self, inputs: Sequence[str], name: Optional[str] = None) -> "NetworkBuilder":
        """Channel-wise concatenation of the named producers (in order)."""
        layer = Concat(name=name or self._auto_name("concat"))
        return self.add_layer(layer, inputs=tuple(inputs))

    # -- finalisation -----------------------------------------------------------
    def build(self) -> Network:
        return Network(self.name, self.input_shape, self._instances)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkBuilder(name={self.name!r}, layers={len(self._instances)}, shape={self.current_shape})"
