"""Layer descriptors and shape inference.

The accelerator models in this repository never execute a framework graph;
they consume a light-weight, framework-free description of each layer: its
kind, its parameter tensor sizes, and how an input shape maps to an output
shape.  The classes here provide exactly that.

The naming of the dimensions follows Table I of the paper:

========  =========================================
symbol    meaning
========  =========================================
``C``     input channels
``D``     output channels
``H/W``   input feature-map height / width
``Z/G``   filter height / width
``S``     stride
``E/F``   output feature-map height / width
========  =========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor (single image, i.e. batch dimension of 1).

    Fully-connected activations are represented with ``height == width == 1``
    and ``channels`` holding the feature count.
    """

    channels: int
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ValueError(f"TensorShape dimensions must be positive, got {self}")

    @property
    def elements(self) -> int:
        """Total number of scalar elements in the tensor."""
        return self.channels * self.height * self.width

    @property
    def is_flat(self) -> bool:
        """True if the tensor is a 1-D feature vector."""
        return self.height == 1 and self.width == 1

    def flattened(self) -> "TensorShape":
        """Return the shape of this tensor flattened into a feature vector."""
        return TensorShape(channels=self.elements, height=1, width=1)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_flat:
            return f"({self.channels})"
        return f"({self.channels}, {self.height}, {self.width})"


PaddingSpec = Union[int, str]


def _resolve_padding(padding: PaddingSpec, kernel: int) -> int:
    """Translate a padding spec ('same', 'valid' or an int) into pixel count."""
    if isinstance(padding, int):
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        return padding
    if padding == "same":
        return (kernel - 1) // 2
    if padding == "valid":
        return 0
    raise ValueError(f"unknown padding spec {padding!r}")


def conv_output_dim(size: int, kernel: int, stride: int, padding: PaddingSpec) -> int:
    """Spatial output dimension of a convolution/pooling window."""
    if padding == "same":
        return max(1, math.ceil(size / stride))
    pad = _resolve_padding(padding, kernel)
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window of size {kernel} stride {stride} padding {pad} does not fit "
            f"an input of size {size}"
        )
    return out


class Layer:
    """Base interface shared by all layer descriptors."""

    name: str

    #: short lowercase identifier of the layer kind ("conv", "fc", ...)
    kind: str = "layer"

    #: producer arity of a graph node of this kind; ``max_inputs=None``
    #: means unbounded (merge layers such as add / concat)
    min_inputs: int = 1
    max_inputs: Optional[int] = 1

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Shape produced when the layer is applied to ``input_shape``."""
        raise NotImplementedError

    def check_arity(self, n_inputs: int) -> None:
        """Raise if the layer cannot consume ``n_inputs`` producers."""
        too_few = n_inputs < self.min_inputs
        too_many = self.max_inputs is not None and n_inputs > self.max_inputs
        if too_few or too_many:
            if self.max_inputs is None:
                expected = f"at least {self.min_inputs}"
            elif self.min_inputs == self.max_inputs:
                expected = str(self.min_inputs)
            else:
                expected = f"{self.min_inputs}..{self.max_inputs}"
            raise ValueError(
                f"layer {self.name!r} ({self.kind}) expects {expected} "
                f"input(s), got {n_inputs}"
            )

    def resolve_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        """Output shape from the (ordered) producer shapes of a graph node."""
        self.check_arity(len(input_shapes))
        return self.output_shape(input_shapes[0])

    def macs(self, input_shape: TensorShape) -> int:
        """Number of multiply-accumulate operations for one inference."""
        return 0

    def weight_count(self) -> int:
        """Number of scalar weights (including biases) held by the layer."""
        return 0

    @property
    def is_compute(self) -> bool:
        """True for layers that perform MAC operations (conv / fc)."""
        return False


@dataclass(frozen=True)
class Conv2D(Layer):
    """A 2-D convolution layer (the workhorse of every benchmark)."""

    name: str
    in_channels: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: PaddingSpec = "same"
    groups: int = 1
    bias: bool = True

    kind = "conv"

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if self.kernel_h <= 0 or self.kernel_w <= 0:
            raise ValueError("kernel dimensions must be positive")
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.groups <= 0 or self.in_channels % self.groups != 0:
            raise ValueError("groups must divide in_channels")
        if self.out_channels % self.groups != 0:
            raise ValueError("groups must divide out_channels")

    @property
    def is_compute(self) -> bool:
        return True

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if input_shape.channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, "
                f"got {input_shape.channels}"
            )
        out_h = conv_output_dim(input_shape.height, self.kernel_h, self.stride, self.padding)
        out_w = conv_output_dim(input_shape.width, self.kernel_w, self.stride, self.padding)
        return TensorShape(self.out_channels, out_h, out_w)

    def macs(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        per_output = (self.in_channels // self.groups) * self.kernel_h * self.kernel_w
        return out.elements * per_output

    def weight_count(self) -> int:
        weights = (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kernel_h
            * self.kernel_w
        )
        if self.bias:
            weights += self.out_channels
        return weights

    def input_reuse_factor(self) -> float:
        """Average number of times each input pixel is used (D*Z*G/S^2).

        This is the reuse bound derived in Section II-A of the paper.
        """
        return self.out_channels * self.kernel_h * self.kernel_w / (self.stride ** 2)


@dataclass(frozen=True)
class FullyConnected(Layer):
    """A fully-connected (dense) layer."""

    name: str
    in_features: int
    out_features: int
    bias: bool = True

    kind = "fc"

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError("feature counts must be positive")

    @property
    def is_compute(self) -> bool:
        return True

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if input_shape.elements != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} input features, "
                f"got {input_shape.elements}"
            )
        return TensorShape(self.out_features)

    def macs(self, input_shape: TensorShape) -> int:
        return self.in_features * self.out_features

    def weight_count(self) -> int:
        weights = self.in_features * self.out_features
        if self.bias:
            weights += self.out_features
        return weights

    def input_reuse_factor(self) -> float:
        """Each FC input is used once per output neuron."""
        return float(self.out_features)


@dataclass(frozen=True)
class Pool2D(Layer):
    """Max or average pooling."""

    name: str
    kernel: int
    stride: int = 0  # 0 means "same as kernel"
    mode: str = "max"
    padding: PaddingSpec = 0

    kind = "pool"

    def __post_init__(self) -> None:
        if self.kernel <= 0:
            raise ValueError("kernel must be positive")
        if self.mode not in ("max", "avg"):
            raise ValueError(f"unknown pooling mode {self.mode!r}")

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride > 0 else self.kernel

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        out_h = conv_output_dim(
            input_shape.height, self.kernel, self.effective_stride, self.padding
        )
        out_w = conv_output_dim(
            input_shape.width, self.kernel, self.effective_stride, self.padding
        )
        return TensorShape(input_shape.channels, out_h, out_w)


@dataclass(frozen=True)
class GlobalAvgPool(Layer):
    """Average pooling over the entire spatial extent."""

    name: str

    kind = "gap"

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(input_shape.channels)


@dataclass(frozen=True)
class ReLU(Layer):
    """Rectified linear activation."""

    name: str

    kind = "relu"

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Batch normalisation (folded at inference time; tracked for weights)."""

    name: str
    channels: int

    kind = "bn"

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if input_shape.channels != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, got {input_shape.channels}"
            )
        return input_shape

    def weight_count(self) -> int:
        # scale and shift per channel
        return 2 * self.channels


@dataclass(frozen=True)
class Flatten(Layer):
    """Flatten a spatial tensor into a feature vector."""

    name: str

    kind = "flatten"

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape.flattened()


@dataclass(frozen=True)
class ElementwiseAdd(Layer):
    """Residual addition: sums two or more equal-shaped producers."""

    name: str

    kind = "add"
    min_inputs = 2
    max_inputs = None

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def resolve_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(len(input_shapes))
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if shape != first:
                raise ValueError(
                    f"layer {self.name!r} (add) merges mismatched shapes: "
                    f"{', '.join(str(s) for s in input_shapes)}"
                )
        return first


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation of two or more producers.

    The SqueezeNet fire module's expand-branch join.  Inputs must agree on
    the spatial extent (or all be flat vectors); the output channel count is
    the sum of the input channel counts.  No MACs, no weights — a pure
    data-movement node.
    """

    name: str

    kind = "concat"
    min_inputs = 2
    max_inputs = None

    def resolve_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        self.check_arity(len(input_shapes))
        first = input_shapes[0]
        for shape in input_shapes[1:]:
            if (shape.height, shape.width) != (first.height, first.width):
                raise ValueError(
                    f"layer {self.name!r} (concat) requires equal spatial "
                    "extents, got "
                    f"{', '.join(str(s) for s in input_shapes)}"
                )
        return TensorShape(
            sum(shape.channels for shape in input_shapes), first.height, first.width
        )
