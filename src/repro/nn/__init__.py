"""DNN workload substrate for the TIMELY reproduction.

This package provides everything the accelerator models need to know about a
CNN/DNN workload:

* :mod:`repro.nn.layers` — layer descriptors and shape inference,
* :mod:`repro.nn.network` — a resolved network as a dataflow graph (layer
  instances with explicit producer edges, deterministic topological
  traversal, liveness information) and a builder with branch/merge helpers,
* :mod:`repro.nn.models` — the benchmark model zoo used throughout the paper's
  evaluation (VGG-D, CNN-1, MLP-L, VGG-1/2/3/4, MSRA-1/2/3, ResNet-18/50/101/152,
  SqueezeNet),
* :mod:`repro.nn.statistics` — per-layer/per-network MAC, weight and
  activation statistics,
* :mod:`repro.nn.functional` — numpy reference kernels (conv, fc, pooling,
  activation) used by the accuracy study and circuit cross-checks,
* :mod:`repro.nn.quantization` — linear quantisation helpers.
"""

from repro.nn.layers import (
    BatchNorm,
    Concat,
    Conv2D,
    ElementwiseAdd,
    Flatten,
    FullyConnected,
    GlobalAvgPool,
    Layer,
    Pool2D,
    ReLU,
    TensorShape,
)
from repro.nn.network import (
    NETWORK_INPUT,
    GraphError,
    LayerInstance,
    Network,
    NetworkBuilder,
)
from repro.nn.models import MODEL_ZOO, build_model, list_models
from repro.nn.statistics import LayerStats, NetworkStats, layer_stats, network_stats

__all__ = [
    "TensorShape",
    "Layer",
    "Conv2D",
    "FullyConnected",
    "Pool2D",
    "ReLU",
    "BatchNorm",
    "Flatten",
    "ElementwiseAdd",
    "Concat",
    "GlobalAvgPool",
    "NETWORK_INPUT",
    "GraphError",
    "LayerInstance",
    "Network",
    "NetworkBuilder",
    "MODEL_ZOO",
    "build_model",
    "list_models",
    "LayerStats",
    "NetworkStats",
    "layer_stats",
    "network_stats",
]
