"""Linear quantisation helpers.

TIMELY uses 8-bit inputs/outputs with 8-bit weights (split 4+4 over two
crossbar columns) when compared against PRIME, and a 16-bit configuration when
compared against ISAAC.  The helpers here implement the straightforward
symmetric / unsigned linear quantisation the behavioural models rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor together with the scale used to produce it."""

    values: np.ndarray
    scale: float
    bits: int
    signed: bool

    def dequantize(self) -> np.ndarray:
        """Recover a floating-point approximation of the original tensor."""
        return self.values.astype(np.float64) * self.scale

    @property
    def levels(self) -> int:
        return 2 ** self.bits


def quantize_symmetric(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetric signed quantisation to ``bits`` bits (weights)."""
    if bits < 2:
        raise ValueError("symmetric quantisation needs at least 2 bits")
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    qmax = 2 ** (bits - 1) - 1
    scale = max_abs / qmax if max_abs > 0 else 1.0
    values = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return QuantizedTensor(values=values, scale=scale, bits=bits, signed=True)


def quantize_unsigned(x: np.ndarray, bits: int) -> QuantizedTensor:
    """Unsigned quantisation to ``bits`` bits (post-ReLU activations)."""
    if bits < 1:
        raise ValueError("unsigned quantisation needs at least 1 bit")
    if np.any(x < 0):
        raise ValueError("unsigned quantisation requires non-negative inputs")
    max_val = float(np.max(x)) if x.size else 0.0
    qmax = 2 ** bits - 1
    scale = max_val / qmax if max_val > 0 else 1.0
    values = np.clip(np.round(x / scale), 0, qmax).astype(np.int64)
    return QuantizedTensor(values=values, scale=scale, bits=bits, signed=False)


def quantize_unsigned_batch(x: np.ndarray, bits: int) -> tuple:
    """Per-image unsigned quantisation of a batched ``(N, ...)`` tensor.

    Each leading-axis slice gets its own scale, exactly as if
    :func:`quantize_unsigned` had been applied per image — so a batched
    engine run produces the same codes as ``N`` independent single-image
    runs while the downstream matmuls amortise over the whole batch.
    Returns ``(values, scales)`` with ``values`` of ``x``'s shape (int64)
    and ``scales`` of shape ``(N,)``.
    """
    if bits < 1:
        raise ValueError("unsigned quantisation needs at least 1 bit")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 2:
        raise ValueError("batched quantisation needs a leading batch axis")
    qmax = 2 ** bits - 1
    if x.size:
        flat = x.reshape(x.shape[0], -1)
        if float(flat.min()) < 0:
            raise ValueError("unsigned quantisation requires non-negative inputs")
        maxes = flat.max(axis=1)
    else:
        maxes = np.zeros(x.shape[0])
    scales = np.where(maxes > 0, maxes / qmax, 1.0)
    shape = (-1,) + (1,) * (x.ndim - 1)
    values = x / scales.reshape(shape)
    np.rint(values, out=values)
    np.clip(values, 0, qmax, out=values)
    return values.astype(np.int64), scales


@dataclass(frozen=True)
class ChannelQuantizedTensor:
    """An integer tensor with one scale per leading-axis slice.

    Per-output-channel weight quantisation: each output channel maps onto
    its own crossbar column(s), and the column read-out is dequantised
    digitally, so every channel can use the full integer range regardless
    of the other channels' dynamic range.
    """

    values: np.ndarray
    scales: np.ndarray
    bits: int

    def dequantize(self) -> np.ndarray:
        shape = (-1,) + (1,) * (self.values.ndim - 1)
        return self.values.astype(np.float64) * self.scales.reshape(shape)

    @property
    def levels(self) -> int:
        return 2 ** self.bits


def quantize_symmetric_per_channel(x: np.ndarray, bits: int) -> ChannelQuantizedTensor:
    """Symmetric signed quantisation with one scale per leading-axis slice."""
    if bits < 2:
        raise ValueError("symmetric quantisation needs at least 2 bits")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 1:
        raise ValueError("per-channel quantisation needs at least one axis")
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.max(np.abs(x.reshape(x.shape[0], -1)), axis=1) if x.size else np.zeros(x.shape[0])
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    shape = (-1,) + (1,) * (x.ndim - 1)
    values = np.clip(np.round(x / scales.reshape(shape)), -qmax, qmax).astype(np.int64)
    return ChannelQuantizedTensor(values=values, scales=scales, bits=bits)


def quantization_error(x: np.ndarray, bits: int, signed: bool = True) -> float:
    """Root-mean-square quantisation error (used in noise-budget tests)."""
    quant = quantize_symmetric(x, bits) if signed else quantize_unsigned(x, bits)
    return float(np.sqrt(np.mean((quant.dequantize() - x) ** 2)))


def split_msb_lsb(values: np.ndarray, bits: int, low_bits: int) -> tuple:
    """Split signed integer weights into MSB and LSB slices.

    TIMELY's sub-ranging design (Section IV-C) maps an 8-bit weight onto two
    adjacent 4-bit bit-cell columns.  This helper performs that split: the
    returned pair ``(msb, lsb)`` satisfies ``values = msb * 2**low_bits + lsb``
    with ``0 <= lsb < 2**low_bits``.
    """
    if low_bits <= 0 or low_bits >= bits:
        raise ValueError("low_bits must be strictly between 0 and bits")
    base = 2 ** low_bits
    lsb = np.mod(values, base)
    msb = (values - lsb) // base
    return msb, lsb


def combine_msb_lsb(msb: np.ndarray, lsb: np.ndarray, low_bits: int) -> np.ndarray:
    """Inverse of :func:`split_msb_lsb`."""
    return msb * (2 ** low_bits) + lsb
