"""Per-layer and per-network workload statistics.

These statistics are purely algorithmic (independent of any accelerator):
MAC counts, weight counts, activation volumes, and the input-reuse factor
``D*Z*G/S^2`` discussed in Section II-A of the paper.  The architecture-
dependent access counts (how many times a datum crosses a particular memory
level on a particular accelerator) live in :mod:`repro.mapping.access_counts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerInstance, Network


@dataclass(frozen=True)
class LayerStats:
    """Algorithmic statistics of a single layer instance."""

    name: str
    kind: str
    macs: int
    weights: int
    input_elements: int
    output_elements: int
    kernel_size: int
    stride: int
    input_reuse: float

    @property
    def operations(self) -> int:
        """Operations counted as 2 per MAC (multiply + add), matching TOPs."""
        return 2 * self.macs


@dataclass(frozen=True)
class NetworkStats:
    """Aggregated statistics of a network."""

    name: str
    layers: List[LayerStats]

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_operations(self) -> int:
        return 2 * self.total_macs

    @property
    def total_weights(self) -> int:
        return sum(layer.weights for layer in self.layers)

    @property
    def total_input_elements(self) -> int:
        return sum(layer.input_elements for layer in self.layers)

    @property
    def total_output_elements(self) -> int:
        return sum(layer.output_elements for layer in self.layers)

    @property
    def conv_layers(self) -> List[LayerStats]:
        return [layer for layer in self.layers if layer.kind == "conv"]

    @property
    def fc_layers(self) -> List[LayerStats]:
        return [layer for layer in self.layers if layer.kind == "fc"]

    def by_name(self) -> Dict[str, LayerStats]:
        return {layer.name: layer for layer in self.layers}


def layer_stats(inst: LayerInstance) -> LayerStats:
    """Compute :class:`LayerStats` for one layer instance."""
    layer = inst.layer
    kernel_size = 1
    stride = 1
    reuse = 1.0
    if isinstance(layer, Conv2D):
        kernel_size = layer.kernel_h
        stride = layer.stride
        reuse = layer.input_reuse_factor()
    elif isinstance(layer, FullyConnected):
        reuse = layer.input_reuse_factor()
    return LayerStats(
        name=inst.name,
        kind=inst.kind,
        macs=inst.macs,
        weights=inst.weights,
        input_elements=inst.input_shape.elements,
        output_elements=inst.output_shape.elements,
        kernel_size=kernel_size,
        stride=stride,
        input_reuse=reuse,
    )


def network_stats(network: Network, compute_only: bool = False) -> NetworkStats:
    """Compute statistics for a whole network.

    Parameters
    ----------
    network:
        The network to analyse.
    compute_only:
        When True, only conv and FC layers are included (the layers that are
        mapped onto ReRAM crossbars).
    """
    instances = network.compute_instances if compute_only else network.instances
    return NetworkStats(name=network.name, layers=[layer_stats(inst) for inst in instances])
