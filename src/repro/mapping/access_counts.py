"""Architecture-dependent per-memory-level access counts.

These are the counts :mod:`repro.nn.statistics` deliberately leaves out: how
many times a datum crosses each memory level / interface of a *particular*
accelerator while executing one inference of one layer.  They are derived
from a :class:`repro.mapping.crossbar_mapping.LayerMapping` under one of two
data-movement policies:

* :func:`timely_access_counts` — TIMELY's only-once input read (O2IR):
  each input element is read from the chip-level buffer and DTC-converted
  exactly once, then forwarded between crossbars in the time domain through
  X-subBufs; partial sums stay analog (P-subBuf + I-adder) until a single
  TDC digitises each output.
* :func:`voltage_domain_access_counts` — the PRIME/ISAAC pattern: inputs are
  re-read and DAC-converted for every use (ISAAC reports each CONV input
  read 47 times on average for MSRA-3, Section III-A of the TIMELY paper),
  every active column of every row tile is ADC-digitised once per input
  slice, and partial sums bounce through a digital partial-sum buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.mapping.crossbar_mapping import CrossbarConfig, LayerMapping


@dataclass(frozen=True)
class AccessCounts:
    """Event counts for one inference of one layer on one accelerator.

    All counts are in *elements* (not bits); ``crossbar_ops`` counts physical
    array activations (one tile processing one input vector / slice).
    """

    input_reads: int = 0            # chip-level input-buffer reads
    input_conversions: int = 0      # DTC (time-domain) or DAC (voltage) conversions
    input_forwards: int = 0         # X-subBuf latch events (analog input reuse)
    crossbar_ops: int = 0           # physical array activations
    partial_sum_merges: int = 0     # analog mirror/add or digital shift-add events
    partial_sum_buffer_accesses: int = 0  # digital partial-sum buffer R/W (voltage only)
    output_conversions: int = 0     # TDC or ADC conversions
    output_writes: int = 0          # output-buffer writes

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_conversions(self) -> int:
        return self.input_conversions + self.output_conversions


def timely_access_counts(mapping: LayerMapping, config: CrossbarConfig) -> AccessCounts:
    """Access counts under TIMELY's O2IR + analog-local-buffer policy."""
    positions = mapping.output_positions
    vector = mapping.input_vector_length
    tiles = mapping.groups * mapping.row_tiles * mapping.col_tiles

    # Every use of an input at a crossbar boundary is one X-subBuf hop; the
    # first use comes straight from the DTC, later uses are forwarded.
    uses = positions * vector * mapping.col_tiles
    return AccessCounts(
        input_reads=mapping.input_elements,
        input_conversions=mapping.input_elements,
        input_forwards=max(uses - mapping.input_elements, 0),
        crossbar_ops=positions * tiles,
        # Each row tile's column partial sum is mirrored (P-subBuf) into the
        # I-adder; accumulation happens in analog, never in a digital buffer.
        partial_sum_merges=positions * mapping.groups * mapping.cols_needed
        * mapping.row_tiles,
        partial_sum_buffer_accesses=0,
        # the sub-ranging read-out digitises each MSB/LSB bit-cell column
        # separately (one TDC conversion per weight column, matching
        # SubRangingDotProduct and the baseline per-column ADC accounting)
        output_conversions=positions * mapping.output_channels * config.cols_per_weight,
        output_writes=mapping.output_elements,
    )


def voltage_domain_access_counts(
    mapping: LayerMapping, config: CrossbarConfig, dac_bits: int
) -> AccessCounts:
    """Access counts under the PRIME/ISAAC voltage-domain policy.

    ``dac_bits`` is the input resolution presented per array activation;
    an ``input_bits``-bit input therefore needs ``ceil(input_bits /
    dac_bits)`` sequential slices (ISAAC streams 1 bit per cycle).
    """
    if dac_bits <= 0:
        raise ValueError("dac_bits must be positive")
    slices = math.ceil(config.input_bits / dac_bits)
    positions = mapping.output_positions
    vector = mapping.input_vector_length
    tiles = mapping.groups * mapping.row_tiles * mapping.col_tiles

    # No analog input reuse: every tile column that needs an input re-reads
    # and re-converts it, once per slice.
    input_events = positions * vector * mapping.col_tiles
    # Every active column of every row tile is digitised once per slice.
    column_reads = (
        positions * mapping.groups * mapping.cols_needed * mapping.row_tiles * slices
    )
    # Digital accumulation: slice and bit-column partials merge in the
    # shift-add registers next to the ADC (priced per merge below); only the
    # partials of different *row tiles* bounce through the partial-sum
    # buffer, one read-modify-write per extra tile.
    psum_accesses = 2 * positions * mapping.output_channels * (mapping.row_tiles - 1)
    return AccessCounts(
        input_reads=input_events,
        input_conversions=input_events * slices,
        input_forwards=0,
        crossbar_ops=positions * tiles * slices,
        partial_sum_merges=column_reads,
        partial_sum_buffer_accesses=max(psum_accesses, 0),
        output_conversions=column_reads,
        output_writes=mapping.output_elements,
    )


def input_read_amplification(counts: AccessCounts, input_elements: int) -> float:
    """Average number of chip-level reads per distinct input element.

    TIMELY's O2IR keeps this at 1.0; ISAAC-style mappings reach tens
    (the paper quotes 47x for MSRA-3 CONV layers).
    """
    if input_elements <= 0:
        raise ValueError("input_elements must be positive")
    return counts.input_reads / input_elements
