"""Tiling of network compute layers onto fixed-size ReRAM crossbars.

Every conv / FC layer is lowered the same way the paper (and PRIME / ISAAC)
lower it: the weight tensor becomes a ``(C*Z*G, D)`` matrix (im2col layout,
one row per input-vector element, one column group per output channel), and
that matrix is partitioned into ``rows x cols`` tiles, each tile one physical
crossbar.  A ``weight_bits``-bit weight occupies ``ceil(weight_bits /
cell_bits)`` adjacent bit-cell columns (the MSB/LSB split performed by
:func:`repro.nn.quantization.split_msb_lsb` — see
:class:`repro.circuits.timing.SubRangingDotProduct` for the behavioural
read-out of such a pair).

Grouped convolutions map each group to its own tile grid: output block ``g``
only needs the rows of input block ``g``, so the groups never share a
crossbar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.context import ArchSpec
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerInstance, Network

#: Historical name of the crossbar geometry record.  The physical description
#: now lives in :class:`repro.context.ArchSpec` (shared by circuits, mapping,
#: energy and the functional engine); ``CrossbarConfig`` remains as an alias
#: so existing call sites keep working unchanged.
CrossbarConfig = ArchSpec


@dataclass(frozen=True)
class LayerMapping:
    """How one compute layer tiles onto crossbars.

    ``rows_needed`` / ``cols_needed`` are per weight-sharing group; the
    physical tile grid is replicated ``groups`` times.
    """

    name: str
    kind: str
    groups: int
    rows_needed: int
    cols_needed: int
    row_tiles: int
    col_tiles: int
    output_positions: int
    output_channels: int
    macs: int
    weight_count: int
    input_elements: int
    output_elements: int

    @property
    def crossbars(self) -> int:
        """Number of physical crossbars the layer occupies."""
        return self.groups * self.row_tiles * self.col_tiles

    @property
    def input_vector_length(self) -> int:
        """Distinct input elements consumed per output position (all groups)."""
        return self.groups * self.rows_needed

    def utilization(self, config: CrossbarConfig) -> float:
        """Fraction of allocated cells holding weights."""
        used = self.groups * self.rows_needed * self.cols_needed
        return used / (self.crossbars * config.cells)


def map_layer(inst: LayerInstance, config: CrossbarConfig) -> LayerMapping:
    """Tile one conv / FC layer instance onto crossbars."""
    layer = inst.layer
    if isinstance(layer, Conv2D):
        groups = layer.groups
        rows_needed = (layer.in_channels // groups) * layer.kernel_h * layer.kernel_w
        out_channels = layer.out_channels
        output_positions = inst.output_shape.height * inst.output_shape.width
    elif isinstance(layer, FullyConnected):
        groups = 1
        rows_needed = layer.in_features
        out_channels = layer.out_features
        output_positions = 1
    else:
        raise TypeError(f"layer {inst.name!r} of kind {inst.kind!r} is not mappable")

    cols_needed = (out_channels // groups) * config.cols_per_weight
    # Column tiles are counted in whole-weight units: all cols_per_weight
    # bit-cell columns of a weight must land in the same physical crossbar
    # (the sub-ranging read-out recombines them locally), so a tile holds
    # floor(cols / cols_per_weight) weights, not cols / cols_per_weight
    # fractional ones.
    weights_per_tile = config.weights_per_col_tile
    if weights_per_tile == 0:
        raise ValueError(
            f"a {config.cols}-column crossbar cannot hold a single "
            f"{config.weight_bits}-bit weight "
            f"({config.cols_per_weight} bit-cell columns per weight)"
        )
    return LayerMapping(
        name=inst.name,
        kind=inst.kind,
        groups=groups,
        rows_needed=rows_needed,
        cols_needed=cols_needed,
        row_tiles=math.ceil(rows_needed / config.rows),
        col_tiles=math.ceil((out_channels // groups) / weights_per_tile),
        output_positions=output_positions,
        output_channels=out_channels,
        macs=inst.macs,
        weight_count=inst.weights,
        input_elements=inst.input_shape.elements,
        output_elements=inst.output_shape.elements,
    )


class NetworkMapping:
    """The full crossbar allocation of a network (weight-stationary)."""

    def __init__(self, network: Network, config: CrossbarConfig):
        self.name = network.name
        self.config = config
        self.layers: List[LayerMapping] = [
            map_layer(inst, config) for inst in network.compute_instances
        ]
        if not self.layers:
            raise ValueError(f"network {network.name!r} has no mappable layers")

    def __iter__(self) -> Iterator[LayerMapping]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def by_name(self) -> Dict[str, LayerMapping]:
        return {layer.name: layer for layer in self.layers}

    @property
    def total_crossbars(self) -> int:
        return sum(layer.crossbars for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.layers)

    def utilization(self) -> float:
        """Cell utilization over the whole allocation."""
        used = sum(
            layer.groups * layer.rows_needed * layer.cols_needed for layer in self.layers
        )
        return used / (self.total_crossbars * self.config.cells)


def map_network(network: Network, config: CrossbarConfig = CrossbarConfig()) -> NetworkMapping:
    """Tile every compute layer of ``network`` onto crossbars."""
    return NetworkMapping(network, config)
