"""Crossbar mapping and per-memory-level access counting.

* :mod:`repro.mapping.crossbar_mapping` — tiles the conv/FC layers of a
  :class:`repro.nn.network.Network` onto fixed-size ReRAM crossbars
  (im2col row/column partitioning, MSB/LSB weight splitting, per-layer
  crossbar counts and utilization),
* :mod:`repro.mapping.access_counts` — turns a layer mapping into the
  architecture-dependent access counts (buffer reads, DTC/TDC or DAC/ADC
  conversions, partial-sum traffic) that the energy estimator in
  :mod:`repro.energy` prices.
"""

from repro.mapping.access_counts import (
    AccessCounts,
    input_read_amplification,
    timely_access_counts,
    voltage_domain_access_counts,
)
from repro.mapping.crossbar_mapping import (
    CrossbarConfig,
    LayerMapping,
    NetworkMapping,
    map_layer,
    map_network,
)

__all__ = [
    "CrossbarConfig",
    "LayerMapping",
    "NetworkMapping",
    "map_layer",
    "map_network",
    "AccessCounts",
    "timely_access_counts",
    "voltage_domain_access_counts",
    "input_read_amplification",
]
