"""Shared simulation context threaded through circuits → mapping → energy → engine → sim.

Prior to this module, every layer of the stack took its own ad-hoc pair of
configuration objects: the mapper a ``CrossbarConfig``, the estimator a
``CrossbarConfig`` *plus* an ``AcceleratorSpec``, and the circuit models a
loose bag of cell / converter dataclasses that had to be kept consistent with
both by hand.  :class:`ArchSpec` and :class:`SimContext` unify that:

* :class:`ArchSpec` is the single description of the *physical* architecture —
  crossbar geometry, per-cell precision, weight/input precision, the ReRAM
  resistance range and the interface resolution.  It subsumes the old
  ``CrossbarConfig`` (which is now an alias of it, so existing call sites and
  pickles keep working) and knows how to build the circuit-level dataclasses
  (:meth:`ArchSpec.cell_spec`, :meth:`ArchSpec.dtc`) so the behavioural models
  and the analytics can no longer drift apart.
* :class:`SimContext` bundles an :class:`ArchSpec` with the *run-time* choices
  of one simulation: which accelerator configuration prices the events, which
  noise model (if any) perturbs the analog chains, and the seed that makes a
  run reproducible.  The functional engine (:mod:`repro.engine`), the energy
  estimator (:mod:`repro.energy.estimator`) and the CLI (:mod:`repro.sim`)
  all consume one ``SimContext`` instead of re-deriving the pieces.

This module only imports :mod:`numpy` and the leaf circuit dataclasses at
call time, so every other package (``circuits``, ``mapping``, ``energy``,
``engine``, ``sim``) can import it without creating a cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.circuits.converters import DTC, TDC
    from repro.circuits.noise import HardwareNoiseConfig
    from repro.circuits.reram import ReRAMCellSpec, ReRAMCrossbar
    from repro.energy.tables import AcceleratorSpec
    from repro.faults import FaultModel
    from repro.mapping.crossbar_mapping import NetworkMapping
    from repro.nn.network import Network


@dataclass(frozen=True)
class ArchSpec:
    """Physical architecture: crossbar geometry, precision and cell physics.

    The first five fields are the historical ``CrossbarConfig`` fields (the
    defaults are the paper's PRIME-comparison configuration: 256x256 arrays of
    4-bit cells holding 8-bit weights driven by 8-bit inputs); the remaining
    fields lift the circuit-level knobs that used to be hard-coded at each
    construction site.
    """

    rows: int = 256
    cols: int = 256
    cell_bits: int = 4
    weight_bits: int = 8
    input_bits: int = 8
    #: ReRAM resistance range (Section II-B); sets g_min/g_max of every cell
    r_min_ohm: float = 20e3
    r_max_ohm: float = 2e6
    #: DTC/TDC unit delay (50 ps per Table II)
    t_del_s: float = 50e-12
    #: supply driving the rows during phase I
    v_dd: float = 1.2
    #: spare crossbar rows provisioned for redundancy remap: when a tile's
    #: stuck-cell fraction (see :mod:`repro.faults`) exceeds the fault
    #: model's threshold, up to this many of its worst rows are remapped
    #: onto spares.  Purely a run-time repair budget — it does not change
    #: the mapping geometry or the programmed-state content key, so it is
    #: excluded from equality/hashing and cached states stay reusable.
    spare_rows: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        if self.spare_rows < 0:
            raise ValueError("spare_rows must be non-negative")
        if self.cell_bits <= 0 or self.weight_bits <= 0 or self.input_bits <= 0:
            raise ValueError("bit widths must be positive")
        if self.r_min_ohm <= 0 or self.r_max_ohm <= self.r_min_ohm:
            raise ValueError("require 0 < r_min < r_max")
        if self.t_del_s <= 0:
            raise ValueError("unit delay must be positive")
        if self.v_dd <= 0:
            raise ValueError("V_DD must be positive")

    # -- geometry (the old CrossbarConfig surface) ----------------------------
    @property
    def cols_per_weight(self) -> int:
        """Bit-cell columns per weight (MSB/LSB split across adjacent cells)."""
        return math.ceil(self.weight_bits / self.cell_bits)

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    @property
    def weights_per_col_tile(self) -> int:
        """Full-precision weights held by the columns of one physical tile."""
        return self.cols // self.cols_per_weight

    def tile_height(self, rows_needed: int) -> int:
        """Rows a (possibly partial) tile actually occupies.

        The single sizing rule for partial row tiles, shared by every
        crossbar construction site so the engine backends cannot diverge.
        """
        return min(int(rows_needed), self.rows)

    # -- circuit-model factories ----------------------------------------------
    def cell_spec(self) -> "ReRAMCellSpec":
        """The ReRAM cell description implied by this architecture."""
        from repro.circuits.reram import ReRAMCellSpec

        return ReRAMCellSpec(
            bits_per_cell=self.cell_bits,
            r_min_ohm=self.r_min_ohm,
            r_max_ohm=self.r_max_ohm,
        )

    def dtc(self) -> "DTC":
        """An input DTC matching the architecture's input precision."""
        from repro.circuits.converters import DTC

        return DTC(resolution=self.input_bits, t_del_s=self.t_del_s)

    def tdc(self) -> "TDC":
        """An output TDC on the same time axis as :meth:`dtc`."""
        from repro.circuits.converters import TDC

        return TDC(resolution=self.input_bits, t_del_s=self.t_del_s)

    def make_crossbar(
        self,
        noise: Optional["HardwareNoiseConfig"] = None,
        rows: Optional[int] = None,
    ) -> "ReRAMCrossbar":
        """A blank physical crossbar of this geometry.

        ``rows`` overrides (and is capped at) the architecture's tile
        height — partial row tiles are sized at the rows they actually
        occupy, which is the one sizing rule both engine backends share.
        """
        from repro.circuits.reram import ReRAMCrossbar

        height = self.rows if rows is None else self.tile_height(rows)
        return ReRAMCrossbar(height, self.cols, self.cell_spec(), noise)


#: Names accepted by :meth:`SimContext.accelerator_spec` / the CLI.
ACCELERATOR_STYLES = ("timely", "prime", "isaac")

#: Functional-engine execution backends: ``"packed"`` runs each layer as
#: per-slice contiguous tensors with one batched matmul per row-tile slice
#: and a fully vectorized time-domain chain (the fast default);
#: ``"tiled"`` is the legacy per-crossbar-object loop kept as the
#: correctness reference.
ENGINE_BACKENDS = ("packed", "tiled")

#: Compute dtypes of the packed execution backend: ``"float64"`` (default,
#: bit-identical to the historical behaviour) or ``"float32"`` — half the
#: conductance-tensor memory and single-precision BLAS on the hot matmul +
#: read-out chain, at a documented looser accuracy bar (<= 1e-4 relative
#: against the float64 path on the analog chains; ideal-mode integer
#: matmuls that would lose exactness in float32 fall back to float64 per
#: layer, so requesting float32 never breaks exact read-out).  The tiled
#: backend is the correctness reference and always computes in float64.
COMPUTE_DTYPES = ("float64", "float32")


def accelerator_factories() -> Dict[str, Callable[[ArchSpec], "AcceleratorSpec"]]:
    """The accelerator-name → config-factory registry, keyed by
    :data:`ACCELERATOR_STYLES`.  This is the single place the mapping is
    defined; the CLI and :meth:`SimContext.accelerator_spec` both read it.
    """
    from repro.energy.tables import (
        isaac_like_config,
        prime_like_config,
        timely_config,
    )

    return dict(zip(ACCELERATOR_STYLES, (timely_config, prime_like_config, isaac_like_config)))


@dataclass
class SimContext:
    """One simulation run: architecture + accelerator + noise + seed.

    ``accelerator`` selects the event-pricing configuration by name
    (``"timely"``, ``"prime"`` or ``"isaac"``); ``noise`` perturbs the analog
    chains of the functional engine (``None`` = ideal hardware); ``seed``
    drives every deterministic draw (weight initialisation, input
    generation), so two contexts with equal fields reproduce each other
    exactly; ``backend`` selects the functional-engine execution backend
    (see :data:`ENGINE_BACKENDS` — noiseless, both produce the same numbers
    to float tolerance, the packed one just gets there much faster);
    ``compute_dtype`` selects the packed backend's arithmetic precision
    (see :data:`COMPUTE_DTYPES` — ``"float32"`` halves conductance memory
    and roughly doubles matmul throughput at a ≤1e-4 relative-accuracy
    bar, while ``"float64"``, the default, stays bit-identical to the
    historical behaviour); ``chunk_bytes`` bounds the packed read-out
    chain's working set — when set, the stacked tiles × positions charge
    tensor is split along the position axis into chunks of at most this
    many bytes and the two-phase chain runs per chunk fully in place, so
    the layer's peak transient memory is one chunk instead of
    ``row_tiles × n_slices`` copies of the whole im2col output.  ``None``
    (the default) keeps the historical single-pass read-out, which is
    bit-identical to prior releases; chunked results agree with it to
    float rounding (BLAS picks different summation blockings per chunk
    shape), pinned ≤1e-12 relative in the tests.
    """

    arch: ArchSpec = field(default_factory=ArchSpec)
    accelerator: str = "timely"
    noise: Optional["HardwareNoiseConfig"] = None
    seed: int = 0
    backend: str = ENGINE_BACKENDS[0]
    compute_dtype: str = COMPUTE_DTYPES[0]
    chunk_bytes: Optional[int] = None
    #: hard-fault model (stuck cells / drift / read-out saturation, see
    #: :mod:`repro.faults`); ``None`` = a defect-free chip.  Faults perturb
    #: analog executions only — ideal mode stays the exact reference — and
    #: are applied at wiring time, so programmed states stay fault-free.
    faults: Optional["FaultModel"] = None
    #: hot-loop implementation tier serving the read-out chain and im2col
    #: (see :mod:`repro.kernels.dispatch`): ``"auto"`` (first available of
    #: compiled C → numba → numpy, overridable via ``REPRO_KERNEL``) or an
    #: explicit tier name.  Performance metadata, not simulation semantics:
    #: float64 results are bit-identical across tiers, so the tier is
    #: excluded from equality/hashing and from every content key — cached
    #: programmed states and sweep trial keys are tier-independent.
    kernel: str = field(default="auto", compare=False)
    #: worker threads of the packed backend's chunked read-out walk.  With
    #: ``chunk_bytes`` set and ``threads > 1``, independent charge chunks
    #: run concurrently on a bounded thread pool (the matmul and the
    #: compiled read-out kernel both release the GIL).  The chunk split
    #: depends only on ``chunk_bytes`` and each chunk writes a disjoint
    #: output slice, so results are byte-identical at any worker count —
    #: like ``kernel``, pure performance metadata, excluded from keys.
    threads: int = field(default=1, compare=False)

    # A SimContext is a bag of plain dataclasses (ArchSpec, the stateless
    # HardwareNoiseConfig) and scalars, so it pickles cleanly across the
    # process boundary of the Monte-Carlo sweep pool (repro.sweep).

    def __post_init__(self) -> None:
        if self.accelerator not in ACCELERATOR_STYLES:
            raise ValueError(
                f"unknown accelerator {self.accelerator!r}; "
                f"choose from: {', '.join(ACCELERATOR_STYLES)}"
            )
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"choose from: {', '.join(ENGINE_BACKENDS)}"
            )
        if self.compute_dtype not in COMPUTE_DTYPES:
            raise ValueError(
                f"unknown compute dtype {self.compute_dtype!r}; "
                f"choose from: {', '.join(COMPUTE_DTYPES)}"
            )
        if self.chunk_bytes is not None and self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive (or None for the default)")
        # deferred import: repro.kernels.dispatch only imports numpy and
        # repro.nn.functional, so no cycle back into this module
        from repro.kernels.dispatch import KERNEL_CHOICES

        if self.kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel tier {self.kernel!r}; "
                f"choose from: {', '.join(KERNEL_CHOICES)}"
            )
        if self.threads < 1:
            raise ValueError("threads must be a positive worker count")

    @property
    def np_compute_dtype(self) -> np.dtype:
        """The numpy dtype the packed backend computes in."""
        return np.dtype(self.compute_dtype)

    # -- derived objects -------------------------------------------------------
    def accelerator_spec(self) -> "AcceleratorSpec":
        """The event-cost configuration pricing this context's accelerator."""
        return accelerator_factories()[self.accelerator](self.arch)

    def map_network(self, network: "Network") -> "NetworkMapping":
        """Tile ``network`` onto this context's crossbars."""
        from repro.mapping.crossbar_mapping import map_network

        return map_network(network, self.arch)

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh deterministic generator (``salt`` decorrelates streams)."""
        return np.random.default_rng((self.seed, salt))

    def for_trial(self, trial: int) -> "SimContext":
        """A copy of this context for Monte-Carlo trial ``trial``.

        Weights and inputs (driven by ``seed``) stay fixed while the noise
        and fault seeds are re-derived from ``(seed, trial)``, so each trial
        draws an independent — and independently reproducible — noise
        realisation and chip (fault) realisation.  With neither a noise nor
        a fault model attached this is a plain copy.
        """
        updates: Dict[str, object] = {}
        if self.noise is not None:
            from repro.circuits.noise import stable_seed

            updates["noise"] = replace(
                self.noise, seed=stable_seed(self.noise.seed, "trial", trial)
            )
        if self.faults is not None:
            updates["faults"] = self.faults.for_trial(trial)
        return replace(self, **updates)

    def with_noise(self, noise: Optional["HardwareNoiseConfig"]) -> "SimContext":
        """A copy of this context with a different noise model."""
        return replace(self, noise=noise)

    def with_faults(self, faults: Optional["FaultModel"]) -> "SimContext":
        """A copy of this context with a different fault model."""
        return replace(self, faults=faults)

    def ideal(self) -> "SimContext":
        """A copy of this context with all noise sources disabled."""
        return self.with_noise(None)
