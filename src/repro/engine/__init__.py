"""Functional simulation engine: execute networks through mapped crossbars.

Where :mod:`repro.mapping` and :mod:`repro.energy` *price* a network on the
TIMELY architecture, this package *runs* one: real activations are pushed
through the same crossbar tiling via the behavioural time-domain circuit
chains of :mod:`repro.circuits.timing`, and the result is validated against
the pure-numpy float reference.  See :class:`NetworkExecutor` for the
pipeline and the ``run`` subcommand of ``python -m repro.sim`` for the CLI.

* :mod:`repro.engine.params` — deterministic weight/bias generation,
* :mod:`repro.engine.reference` — the exact float forward pass,
* :mod:`repro.engine.tiles` — legacy per-tile programming and read-out,
* :mod:`repro.engine.packed` — packed per-slice vectorized execution
  (the default backend; one batched matmul per layer slice),
* :mod:`repro.engine.state` — the programmed-chip artifact
  (:class:`ProgrammedState`): save/load/mmap, content keys and the
  LRU + on-disk :class:`ProgrammedStateCache`,
* :mod:`repro.engine.executor` — the whole-network orchestrator, split
  into a one-time :func:`program` phase and cheap
  :meth:`NetworkExecutor.from_state` wiring.

All of it is driven by one :class:`repro.context.SimContext`; the
``backend`` field (or the executor's ``backend`` argument) selects between
the packed and tiled execution paths.
"""

from repro.engine.errors import EngineError
from repro.faults import FaultModel, FaultReport
from repro.engine.executor import (
    ExecutionResult,
    LayerTrace,
    NetworkExecutor,
    program,
    relative_error,
    run_network,
)
from repro.engine.packed import PackedMatmul
from repro.engine.params import LayerParams, NetworkParams
from repro.engine.reference import (
    reference_forward,
    reference_forward_batch,
    validate_sequential,
    validate_supported,
)
from repro.engine.state import (
    LayerState,
    ProgrammedState,
    ProgrammedStateCache,
    state_key,
)
from repro.engine.tiles import TiledMatmul

__all__ = [
    "EngineError",
    "FaultModel",
    "FaultReport",
    "ExecutionResult",
    "LayerTrace",
    "LayerState",
    "NetworkExecutor",
    "ProgrammedState",
    "ProgrammedStateCache",
    "program",
    "run_network",
    "relative_error",
    "state_key",
    "LayerParams",
    "NetworkParams",
    "PackedMatmul",
    "reference_forward",
    "reference_forward_batch",
    "validate_sequential",
    "validate_supported",
    "TiledMatmul",
]
