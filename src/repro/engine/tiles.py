"""Tile-level crossbar execution of one integer matrix multiplication.

:class:`TiledMatmul` is the functional counterpart of
:class:`repro.mapping.crossbar_mapping.LayerMapping`: where the mapping
*counts* the ``rows x cols`` tiles a weight matrix occupies, this class
actually *programs* them and pushes input codes through, reproducing the
paper's execution scheme end to end:

* signed quantised weights are offset-encoded (``u = q + 2**(bits-1)``) so
  the unsigned conductance levels of the cells can represent them; the
  offset is removed digitally after read-out (the standard PIM offset
  column, applied here as a per-position correction),
* each weight occupies ``ceil(weight_bits / cell_bits)`` adjacent bit-cell
  columns: one column for ``weight_bits <= cell_bits``, the MSB/LSB pair of
  :class:`repro.circuits.timing.SubRangingDotProduct` (Section IV-C) for
  two, and a generalised base-``2**cell_bits`` slice cascade for more (the
  16-bit ISAAC-comparison precision on 4-bit cells uses four slices); the
  slice partial products recombine digitally with power-of-two shifts,
* the weight matrix is tiled into ``rows x cols`` blocks exactly as
  :func:`repro.mapping.crossbar_mapping.map_layer` counts them; every tile
  is one physical crossbar (pair),
* input codes are processed *batched over input columns*: all output
  positions of a layer go through a tile as one ``(positions, rows)``
  matrix, and the tile partial sums are recombined across row tiles.

Two execution modes are supported: ``"analog"`` runs the full two-phase
time-domain chain (optionally with noise injection), ``"ideal"`` reads the
same programmed tiles through the exact integer dot product — useful to
separate mapping/recombination errors from analog-chain errors.
"""

from __future__ import annotations

import math
from typing import List, Optional, Union

import numpy as np

from repro.circuits.timing import SubRangingDotProduct, TimeDomainDotProduct
from repro.context import SimContext
from repro.engine.errors import EngineError

MODES = ("analog", "ideal")


def _tile_crossbars(tile) -> list:
    """A tile's physical crossbars in ascending-slice (LSB-first) order."""
    if isinstance(tile, _SingleCellTile):
        return [tile.crossbar]
    if isinstance(tile, SubRangingDotProduct):
        return [tile.lsb_crossbar, tile.msb_crossbar]
    return [s.crossbar for s in tile.slices]


def _tile_chains(tile) -> list:
    """A tile's time-domain chains, parallel to :func:`_tile_crossbars`."""
    if isinstance(tile, _SingleCellTile):
        return [tile.chain]
    if isinstance(tile, SubRangingDotProduct):
        return [tile.lsb_chain, tile.msb_chain]
    return [s.chain for s in tile.slices]


class _SingleCellTile:
    """One crossbar tile for weights that fit a single bit-cell column.

    The crossbar is sized at the weight block's true height — a partial row
    tile occupies only the rows it holds weights for — so the matmul can
    slice the input codes at that height instead of zero-padding every
    ``(positions, arch.rows)`` block per call.  The time-domain chain
    rescales with the row count, so the read-out stays exact.

    ``noise`` is the tile's *programming* noise scope (a
    :class:`repro.circuits.noise.NoiseStream` derived per tile, or ``None``);
    read-out noise arrives per :meth:`compute` call.
    """

    def __init__(self, weights: np.ndarray, ctx: SimContext, noise=None):
        self.crossbar = ctx.arch.make_crossbar(
            noise, rows=np.asarray(weights).shape[0]
        )
        self.crossbar.program(weights)
        self.chain = TimeDomainDotProduct(
            self.crossbar, dtc=ctx.arch.dtc(), v_dd=ctx.arch.v_dd
        )

    def compute(self, codes: np.ndarray, noise) -> np.ndarray:
        return self.chain.compute(codes, noise)

    def ideal(self, codes: np.ndarray) -> np.ndarray:
        return self.crossbar.ideal_dot_product(codes)

    @property
    def programmed_bytes(self) -> int:
        return self.crossbar.programmed_bytes


class _SlicedTile:
    """A weight block split into ``n`` base-``2**cell_bits`` cell slices.

    The generalisation of the MSB/LSB sub-ranging pair to any number of
    bit-cell columns per weight: slice ``s`` holds bits
    ``[s*cell_bits, (s+1)*cell_bits)`` of the offset-encoded weights, each
    slice is read out through its own time-domain chain, and the partial
    products recombine digitally as ``sum_s partial_s * 2**(s*cell_bits)``.
    """

    def __init__(self, weights: np.ndarray, ctx: SimContext, n_slices: int, noise=None):
        cell_bits = ctx.arch.cell_bits
        mask = 2 ** cell_bits - 1
        self.shifts = [2 ** (cell_bits * s) for s in range(n_slices)]
        # the slices share one programming stream: construction order inside a
        # tile is fixed, so the sequential draws stay reproducible per tile
        self.slices = [
            _SingleCellTile((weights >> (cell_bits * s)) & mask, ctx, noise)
            for s in range(n_slices)
        ]

    def compute(self, codes: np.ndarray, noise) -> np.ndarray:
        return sum(
            tile.compute(codes, noise) * shift
            for tile, shift in zip(self.slices, self.shifts)
        )

    def ideal(self, codes: np.ndarray) -> np.ndarray:
        return sum(
            tile.ideal(codes) * shift
            for tile, shift in zip(self.slices, self.shifts)
        )

    @property
    def programmed_bytes(self) -> int:
        return sum(tile.programmed_bytes for tile in self.slices)


class TiledMatmul:
    """Integer matmul of one weight-sharing group through physical tiles.

    Parameters
    ----------
    q_weights:
        Signed integer weight matrix of shape ``(rows_needed, out_cols)`` in
        im2col layout (one row per input-vector element, one column per
        output channel), quantised to ``ctx.arch.weight_bits`` bits.
    ctx:
        The simulation context supplying geometry, cell/converter specs and
        the (optional) noise model.
    mode:
        ``"analog"`` (time-domain chains) or ``"ideal"`` (exact read-out).
    salt:
        Identifies this matmul's noise scope (e.g. ``(layer_index, group)``
        from the executor).  Every tile derives its programming and read-out
        noise streams from ``(ctx.noise.seed, salt, tile coordinates)``, so
        noisy results are independent of how many other objects consumed
        noise before this one was built.
    """

    def __init__(
        self,
        q_weights: np.ndarray,
        ctx: SimContext,
        mode: str = "analog",
        salt: Union[int, tuple] = 0,
    ):
        if mode not in MODES:
            raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
        arch = ctx.arch
        q = np.asarray(q_weights, dtype=np.int64)
        if q.ndim != 2:
            raise EngineError("q_weights must be a 2-D (rows, out_cols) matrix")
        qmax = 2 ** (arch.weight_bits - 1) - 1
        if np.any(q < -qmax) or np.any(q > qmax):
            raise EngineError(
                f"quantised weights must lie in [{-qmax}, {qmax}] for "
                f"{arch.weight_bits}-bit symmetric quantisation"
            )

        self.ctx = ctx
        self.mode = mode
        self.rows_needed, self.out_cols = q.shape
        #: offset making the encoded levels unsigned; removed digitally
        self.offset = 2 ** (arch.weight_bits - 1)
        encoded = q + self.offset

        self.row_tiles = math.ceil(self.rows_needed / arch.rows)
        weights_per_tile = arch.weights_per_col_tile
        if weights_per_tile == 0:
            raise EngineError(
                f"a {arch.cols}-column tile cannot hold a single "
                f"{arch.weight_bits}-bit weight ({arch.cols_per_weight} "
                f"bit-cell columns per weight)"
            )
        self.col_tiles = math.ceil(self.out_cols / weights_per_tile)

        salt_parts = salt if isinstance(salt, tuple) else (salt,)
        noise = ctx.noise

        def tile_stream(kind: str, rt: int, ct: int):
            if noise is None:
                return None
            return noise.stream("tiled", *salt_parts, kind, rt, ct)

        self._tiles: List[List[Union[_SingleCellTile, _SlicedTile, SubRangingDotProduct]]] = []
        #: per-tile read-out noise scopes, parallel to ``_tiles``
        self._read_noise: List[List[Optional["object"]]] = []
        self._col_widths: List[int] = []
        for ct in range(self.col_tiles):
            c0 = ct * weights_per_tile
            width = min(weights_per_tile, self.out_cols - c0)
            self._col_widths.append(width)
        for rt in range(self.row_tiles):
            r0 = rt * arch.rows
            height = min(arch.rows, self.rows_needed - r0)
            row: List[Union[_SingleCellTile, _SlicedTile, SubRangingDotProduct]] = []
            read_row: List[Optional["object"]] = []
            for ct in range(self.col_tiles):
                c0 = ct * weights_per_tile
                block = encoded[r0 : r0 + height, c0 : c0 + self._col_widths[ct]]
                program = tile_stream("program", rt, ct)
                if arch.cols_per_weight == 1:
                    row.append(_SingleCellTile(block, ctx, program))
                elif arch.cols_per_weight == 2:
                    row.append(SubRangingDotProduct.from_context(ctx, block, noise=program))
                else:
                    row.append(_SlicedTile(block, ctx, arch.cols_per_weight, program))
                read_row.append(tile_stream("read", rt, ct))
            self._tiles.append(row)
            self._read_noise.append(read_row)

        # hard faults (stuck cells / drift / saturation): applied to the
        # per-tile conductance arrays after programming variation, with a
        # per-(tile, salt) stateless mask so results are construction-order
        # free — the tiled analogue of the packed backend's wiring-time hook
        faults = ctx.faults
        self.fault_report = None
        if mode == "analog" and faults is not None and faults.active:
            if faults.cell_active:
                from repro.faults import FaultReport, apply_tile_faults

                cell = arch.cell_spec()
                report = FaultReport()
                for rt, row in enumerate(self._tiles):
                    for ct, tile in enumerate(row):
                        views = [xb._conductances for xb in _tile_crossbars(tile)]
                        report.merge(
                            apply_tile_faults(
                                views,
                                cell,
                                faults,
                                arch.spare_rows,
                                ("tiled", *salt_parts, "fault", rt, ct),
                            )
                        )
                self.fault_report = report
            if faults.readout_saturation is not None:
                for row in self._tiles:
                    for tile in row:
                        for chain in _tile_chains(tile):
                            chain.clip_fraction = float(faults.readout_saturation)

    @property
    def crossbars(self) -> int:
        """Physical crossbars occupied (matches ``LayerMapping`` counting)."""
        return self.row_tiles * self.col_tiles

    @property
    def compute_dtype(self) -> np.dtype:
        """Always float64: the tiled backend is the correctness reference.

        ``ctx.compute_dtype`` is deliberately ignored here — the dtype-parity
        tests compare the packed backend's float32 path against this
        backend's (and the packed backend's) float64 numbers, so the
        reference must never move.  The property exists so both backends
        expose the same introspection surface.
        """
        return np.dtype(np.float64)

    @property
    def programmed_bytes(self) -> int:
        """Bytes held by the programmed crossbar state (levels + conductances)."""
        return sum(tile.programmed_bytes for row in self._tiles for tile in row)

    def matmul(self, codes: np.ndarray) -> np.ndarray:
        """Push input codes through the tiles and recombine partial sums.

        ``codes`` is a ``(positions, rows_needed)`` matrix of unsigned input
        codes (one row per output position — the batched-over-input-columns
        path).  Returns the signed integer dot products ``codes @ q_weights``
        as estimated by the selected read-out mode, shape
        ``(positions, out_cols)``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.rows_needed:
            raise EngineError(
                f"expected codes of shape (positions, {self.rows_needed}), "
                f"got {codes.shape}"
            )
        levels = 2 ** self.ctx.arch.input_bits
        if np.any(codes < 0) or np.any(codes >= levels):
            raise EngineError(
                f"input codes must lie in [0, {levels - 1}] for "
                f"{self.ctx.arch.input_bits}-bit inputs"
            )
        arch = self.ctx.arch
        positions = codes.shape[0]
        acc = np.zeros((positions, self.out_cols), dtype=float)
        for rt, row in enumerate(self._tiles):
            r0 = rt * arch.rows
            height = min(arch.rows, self.rows_needed - r0)
            # Tiles are sized at their true height, so a view of the codes
            # suffices — no zero-padded (positions, arch.rows) copy per tile.
            block = codes[:, r0 : r0 + height]
            for ct, tile in enumerate(row):
                c0 = ct * arch.weights_per_col_tile
                width = self._col_widths[ct]
                if self.mode == "ideal":
                    partial = tile.ideal(block)
                else:
                    partial = tile.compute(block, self._read_noise[rt][ct])
                acc[:, c0 : c0 + width] += np.asarray(partial, dtype=float)[:, :width]
        # Digital offset removal: every programmed weight carries ``+offset``,
        # so each output column over-counts by ``offset * sum(codes)``.
        correction = self.offset * codes.sum(axis=1, dtype=np.int64)
        return acc - correction[:, None]
