"""Programmed-chip state as a first-class, cacheable artifact.

The paper's premise is that in-ReRAM computing amortises a one-time,
expensive weight-programming phase over many cheap analog inferences.  This
module gives that phase a product: :class:`ProgrammedState` — the per-layer,
per-bit-cell-slice conductance tensors plus the quantisation/tiling metadata
that :class:`repro.engine.packed.PackedMatmul` /
:class:`repro.engine.tiles.TiledMatmul` otherwise rebuild inside every
``NetworkExecutor`` construction — so programming runs **once** and its
result is saved, shared across processes, and re-used by any number of
executions (:meth:`repro.engine.executor.NetworkExecutor.from_state`).

Three design points:

* **Noise-independence.**  The state holds the *base* (noise-free)
  conductances.  Per-trial programming variation is multiplicative and
  seed-stable (``(seed, salt)`` streams, see :mod:`repro.circuits.noise`),
  so it is applied cheaply on top of the base tensors at executor wiring
  time — one snapshot therefore serves every Monte-Carlo trial of a sweep
  while staying bit-for-bit identical to programming from scratch.
* **Content addressing.**  :func:`state_key` derives a stable key from
  ``(model, ArchSpec, mode, backend, seed)`` via the same
  :func:`repro.circuits.noise.stable_seed` hashing the sweep store uses, so
  equal configurations share one cache entry across processes and machines.
* **Memory-mappability.**  :meth:`ProgrammedState.save` writes a directory
  of plain ``.npy`` files (one per tensor) next to a ``meta.json``;
  :meth:`ProgrammedState.load` with ``mmap=True`` memory-maps every tensor,
  so an executor can stream a larger-than-RAM programmed network tile-group
  by tile-group instead of materialising it.

:class:`ProgrammedStateCache` layers a small in-memory LRU over an optional
on-disk directory keyed by content: ``get_or_program`` is the one call the
CLI, the sweep pool and (eventually) a persistent simulation server all go
through.
"""

from __future__ import annotations

import json
import os
import shutil
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.context import ENGINE_BACKENDS, ArchSpec
from repro.engine.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.context import SimContext
    from repro.engine.params import NetworkParams
    from repro.nn.network import Network

#: bumped when the on-disk layout changes; loaders reject unknown versions
#: (2: packed payloads carry a compute dtype — float32 states exist and the
#: manifest + content key record which precision was programmed)
STATE_FORMAT = 2

#: metadata filename inside a saved state directory
_META_NAME = "meta.json"


def state_key(
    model: str,
    arch: ArchSpec,
    mode: str,
    backend: str,
    seed: int,
    compute_dtype: str = "float64",
) -> str:
    """Stable 16-hex-digit content key of one programmed configuration.

    Derived with the same :func:`repro.circuits.noise.stable_seed` hashing
    the sweep keys use (SHA-256 based, stable across processes and Python
    versions).  Noise is deliberately **not** part of the key: the state
    holds base conductances and per-trial variation is applied on load, so
    every noise scale / trial of a Monte-Carlo sweep shares one entry.
    ``compute_dtype`` **is** part of the key — a float32-programmed payload
    holds different bytes than a float64 one, so the two must never alias
    in a shared cache.  The kernel tier (``SimContext.kernel``) and the
    chunk-walk thread count (``SimContext.threads``) are deliberately
    **not** part of the key either: they select *how* the read-out runs,
    not *what* it computes — float64 results are bit-identical across
    tiers and worker counts (the cross-implementation equivalence tests
    pin this), so a state programmed under any tier serves every tier.
    Both fields are ``compare=False`` on the context for the same reason.
    """
    from repro.circuits.noise import stable_seed

    value = stable_seed(
        "programmed-state",
        STATE_FORMAT,
        model,
        mode,
        backend,
        seed,
        compute_dtype,
        arch.rows,
        arch.cols,
        arch.cell_bits,
        arch.weight_bits,
        arch.input_bits,
        repr(arch.r_min_ohm),
        repr(arch.r_max_ohm),
        repr(arch.t_del_s),
        repr(arch.v_dd),
    )
    return f"{value:016x}"


@dataclass
class LayerState:
    """Programmed artifact of one conv/FC layer.

    Exactly one weight payload is populated, matching ``(backend, mode)``:
    ``conductances`` (packed analog — the base per-slice tensors, noise-free),
    ``encoded`` (packed ideal — the offset-encoded float matrix), or ``q``
    (tiled — the signed quantised weights; the legacy per-crossbar objects
    re-program deterministically from them on load).  All weight payloads are
    ``(groups, rows_needed, group_cols)`` stacks in im2col layout.
    """

    name: str
    index: int  # the layer's noise-scope salt (graph node index)
    kind: str  # "conv" | "fc"
    out_channels: int
    n_groups: int
    w_scales: np.ndarray  # (out_channels,) per-channel dequantisation scales
    bias: Optional[np.ndarray] = None
    # conv-only geometry (0 for fc)
    stride: int = 0
    pad: int = 0
    kernel: int = 0
    # weight payloads (see class docstring)
    q: Optional[np.ndarray] = None
    encoded: Optional[np.ndarray] = None
    conductances: List[np.ndarray] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        total = self.w_scales.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        for payload in (self.q, self.encoded):
            if payload is not None:
                total += payload.nbytes
        return total + sum(c.nbytes for c in self.conductances)


@dataclass
class ProgrammedState:
    """The programmed-chip state of one (model, arch, mode, backend, seed).

    Produced by :func:`repro.engine.executor.program`; consumed by
    :meth:`repro.engine.executor.NetworkExecutor.from_state`.  Holds only
    plain numpy arrays and primitives, so it pickles, saves and memory-maps
    cleanly.  The state is noise-free by construction — per-trial programming
    variation is applied when an executor is wired from it.
    """

    model: str
    mode: str
    backend: str
    seed: int
    arch: ArchSpec
    layers: List[LayerState]
    #: requested packed compute precision (individual ideal-mode layers may
    #: have fallen back to float64 for exactness — see ``pack_weights``)
    compute_dtype: str = "float64"
    #: where this state was loaded from (``None`` for in-process states);
    #: set by :meth:`load` and what makes :meth:`stream_layer` possible
    source_path: Optional[Path] = None

    @property
    def key(self) -> str:
        """Content key of this state (see :func:`state_key`)."""
        return state_key(
            self.model, self.arch, self.mode, self.backend, self.seed,
            self.compute_dtype,
        )

    @property
    def nbytes(self) -> int:
        """Total bytes of the programmed tensors (the save/load payload)."""
        return sum(layer.nbytes for layer in self.layers)

    def layer_by_name(self, name: str) -> LayerState:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(name)

    # -- persistence ----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write this state to directory ``path`` (atomic via rename).

        The layout is one ``.npy`` file per tensor plus a ``meta.json``
        manifest, so :meth:`load` can memory-map individual tensors.  If
        ``path`` already exists when the rename lands, the existing entry
        wins — states are content-keyed, so a concurrent writer produced
        identical bytes and the tmp copy is simply discarded.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)

        def dump(prefix: str, array: Optional[np.ndarray]) -> Optional[str]:
            if array is None:
                return None
            name = f"{prefix}.npy"
            # np.save records Fortran order natively; preserving the packed
            # payloads' exact memory layout matters because BLAS picks
            # summation paths by layout — a C-order copy of the F-ordered
            # conductances would be bitwise-different downstream
            np.save(tmp / name, array)
            return name

        layers_meta = []
        for i, layer in enumerate(self.layers):
            prefix = f"L{i:03d}"
            layers_meta.append(
                {
                    "name": layer.name,
                    "index": layer.index,
                    "kind": layer.kind,
                    "out_channels": layer.out_channels,
                    "n_groups": layer.n_groups,
                    "stride": layer.stride,
                    "pad": layer.pad,
                    "kernel": layer.kernel,
                    "w_scales": dump(f"{prefix}_w_scales", layer.w_scales),
                    "bias": dump(f"{prefix}_bias", layer.bias),
                    "q": dump(f"{prefix}_q", layer.q),
                    "encoded": dump(f"{prefix}_encoded", layer.encoded),
                    "conductances": [
                        dump(f"{prefix}_cond{s}", c)
                        for s, c in enumerate(layer.conductances)
                    ],
                }
            )
        meta = {
            "format": STATE_FORMAT,
            "model": self.model,
            "mode": self.mode,
            "backend": self.backend,
            "seed": self.seed,
            "compute_dtype": self.compute_dtype,
            "key": self.key,
            "arch": {
                "rows": self.arch.rows,
                "cols": self.arch.cols,
                "cell_bits": self.arch.cell_bits,
                "weight_bits": self.arch.weight_bits,
                "input_bits": self.arch.input_bits,
                "r_min_ohm": self.arch.r_min_ohm,
                "r_max_ohm": self.arch.r_max_ohm,
                "t_del_s": self.arch.t_del_s,
                "v_dd": self.arch.v_dd,
            },
            "layers": layers_meta,
        }
        (tmp / _META_NAME).write_text(json.dumps(meta, indent=2, sort_keys=True))
        try:
            os.replace(tmp, path)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            if not path.is_dir():  # pragma: no cover - genuine filesystem error
                raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = False) -> "ProgrammedState":
        """Read a state saved by :meth:`save`.

        With ``mmap=True`` every tensor is memory-mapped read-only instead of
        materialised — the larger-than-RAM execution direction: a noiseless
        packed executor then streams conductance pages from disk as the
        matmuls touch them (a noisy one still materialises per-trial copies
        when the variation is applied).
        """
        path = Path(path)
        meta_file = path / _META_NAME
        if not meta_file.is_file():
            raise EngineError(f"no programmed state at {path} (missing {_META_NAME})")
        try:
            meta = json.loads(meta_file.read_text())
        except (OSError, ValueError) as exc:
            # a torn/truncated manifest (crashed writer, disk-full) must
            # surface as a clear engine error naming the entry, not leak
            # json.JSONDecodeError to the caller
            raise EngineError(
                f"corrupt programmed state at {path}: cannot parse "
                f"{_META_NAME} ({exc})"
            ) from exc
        if not isinstance(meta, dict):
            raise EngineError(
                f"corrupt programmed state at {path}: {_META_NAME} is not a manifest"
            )
        if meta.get("format") != STATE_FORMAT:
            raise EngineError(
                f"programmed state at {path} has format {meta.get('format')!r}; "
                f"this build reads format {STATE_FORMAT}"
            )
        mmap_mode = "r" if mmap else None

        def pull(name: Optional[str]) -> Optional[np.ndarray]:
            if name is None:
                return None
            return np.load(path / name, mmap_mode=mmap_mode)

        try:
            layers = [
                LayerState(
                    name=entry["name"],
                    index=entry["index"],
                    kind=entry["kind"],
                    out_channels=entry["out_channels"],
                    n_groups=entry["n_groups"],
                    w_scales=pull(entry["w_scales"]),
                    bias=pull(entry["bias"]),
                    stride=entry["stride"],
                    pad=entry["pad"],
                    kernel=entry["kernel"],
                    q=pull(entry["q"]),
                    encoded=pull(entry["encoded"]),
                    conductances=[pull(name) for name in entry["conductances"]],
                )
                for entry in meta["layers"]
            ]
            return cls(
                model=meta["model"],
                mode=meta["mode"],
                backend=meta["backend"],
                seed=meta["seed"],
                arch=ArchSpec(**meta["arch"]),
                layers=layers,
                compute_dtype=meta.get("compute_dtype", "float64"),
                source_path=path,
            )
        except (KeyError, TypeError, OSError, ValueError) as exc:
            # missing manifest fields, a deleted/truncated tensor file, or
            # an unbuildable ArchSpec: all the partially-written cases
            raise EngineError(
                f"corrupt programmed state at {path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def stream_layer(self, position: int, mmap: bool = True) -> LayerState:
        """Layer ``position`` (index into ``layers``) on **fresh file handles**.

        The stream-execution unit: for a disk-backed state this opens new
        (by default memory-mapped) arrays that are independent of the
        resident ``layers`` list, so the caller can wire the layer, execute
        it, and drop every reference — the kernel then unmaps the pages and
        peak RSS stays bounded by the largest live layer instead of
        accumulating mapped pages across the whole network (which is what
        happens when one long-lived ``load(mmap=True)`` handle serves every
        layer).  For an in-process state (``source_path is None``) this
        returns the resident layer unchanged — streaming degrades
        gracefully to the resident behaviour, with identical numbers.
        """
        template = self.layers[position]
        if self.source_path is None:
            return template
        path = Path(self.source_path)
        mmap_mode = "r" if mmap else None

        def pull(name: Optional[str]) -> Optional[np.ndarray]:
            if name is None:
                return None
            return np.load(path / name, mmap_mode=mmap_mode)

        try:
            entry = json.loads((path / _META_NAME).read_text())["layers"][position]
            return LayerState(
                name=entry["name"],
                index=entry["index"],
                kind=entry["kind"],
                out_channels=entry["out_channels"],
                n_groups=entry["n_groups"],
                w_scales=pull(entry["w_scales"]),
                bias=pull(entry["bias"]),
                stride=entry["stride"],
                pad=entry["pad"],
                kernel=entry["kernel"],
                q=pull(entry["q"]),
                encoded=pull(entry["encoded"]),
                conductances=[pull(name) for name in entry["conductances"]],
            )
        except (KeyError, IndexError, TypeError, OSError, ValueError) as exc:
            raise EngineError(
                f"corrupt programmed state at {path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc


class ProgrammedStateCache:
    """Program-once/run-many cache: in-memory LRU over an on-disk directory.

    ``root`` is the persistent cache directory (one content-keyed
    subdirectory per state; ``None`` keeps the cache memory-only).
    ``memory_entries`` bounds the resident LRU — deep models hold gigabytes
    of conductances, so the default keeps only a few hot states in RAM and
    falls back to (optionally memory-mapped) disk loads for the rest.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        memory_entries: int = 4,
        mmap: bool = False,
    ) -> None:
        if memory_entries < 0:
            raise ValueError("memory_entries must be non-negative")
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        self.mmap = mmap
        self._memory: "OrderedDict[str, ProgrammedState]" = OrderedDict()
        #: hit/miss counters by source, for reporting and tests
        self.counts = {"memory": 0, "disk": 0, "programmed": 0}
        #: corrupt on-disk entries evicted by :meth:`_lookup` (kept out of
        #: ``counts``, whose keys are the stable source vocabulary callers
        #: assert on; an eviction always shows up as a "programmed" miss)
        self.evicted = 0

    def path_for(self, key: str) -> Optional[Path]:
        """Disk location of ``key`` (``None`` for a memory-only cache)."""
        return self.root / key if self.root is not None else None

    def _remember(self, key: str, state: ProgrammedState) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = state
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def get(self, key: str) -> Optional[ProgrammedState]:
        """The cached state for ``key``, or ``None`` (memory, then disk)."""
        state, _ = self._lookup(key)
        return state

    def _lookup(self, key: str) -> Tuple[Optional[ProgrammedState], Optional[str]]:
        if key in self._memory:
            self._memory.move_to_end(key)
            return self._memory[key], "memory"
        path = self.path_for(key)
        if path is not None and (path / _META_NAME).is_file():
            try:
                state = ProgrammedState.load(path, mmap=self.mmap)
            except EngineError:
                # a partially-written/corrupt entry (crashed writer) must
                # not fail the run: evict it and let the caller re-program —
                # the content-keyed save then atomically replaces the entry
                shutil.rmtree(path, ignore_errors=True)
                self.evicted += 1
                return None, None
            self._remember(key, state)
            return state, "disk"
        return None, None

    def put(self, state: ProgrammedState) -> Optional[Path]:
        """Insert ``state`` (memory + disk); returns its disk path, if any."""
        key = state.key
        self._remember(key, state)
        path = self.path_for(key)
        if path is not None and not (path / _META_NAME).is_file():
            state.save(path)
        return path

    def ensure_on_disk(self, state: ProgrammedState) -> Optional[Path]:
        """Persist ``state`` if this cache has a disk root (idempotent)."""
        path = self.path_for(state.key)
        if path is not None and not (path / _META_NAME).is_file():
            state.save(path)
        return path

    def get_or_program(
        self,
        network: "Network",
        ctx: Optional["SimContext"] = None,
        mode: str = "analog",
        backend: Optional[str] = None,
        params: Optional["NetworkParams"] = None,
    ) -> Tuple[ProgrammedState, str]:
        """The state for ``(network, ctx, mode, backend)``, programming on miss.

        Returns ``(state, source)`` with ``source`` one of ``"memory"``,
        ``"disk"`` or ``"programmed"`` — the cache-hit observability the CLI
        and CI smoke assert on.  ``ctx.noise`` never affects the lookup (the
        artifact is noise-free; variation is applied at executor wiring).
        """
        from repro.context import SimContext
        from repro.engine.executor import program

        ctx = ctx or SimContext()
        backend = backend if backend is not None else ctx.backend
        if backend not in ENGINE_BACKENDS:
            raise EngineError(
                f"unknown engine backend {backend!r}; choose from: {ENGINE_BACKENDS}"
            )
        key = state_key(
            network.name, ctx.arch, mode, backend, ctx.seed, ctx.compute_dtype
        )
        state, source = self._lookup(key)
        if state is None:
            state = program(network, ctx, mode, params=params, backend=backend)
            self.put(state)
            source = "programmed"
        self.counts[source] += 1
        return state, source
