"""Packed vectorized tile execution: one matmul per layer-slice.

:class:`PackedMatmul` is the performance backend behind
:class:`repro.engine.executor.NetworkExecutor` (``backend="packed"``, the
default).  It computes exactly what :class:`repro.engine.tiles.TiledMatmul`
computes — the integer matmul of input codes against offset-encoded,
bit-sliced weights, read out through the two-phase time-domain chains — but
stores and executes the layer as a whole instead of as a grid of crossbar
objects:

* the weights of **all tiles of all groups** are packed into one contiguous
  conductance tensor per bit-cell slice, shaped ``(groups, rows_needed,
  group_cols)`` — partial tiles live at their true ``height x width`` rather
  than zero-padded ``arch.rows x arch.cols`` arrays, which for a model like
  vgg_d shrinks programmed state from thousands of padded 256x256 int64 +
  float64 crossbars to ``n_slices`` float64 tensors the size of the weights,
* one batched ``codes @ G`` matmul per row-tile slice replaces the Python
  loop over ``row_tiles x col_tiles x slices`` tile objects (the column-tile
  axis vanishes entirely: a packed slice holds every output column), and
  grouped convolutions ride the same call as a stacked leading matmul axis,
* the time-domain chain — phase-I charge, G_min offset subtraction, clip,
  phase-II threshold crossing, LSB rescale — is elementwise with per-chain
  scalars that are identical across a layer's tiles
  (:class:`repro.circuits.timing.TimeDomainChainSpec`), so it runs as one
  vectorized :meth:`~repro.circuits.timing.TimeDomainChainSpec.read_out`
  pass over a charge tensor stacked across every tile, slice, batch
  position and output column at once.  The sub-ranging MSB/LSB pair of
  Section IV-C is simply the 2-slice case of this recombination.

Noiseless, the packed path matches the tiled path to float tolerance (both
recover the exact integer matmul through the same chain algebra).  With
noise enabled the two backends sample the *same* error models but draw in
different shapes/orders — the tiled path draws per 256x256 crossbar and per
tile read-out, the packed path draws once per slice tensor and once per
layer of delays — so results are statistically equivalent but not
bit-identical across backends.  Within one backend, runs are exactly
reproducible from the noise seed: every draw comes from a
:class:`repro.circuits.noise.NoiseStream` derived from ``(seed, layer
salt)``, so results are independent of how many other executors were
constructed first.
"""

from __future__ import annotations

import math
import queue
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.circuits.timing import TimeDomainChainSpec
from repro.context import ArchSpec, SimContext
from repro.engine.errors import EngineError
from repro.engine.tiles import MODES
from repro.kernels.dispatch import readout_fused

#: float64 integer matmuls are exact below this product-sum magnitude
_EXACT_FLOAT_BOUND = float(2 ** 53)

#: per-dtype exactness bounds (mantissa width + 1) for the ideal-mode
#: integer matmul; a requested dtype whose bound the layer's worst-case
#: product sum exceeds falls back to the next wider dtype per layer
_EXACT_FLOAT_BOUNDS = {
    np.dtype(np.float64): _EXACT_FLOAT_BOUND,
    np.dtype(np.float32): float(2 ** 24),
}


def _worst_product_sum(arch: ArchSpec, rows_needed: int) -> float:
    """Upper bound of one ideal-mode output element before offset removal."""
    return (
        float(2 ** arch.input_bits - 1) * float(2 ** arch.weight_bits) * rows_needed
    )


def _flat_memory_view(a: np.ndarray) -> Optional[np.ndarray]:
    """A 1-D view of ``a`` in its own memory order, or ``None`` if strided."""
    if a.flags["C_CONTIGUOUS"]:
        return a.reshape(-1)
    if a.flags["F_CONTIGUOUS"]:
        return a.T.reshape(-1)
    return None


def _like(result: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Reshape a flat ufunc result back to ``template``'s shape and layout."""
    if result.shape == template.shape:  # strided fallback: nothing to undo
        return result
    if template.flags["C_CONTIGUOUS"]:
        return result.reshape(template.shape)
    return result.reshape(template.shape[::-1]).T


def pack_weights(
    q: np.ndarray,
    arch: ArchSpec,
    mode: str,
    compute_dtype: Union[str, np.dtype] = "float64",
) -> Tuple[Optional[np.ndarray], List[np.ndarray]]:
    """The expensive, noise-free half of packed programming.

    Offset-encodes the ``(groups, rows, group_cols)`` signed quantised
    weights and, in ``"analog"`` mode, bit-slices them into the per-slice
    *base* conductance tensors (no programming variation — that is applied
    per executor, so one packed payload serves every noise realisation).
    Returns ``(encoded, conductances)``: exactly one is populated —
    ``encoded`` for ``"ideal"`` mode, the conductance list for ``"analog"``.

    ``compute_dtype`` (:data:`repro.context.COMPUTE_DTYPES`) selects the
    storage/arithmetic precision of the packed tensors.  ``"float32"``
    halves the payload and switches the hot matmuls to single-precision
    BLAS; in ``"ideal"`` mode the request is honoured only when the
    layer's worst-case product sum stays below the dtype's exactness
    bound (:data:`_EXACT_FLOAT_BOUNDS`) — otherwise the layer silently
    falls back to float64 storage so exact integer read-out is never
    broken.  The chosen dtype is observable on the returned tensors (and
    as :attr:`PackedMatmul.compute_dtype` after wiring).

    This is the payload :class:`repro.engine.state.ProgrammedState` snapshots
    and :meth:`PackedMatmul.from_packed` rewires without recomputation.

    The elementwise passes run on a **flat memory-order view** of the
    stack.  ``q`` arrives Fortran-ordered (a stack of ``.T`` im2col
    matrices), and ufunc loops over such 3-D stacks degrade badly — tens
    of seconds per vgg_d FC layer, ~20x the sequential-walk cost — because
    the dimension with the huge stride defeats the iterator's loop
    coalescing.  A 1-D view walks the same bytes sequentially, and
    reshaping the results back **in the same order** reproduces the exact
    bytes *and* the exact layout of the direct computation — layout
    matters downstream, because BLAS picks summation paths by operand
    memory order.  Both branches preserve that layout: the ideal-mode
    encoded matrix keeps ``q``'s order via an order-preserving ``astype``
    (it used to be forced C-contiguous, silently discarding the F-order
    this docstring promises).
    """
    dtype = np.dtype(compute_dtype)
    if dtype not in _EXACT_FLOAT_BOUNDS:
        raise EngineError(
            f"unsupported packed compute dtype {dtype}; "
            f"choose from: {', '.join(str(d) for d in _EXACT_FLOAT_BOUNDS)}"
        )
    flat = _flat_memory_view(q)
    if flat is None:  # non-contiguous input: direct (strided) fallback
        flat = q
    offset = 2 ** (arch.weight_bits - 1)
    encoded_flat = flat + offset  # unsigned levels, memory order
    encoded = _like(encoded_flat, q)  # (G, R, C)
    if mode == "ideal":
        # The ideal read-out is linear, so the slice cascade recombines
        # back into the encoded matrix and one matmul suffices.  Per-layer
        # exactness fallback: a float32 request only sticks when the
        # worst-case product sum fits the 24-bit mantissa.
        if _worst_product_sum(arch, q.shape[1]) >= _EXACT_FLOAT_BOUNDS[dtype]:
            dtype = np.dtype(np.float64)
        # order='K' keeps q's memory layout (the F-ordered im2col stack)
        return encoded.astype(dtype, order="K"), []
    cell = arch.cell_spec()
    mask = 2 ** arch.cell_bits - 1
    conductances: List[np.ndarray] = []
    for s in range(arch.cols_per_weight):
        levels = (encoded_flat >> (arch.cell_bits * s)) & mask
        # same map as ReRAMCellSpec.weight_to_conductance, without the
        # range scan (the mask guarantees valid levels) and with in-place
        # scaling so deep models don't pay an extra weights-sized
        # temporary per slice
        slice_conductances = levels.astype(dtype)
        del levels
        slice_conductances *= dtype.type(cell.g_step_s)
        slice_conductances += dtype.type(cell.g_min_s)
        conductances.append(_like(slice_conductances, q))
    return None, conductances


class PackedMatmul:
    """Integer matmul of one layer (all groups) through packed slice tensors.

    Parameters
    ----------
    q_weights:
        Signed integer weights, either ``(rows_needed, out_cols)`` in im2col
        layout (one weight-sharing group) or ``(groups, rows_needed,
        group_cols)`` for grouped convolutions; quantised to
        ``ctx.arch.weight_bits`` bits.
    ctx:
        The simulation context supplying geometry, cell/converter specs and
        the (optional) noise model.
    mode:
        ``"analog"`` (vectorized time-domain chains) or ``"ideal"`` (exact
        integer read-out).
    salt:
        Identifies this layer's noise scope (the executor passes the layer
        index).  Programming and read-out noise streams derive from
        ``(ctx.noise.seed, salt)``, so noisy results are independent of
        construction order.
    """

    def __init__(
        self,
        q_weights: np.ndarray,
        ctx: SimContext,
        mode: str = "analog",
        salt: Union[int, tuple] = 0,
    ):
        if mode not in MODES:
            raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
        arch = ctx.arch
        q = np.asarray(q_weights, dtype=np.int64)
        if q.ndim == 2:
            q = q[None]
        elif q.ndim != 3:
            raise EngineError(
                "q_weights must be a 2-D (rows, out_cols) matrix or a 3-D "
                "(groups, rows, group_cols) stack"
            )
        qmax = 2 ** (arch.weight_bits - 1) - 1
        if np.any(q < -qmax) or np.any(q > qmax):
            raise EngineError(
                f"quantised weights must lie in [{-qmax}, {qmax}] for "
                f"{arch.weight_bits}-bit symmetric quantisation"
            )
        encoded, conductances = pack_weights(q, arch, mode, ctx.compute_dtype)
        self._wire(encoded, conductances, ctx, mode, salt)

    @classmethod
    def from_packed(
        cls,
        encoded: Optional[np.ndarray],
        conductances: List[np.ndarray],
        ctx: SimContext,
        mode: str = "analog",
        salt: Union[int, tuple] = 0,
    ) -> "PackedMatmul":
        """Wire a matmul from a pre-packed payload, skipping programming.

        ``(encoded, conductances)`` is a :func:`pack_weights` result (e.g.
        loaded from a :class:`repro.engine.state.ProgrammedState`, possibly
        memory-mapped).  With noise enabled, per-trial programming variation
        is applied here on copies of the base tensors — the same seed-stable
        draws the one-shot constructor makes, so outputs are bit-identical;
        the payload itself is never mutated, so a cached state can be shared
        by any number of executors.
        """
        if mode not in MODES:
            raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
        if mode == "ideal":
            if encoded is None:
                raise EngineError("ideal-mode packed state is missing its encoded matrix")
        elif len(conductances) != ctx.arch.cols_per_weight:
            raise EngineError(
                f"analog packed state holds {len(conductances)} slice tensors; "
                f"this architecture needs {ctx.arch.cols_per_weight}"
            )
        matmul = cls.__new__(cls)
        matmul._wire(encoded, conductances, ctx, mode, salt)
        return matmul

    def _wire(
        self,
        encoded: Optional[np.ndarray],
        conductances: List[np.ndarray],
        ctx: SimContext,
        mode: str,
        salt: Union[int, tuple],
    ) -> None:
        """Cheap construction from a packed payload (geometry + noise scopes)."""
        arch = ctx.arch
        shape = encoded.shape if encoded is not None else conductances[0].shape
        self.ctx = ctx
        self.mode = mode
        self.n_groups, self.rows_needed, self.group_cols = shape
        self.out_cols = self.n_groups * self.group_cols
        #: offset making the encoded levels unsigned; removed digitally
        self.offset = 2 ** (arch.weight_bits - 1)

        self.row_tiles = math.ceil(self.rows_needed / arch.rows)
        weights_per_tile = arch.weights_per_col_tile
        if weights_per_tile == 0:
            raise EngineError(
                f"a {arch.cols}-column tile cannot hold a single "
                f"{arch.weight_bits}-bit weight ({arch.cols_per_weight} "
                f"bit-cell columns per weight)"
            )
        self.col_tiles = math.ceil(self.group_cols / weights_per_tile)
        self.n_slices = arch.cols_per_weight
        #: arithmetic precision of this layer's packed tensors — decided at
        #: packing time (pack_weights may have fallen back to float64 for
        #: exactness), so it is read off the payload, not the context
        payload = encoded if encoded is not None else conductances[0]
        self.compute_dtype = np.dtype(payload.dtype)
        #: power-of-two digital recombination weights of the slice cascade.
        #: Always float64: the recombination and offset correction work on
        #: ``~offset * sum(codes)``-magnitude operands whose difference is
        #: orders of magnitude smaller, so float32 here would turn the
        #: digital (exact) half of the pipeline into the accuracy
        #: bottleneck — only the analog gemm + read-out chain drop to
        #: float32, the digital recombination stays double.
        self.shifts = np.array(
            [float(2 ** (arch.cell_bits * s)) for s in range(self.n_slices)]
        )
        #: (start, height) of every row tile in the packed row axis
        self._row_spans: List[Tuple[int, int]] = [
            (rt * arch.rows, min(arch.rows, self.rows_needed - rt * arch.rows))
            for rt in range(self.row_tiles)
        ]
        #: chain scalars shared by every tile of the layer (full tile height)
        self.spec = TimeDomainChainSpec.from_context(ctx)
        #: hot-loop tier request and chunk-walk worker count — performance
        #: metadata off the context (compare=False there, absent from every
        #: content key); results do not depend on either
        self._kernel: Optional[str] = ctx.kernel
        self._threads = int(ctx.threads)
        #: noise scopes derived from (seed, salt) — construction-order free
        salt_parts = salt if isinstance(salt, tuple) else (salt,)
        program_noise = None
        self._read_noise = None
        if ctx.noise is not None:
            program_noise = ctx.noise.stream("packed", *salt_parts, "program")
            self._read_noise = ctx.noise.stream("packed", *salt_parts, "read")

        self._encoded = encoded
        if program_noise is not None:
            # per-executor programming variation over the shared base tensors;
            # draws are consumed slice-by-slice exactly as the one-shot
            # constructor consumed them, so results stay bit-identical
            self._conductances = [
                program_noise.apply_conductance_variation(c) for c in conductances
            ]
        else:
            self._conductances = list(conductances)

        # hard faults (stuck cells / drift / saturation): wiring-time, like
        # variation, so the shared payload — possibly a read-only mmap of a
        # cached ProgrammedState — is never mutated and stays fault-free
        faults = ctx.faults
        self.fault_report = None
        self._saturation = None
        if mode == "analog" and faults is not None and faults.active:
            if faults.cell_active:
                from repro.faults import FaultReport, apply_tile_faults

                varied = (
                    program_noise is not None
                    and program_noise.reram_conductance_sigma > 0
                )
                if not varied:
                    # the variation path above already produced fresh
                    # writable tensors; otherwise fault on private copies
                    self._conductances = [
                        c.copy(order="K") for c in self._conductances
                    ]
                cell = arch.cell_spec()
                report = FaultReport()
                for g in range(self.n_groups):
                    for rt, (r0, height) in enumerate(self._row_spans):
                        views = [
                            c[g, r0 : r0 + height, :] for c in self._conductances
                        ]
                        report.merge(
                            apply_tile_faults(
                                views,
                                cell,
                                faults,
                                arch.spare_rows,
                                ("packed", *salt_parts, "fault", g, rt),
                            )
                        )
                self.fault_report = report
            if faults.readout_saturation is not None:
                self._saturation = float(faults.readout_saturation)
        # exactness bound for the float integer matmul of the ideal path,
        # checked at the *stored* precision (pack_weights already widened
        # a float32 request that could not stay exact)
        bound = _EXACT_FLOAT_BOUNDS.get(self.compute_dtype, _EXACT_FLOAT_BOUND)
        self._ideal_exact = _worst_product_sum(arch, self.rows_needed) < bound

    @property
    def crossbars(self) -> int:
        """Physical crossbars occupied (matches ``LayerMapping`` counting)."""
        return self.n_groups * self.row_tiles * self.col_tiles

    @property
    def packed_bytes(self) -> int:
        """Bytes held by the packed weight state (conductances or levels)."""
        if self._encoded is not None:
            return self._encoded.nbytes
        return sum(g.nbytes for g in self._conductances)

    @property
    def programmed_bytes(self) -> int:
        """Backend-uniform alias of :attr:`packed_bytes` (cf. ``TiledMatmul``)."""
        return self.packed_bytes

    def matmul(self, codes: np.ndarray, validate: bool = True) -> np.ndarray:
        """Push input codes through the packed slices and recombine.

        ``codes`` is a ``(positions, n_groups * rows_needed)`` matrix of
        unsigned input codes — identical to the
        :meth:`~repro.engine.tiles.TiledMatmul.matmul` contract, with the
        groups' code blocks concatenated along the row axis (the natural
        im2col channel-major layout).  Returns the signed dot products as
        ``(positions, out_cols)``.  ``validate=False`` skips the input range
        scan for callers that already quantised the codes themselves.
        """
        codes = np.asarray(codes, dtype=np.int64)
        expected_rows = self.n_groups * self.rows_needed
        if codes.ndim != 2 or codes.shape[1] != expected_rows:
            raise EngineError(
                f"expected codes of shape (positions, {expected_rows}), "
                f"got {codes.shape}"
            )
        if validate:
            levels = 2 ** self.ctx.arch.input_bits
            if np.any(codes < 0) or np.any(codes >= levels):
                raise EngineError(
                    f"input codes must lie in [0, {levels - 1}] for "
                    f"{self.ctx.arch.input_bits}-bit inputs"
                )
        positions = codes.shape[0]
        # (G, positions, R): one leading matmul axis per weight-sharing group
        grouped = codes.reshape(positions, self.n_groups, self.rows_needed)
        grouped = np.ascontiguousarray(grouped.transpose(1, 0, 2))

        if self.mode == "ideal":
            if self._ideal_exact:
                # float32 payloads are exact here by construction (the
                # pack-time bound check), so the upcast back to float64
                # for the digital correction is lossless
                products = (grouped.astype(self._encoded.dtype) @ self._encoded).astype(
                    np.float64, copy=False
                )
            else:  # fall back to (slow) integer matmul beyond the float bound
                products = (
                    grouped @ self._encoded.astype(np.int64, order="K")
                ).astype(np.float64)
        else:
            products = self._analog_products(grouped, positions)

        # Digital offset removal: every programmed weight carries ``+offset``,
        # so each group's columns over-count by ``offset * sum(group codes)``.
        correction = self.offset * grouped.sum(axis=2, dtype=np.int64)  # (G, P)
        np.subtract(products, correction[:, :, None], out=products)
        # concatenate the groups' output columns (group-major channel order)
        return np.ascontiguousarray(products.transpose(1, 0, 2)).reshape(
            positions, self.out_cols
        )

    def _position_chunk(self, positions: int) -> int:
        """Positions per charge chunk under ``ctx.chunk_bytes`` (all if unset)."""
        budget = self.ctx.chunk_bytes
        if budget is None:
            return positions
        per_position = (
            self.row_tiles
            * self.n_slices
            * self.n_groups
            * self.group_cols
            * self.compute_dtype.itemsize
        )
        return max(1, min(positions, budget // max(1, per_position)))

    def _chunk_buffers(self, chunk: int) -> Tuple[np.ndarray, np.ndarray]:
        """One reusable (charges, delay_sums) buffer pair for the chunk walk."""
        dtype = self.compute_dtype
        charges = np.empty(
            (self.row_tiles, self.n_slices, self.n_groups, chunk, self.group_cols),
            dtype=dtype,
        )
        delay_sums = np.empty((self.row_tiles, 1, self.n_groups, chunk, 1), dtype=dtype)
        return charges, delay_sums

    def _run_chunk(
        self,
        delays: np.ndarray,
        out: np.ndarray,
        p0: int,
        n: int,
        buffers: Tuple[np.ndarray, np.ndarray],
    ) -> None:
        """Charge, read out and recombine positions ``[p0, p0 + n)``.

        Fills the chunk's slice of ``out`` and touches nothing else, so
        chunks are independent: the serial walk and the thread pool call
        this identically (on identically-shaped buffers — the chunk split
        never depends on the worker count), which is what makes threaded
        results byte-identical to serial ones.
        """
        spec = self.spec
        charges, delay_sums = buffers
        block = charges[:, :, :, :n]
        sums = delay_sums[:, :, :, :n]
        for rt, (r0, height) in enumerate(self._row_spans):
            d = delays[:, p0 : p0 + n, r0 : r0 + height]
            sums[rt, 0, :, :, 0] = d.sum(axis=2)
            for s, conductances in enumerate(self._conductances):
                np.matmul(d, conductances[:, r0 : r0 + height, :], out=block[rt, s])
        block *= self.compute_dtype.type(spec.v_dd)
        # the whole per-chunk chain — reference-column subtract, clips,
        # phase-I/II conversion, optional early-TDC saturation and the
        # slice-cascade recombination (sum over row tiles t, power-of-two
        # weights over s) — in one dispatched kernel call, fully in place
        # on the chunk buffer, accumulated straight into the output slice
        readout_fused(
            block,
            sums,
            spec.scalars(),
            out=block,
            saturation=self._saturation,
            shifts=self.shifts,
            recombine_out=out[:, p0 : p0 + n],
            kernel=self._kernel,
        )

    def _run_chunk_pooled(
        self,
        delays: np.ndarray,
        out: np.ndarray,
        p0: int,
        n: int,
        buffer_pool: "queue.Queue[Tuple[np.ndarray, np.ndarray]]",
    ) -> None:
        """Thread-pool task: borrow a buffer pair, run one chunk, return it."""
        buffers = buffer_pool.get()
        try:
            self._run_chunk(delays, out, p0, n, buffers)
        finally:
            buffer_pool.put(buffers)

    def _analog_products(self, grouped: np.ndarray, positions: int) -> np.ndarray:
        """Time-domain estimate of the grouped integer products.

        One ``codes @ G`` matmul per (row tile, slice) fills a charge tensor
        of shape ``(row_tiles, n_slices, groups, chunk, group_cols)``; the
        elementwise chain and the digital recombination — the sum over row
        tiles and the power-of-two slice cascade — then run as one fused
        :func:`repro.kernels.dispatch.readout_fused` pass per chunk, fully
        in place on the chunk buffer (zero chain temporaries), accumulated
        straight into the ``(groups, positions, group_cols)`` output.

        With ``ctx.chunk_bytes`` unset the chunk is the whole batch (the
        historical single-pass behaviour, bit-identical to prior
        releases).  When set, the position axis is walked in bounded
        chunks reusing one charge buffer, so a layer's peak transient
        memory is one chunk instead of ``row_tiles x n_slices`` copies of
        the entire im2col output.  The full delay tensor (and any DTC
        jitter draw on it) is computed *before* the chunk walk, so noisy
        results are independent of the chunking.

        With ``ctx.threads > 1`` (and more than one chunk) the chunks run
        concurrently on a bounded :class:`ThreadPoolExecutor` over a pool
        of per-worker buffer pairs — the BLAS matmul and the compiled
        read-out kernel both release the GIL, so the walk scales with
        cores.  The chunk split depends only on ``chunk_bytes`` and every
        chunk writes a disjoint output slice, so the result is
        byte-identical at any worker count.
        """
        spec = self.spec
        noise = self._read_noise
        dtype = self.compute_dtype
        if noise is not None and noise.dtc_sigma > 0:
            delays = spec.dtc.convert(grouped, noise)  # (G, P, R) seconds
            delays = delays.astype(dtype, copy=False)
        else:
            # jitter-free DTC on validated codes: the clip is a no-op, so
            # the conversion collapses to one scale of the whole batch
            delays = grouped.astype(dtype)
            delays *= dtype.type(spec.dtc.t_del_s)
        chunk = self._position_chunk(positions)
        # float64 accumulator regardless of compute dtype: the slice/tile
        # recombination and the offset correction downstream cancel
        # large-magnitude operands (see the ``shifts`` note in ``_wire``)
        out = np.empty((self.n_groups, positions, self.group_cols))
        spans = [
            (p0, min(chunk, positions - p0)) for p0 in range(0, positions, chunk)
        ]
        workers = min(self._threads, len(spans))
        if workers > 1:
            buffer_pool: "queue.Queue[Tuple[np.ndarray, np.ndarray]]" = queue.Queue()
            for _ in range(workers):
                buffer_pool.put(self._chunk_buffers(chunk))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(self._run_chunk_pooled, delays, out, p0, n, buffer_pool)
                    for p0, n in spans
                ]
                for future in futures:
                    future.result()
        else:
            buffers = self._chunk_buffers(chunk)
            for p0, n in spans:
                self._run_chunk(delays, out, p0, n, buffers)
        return out
