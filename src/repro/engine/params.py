"""Deterministic parameter generation for functional simulation.

The :class:`repro.nn.network.Network` descriptors carry shapes and MAC
counts but no weight values; the functional engine needs both.
:class:`NetworkParams` fills that gap with a deterministic, seed-driven
initialisation (He-style fan-in scaling for conv/FC weights, benign
scale/shift statistics for folded batch-norm), so an engine run is exactly
reproducible from its :class:`repro.context.SimContext` seed and two runs
with the same seed execute the same network.

Parameters are generated per graph node: each node's generator is derived
from ``(seed, node_index)`` rather than a single shared stream, so
inserting, reordering or re-wiring nodes does not silently reshuffle every
other node's weights — a branch-merge refactor of a model keeps the
untouched layers' parameters bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn.layers import BatchNorm, Conv2D, FullyConnected
from repro.nn.network import Network


@dataclass(frozen=True)
class LayerParams:
    """Parameter tensors of one layer (fields unused by the kind are None)."""

    #: conv: ``(D, C // groups, Z, G)``; fc: ``(out, in)``
    weights: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    #: folded batch-norm per-channel scale / shift
    scale: Optional[np.ndarray] = None
    shift: Optional[np.ndarray] = None


class NetworkParams:
    """Deterministic parameters for every parameterised layer of a network."""

    def __init__(self, network: Network, seed: int = 0):
        self.network_name = network.name
        self.seed = seed
        self._params: Dict[str, LayerParams] = {}
        for inst in network:
            layer = inst.layer
            rng = np.random.default_rng((seed, inst.index))
            if isinstance(layer, Conv2D):
                shape = (
                    layer.out_channels,
                    layer.in_channels // layer.groups,
                    layer.kernel_h,
                    layer.kernel_w,
                )
                fan_in = shape[1] * shape[2] * shape[3]
                weights = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)
                bias = rng.uniform(-0.1, 0.1, size=layer.out_channels) if layer.bias else None
                self._params[inst.name] = LayerParams(weights=weights, bias=bias)
            elif isinstance(layer, FullyConnected):
                shape = (layer.out_features, layer.in_features)
                weights = rng.normal(0.0, np.sqrt(2.0 / layer.in_features), size=shape)
                bias = rng.uniform(-0.1, 0.1, size=layer.out_features) if layer.bias else None
                self._params[inst.name] = LayerParams(weights=weights, bias=bias)
            elif isinstance(layer, BatchNorm):
                scale = rng.uniform(0.8, 1.2, size=layer.channels)
                shift = rng.normal(0.0, 0.05, size=layer.channels)
                self._params[inst.name] = LayerParams(scale=scale, shift=shift)

    def __getitem__(self, name: str) -> LayerParams:
        return self._params[name]

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __len__(self) -> int:
        return len(self._params)
