"""Whole-network functional simulation through mapped crossbars.

:class:`NetworkExecutor` is the end-to-end path the analytics packages
cannot provide on their own: it takes a resolved
:class:`repro.nn.network.Network`, tiles every conv/FC layer onto physical
crossbars exactly as :func:`repro.mapping.crossbar_mapping.map_network`
counts them, and pushes real activations through the
:mod:`repro.circuits.timing` time-domain chains:

1. per-layer weight programming — symmetric ``weight_bits`` quantisation,
   offset encoding and the MSB/LSB split onto tile pairs,
2. im2col slicing of the (unsigned-quantised) input activations,
3. tile-level time-domain dot products, batched over input columns, with
   optional :mod:`repro.circuits.noise` injection,
4. partial-sum recombination across row tiles, digital offset removal,
   dequantisation and bias addition,
5. auxiliary layers (ReLU, pooling, batch-norm, flatten, GAP) applied with
   the same :mod:`repro.nn.functional` kernels as the float reference.

Every run is validated against the pure-numpy reference
(:func:`repro.engine.reference.reference_forward`) with identical
parameters; the per-layer relative errors quantify what quantisation and
the analog chains cost in accuracy — the paper's core claim is that with
noise disabled this error stays at the quantisation floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.context import SimContext
from repro.engine.errors import EngineError
from repro.engine.params import NetworkParams
from repro.engine.reference import (
    apply_aux_layer,
    check_activation_shape,
    conv_padding,
    reference_forward,
    validate_sequential,
)
from repro.engine.tiles import MODES, TiledMatmul
from repro.nn import functional as F
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerInstance, Network
from repro.nn.quantization import quantize_symmetric_per_channel, quantize_unsigned


def relative_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """L2-norm relative error of an estimate against its reference."""
    ref_norm = float(np.linalg.norm(reference))
    if ref_norm == 0.0:
        return float(np.linalg.norm(estimate))
    return float(np.linalg.norm(estimate - reference)) / ref_norm


@dataclass(frozen=True)
class LayerTrace:
    """Per-layer record of one engine run."""

    name: str
    kind: str
    crossbars: int
    rel_error: float


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one engine run, with its float-reference comparison."""

    model: str
    mode: str
    output: np.ndarray
    reference: np.ndarray
    traces: List[LayerTrace] = field(default_factory=list)

    @property
    def rel_error(self) -> float:
        """L2 relative error of the final output against the reference."""
        return relative_error(self.output, self.reference)

    def trace_by_name(self) -> Dict[str, LayerTrace]:
        return {trace.name: trace for trace in self.traces}


class _MappedComputeLayer:
    """One conv/FC layer programmed onto crossbar tiles (all groups)."""

    def __init__(self, inst: LayerInstance, params: NetworkParams, ctx: SimContext, mode: str):
        self.inst = inst
        layer = inst.layer
        p = params[inst.name]
        # Per-output-channel scales: every output channel owns its crossbar
        # column(s), and the TDC read-out is dequantised digitally, so each
        # channel can use the full integer range.
        quant = quantize_symmetric_per_channel(p.weights, ctx.arch.weight_bits)
        self.w_scales = quant.scales  # (out_channels,)
        self.bias = p.bias
        self.groups: List[TiledMatmul] = []
        if isinstance(layer, Conv2D):
            self.kind = "conv"
            self.stride = layer.stride
            self.pad = conv_padding(layer)
            self.kernel = layer.kernel_h
            self.group_channels = layer.in_channels // layer.groups
            group_out = layer.out_channels // layer.groups
            for g in range(layer.groups):
                w_g = quant.values[g * group_out : (g + 1) * group_out]
                matrix = w_g.reshape(group_out, -1).T  # (C/g*Z*G, D/g)
                self.groups.append(TiledMatmul(matrix, ctx, mode))
        elif isinstance(layer, FullyConnected):
            self.kind = "fc"
            self.groups.append(TiledMatmul(quant.values.T, ctx, mode))
        else:  # pragma: no cover - guarded by validate_sequential
            raise EngineError(f"layer {inst.name!r} is not a compute layer")

    @property
    def crossbars(self) -> int:
        return sum(group.crossbars for group in self.groups)

    def forward(self, act: np.ndarray, input_bits: int) -> np.ndarray:
        """Quantise ``act``, run it through the tiles, dequantise the result."""
        if np.any(act < 0):
            raise EngineError(
                f"layer {self.inst.name!r} received negative inputs; the "
                "time-domain engine encodes activations as unsigned "
                "(post-ReLU) codes"
            )
        quant = quantize_unsigned(act, input_bits)
        out_scales = self.w_scales * quant.scale  # (out_channels,)
        if self.kind == "fc":
            y = self.groups[0].matmul(quant.values.reshape(1, -1))[0] * out_scales
            if self.bias is not None:
                y = y + self.bias
            return y
        outputs = []
        out_h = out_w = 0
        for g, tiles in enumerate(self.groups):
            x_g = quant.values[g * self.group_channels : (g + 1) * self.group_channels]
            cols, out_h, out_w = F.im2col(x_g, self.kernel, self.stride, self.pad)
            outputs.append(tiles.matmul(cols))  # (positions, D/groups)
        out = np.concatenate(outputs, axis=1) * out_scales
        if self.bias is not None:
            out = out + self.bias
        return out.T.reshape(-1, out_h, out_w)


class NetworkExecutor:
    """Execute a network through its crossbar mapping, tracking accuracy.

    Parameters
    ----------
    network:
        A sequential resolved network (branching topologies are rejected).
    ctx:
        The :class:`repro.context.SimContext` supplying architecture, noise
        and the seed for deterministic parameter generation.
    mode:
        ``"analog"`` (full time-domain chains) or ``"ideal"`` (exact tile
        read-out; isolates quantisation error from analog error).
    params:
        Optional pre-built parameters; defaults to
        ``NetworkParams(network, ctx.seed)``.
    """

    def __init__(
        self,
        network: Network,
        ctx: Optional[SimContext] = None,
        mode: str = "analog",
        params: Optional[NetworkParams] = None,
    ):
        if mode not in MODES:
            raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
        self.network = network
        self.ctx = ctx or SimContext()
        self.mode = mode
        validate_sequential(network)
        self.params = params or NetworkParams(network, self.ctx.seed)
        self.mapping = self.ctx.map_network(network)
        self._compute: Dict[str, _MappedComputeLayer] = {
            inst.name: _MappedComputeLayer(inst, self.params, self.ctx, mode)
            for inst in network.compute_instances
        }

    @property
    def crossbars(self) -> int:
        """Programmed physical crossbars (pairs counted once, as the mapper does)."""
        return sum(layer.crossbars for layer in self._compute.values())

    def random_input(self, salt: int = 1) -> np.ndarray:
        """A deterministic non-negative input image for this context's seed."""
        shape = self.network.input_shape
        return self.ctx.rng(salt).uniform(
            0.0, 1.0, size=(shape.channels, shape.height, shape.width)
        )

    def run_reference(self, x: np.ndarray) -> np.ndarray:
        """The float reference output for ``x`` with this executor's weights."""
        return reference_forward(self.network, self.params, x)[0]

    def run(self, x: Optional[np.ndarray] = None) -> ExecutionResult:
        """Execute ``x`` (default: :meth:`random_input`) through the crossbars."""
        act = np.asarray(x, dtype=float) if x is not None else self.random_input()
        if np.any(act < 0):
            raise EngineError("engine inputs must be non-negative (unsigned input codes)")
        _, ref_acts = reference_forward(self.network, self.params, act)
        traces: List[LayerTrace] = []
        for inst in self.network:
            if inst.name in self._compute:
                mapped = self._compute[inst.name]
                act = mapped.forward(act, self.ctx.arch.input_bits)
                crossbars = mapped.crossbars
            else:
                act = apply_aux_layer(inst, act, self.params)
                crossbars = 0
            check_activation_shape(inst, act)
            traces.append(
                LayerTrace(
                    name=inst.name,
                    kind=inst.kind,
                    crossbars=crossbars,
                    rel_error=relative_error(act, ref_acts[inst.name]),
                )
            )
        return ExecutionResult(
            model=self.network.name,
            mode=self.mode,
            output=act,
            reference=ref_acts[self.network[len(self.network) - 1].name],
            traces=traces,
        )


def run_network(
    network: Network,
    ctx: Optional[SimContext] = None,
    x: Optional[np.ndarray] = None,
    mode: str = "analog",
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`NetworkExecutor`."""
    return NetworkExecutor(network, ctx, mode).run(x)
