"""Whole-network functional simulation through mapped crossbars.

:class:`NetworkExecutor` is the end-to-end path the analytics packages
cannot provide on their own: it takes a resolved
:class:`repro.nn.network.Network`, tiles every conv/FC layer onto physical
crossbars exactly as :func:`repro.mapping.crossbar_mapping.map_network`
counts them, and pushes real activations through the
:mod:`repro.circuits.timing` time-domain chains:

1. per-layer weight programming — symmetric ``weight_bits`` quantisation,
   offset encoding and the bit-cell slice split (packed per-slice tensors
   by default, legacy per-tile crossbar objects with ``backend="tiled"``),
2. im2col slicing of the (unsigned-quantised) input activations,
3. time-domain dot products batched over input columns *and* over the
   images of a batch, with optional :mod:`repro.circuits.noise` injection,
4. partial-sum recombination across row tiles, digital offset removal,
   dequantisation and bias addition,
5. auxiliary layers (ReLU, pooling, batch-norm, flatten, GAP, residual
   add, channel concat) applied with the same :mod:`repro.nn.functional`
   kernels as the float reference.

Execution walks the network's deterministic topological order, so
branching DAGs (ResNet, SqueezeNet) run end to end; intermediate
activations are freed once their last consumer has run (liveness-based
freeing — what keeps deep residual nets inside laptop memory), and the
observed peak is reported per run.

Inputs may be a single ``(C, H, W)`` image or a first-class ``(N, C, H, W)``
batch; activations are quantised per image (so a batched run produces
exactly the codes of ``N`` single-image runs) while every matmul amortises
over the whole batch.

A run is validated against the pure-numpy reference
(:func:`repro.engine.reference.reference_forward`) with identical
parameters; the per-layer relative errors quantify what quantisation and
the analog chains cost in accuracy — the paper's core claim is that with
noise disabled this error stays at the quantisation floor.  Throughput
runs can skip the float double-compute with ``run(validate=False)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.context import ENGINE_BACKENDS, SimContext
from repro.engine.errors import EngineError
from repro.engine.packed import PackedMatmul, pack_weights
from repro.engine.params import NetworkParams
from repro.engine.state import LayerState, ProgrammedState
from repro.engine.reference import (
    apply_aux_batched,
    check_activation_shape,
    conv_padding,
    reference_forward,
    reference_forward_batch,
    validate_supported,
)
from repro.engine.tiles import MODES, TiledMatmul
from repro.kernels.dispatch import im2col_pack
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import NETWORK_INPUT, LayerInstance, Network
from repro.nn.quantization import (
    quantize_symmetric_per_channel,
    quantize_unsigned_batch,
)


def _live_buffer_bytes(arrays) -> int:
    """Total bytes of the distinct buffers backing ``arrays``.

    Views (e.g. a flatten output, which is a reshape of its producer) share
    their base's buffer: counting ``nbytes`` per array would double-count
    them, and "freeing" a producer whose view is still live releases
    nothing.  Deduplicating by base buffer charges each allocation once,
    for as long as anything referencing it stays live.
    """
    seen = {}
    for arr in arrays:
        base = arr
        while isinstance(base.base, np.ndarray):
            base = base.base
        seen[id(base)] = base.nbytes
    return sum(seen.values())


def relative_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """L2-norm relative error of an estimate against its reference."""
    ref_norm = float(np.linalg.norm(reference))
    if ref_norm == 0.0:
        return float(np.linalg.norm(estimate))
    return float(np.linalg.norm(estimate - reference)) / ref_norm


@dataclass(frozen=True)
class LayerTrace:
    """Per-layer record of one engine run.

    ``rel_error`` is NaN when the run skipped validation.  ``stuck_cells``
    and ``remapped_rows`` count the layer's surviving stuck cells and the
    rows remapped onto spares (see :mod:`repro.faults`); both are zero when
    no fault model is active.
    """

    name: str
    kind: str
    crossbars: int
    rel_error: float
    stuck_cells: int = 0
    remapped_rows: int = 0


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one engine run, with its float-reference comparison.

    ``output`` (and ``reference``, when validation ran) carry a leading
    batch axis exactly when the input did; ``reference`` is ``None`` for
    ``validate=False`` runs.  ``peak_activation_bytes`` is the maximum
    total size of simultaneously live activations during the engine pass
    (the quantity liveness-based freeing bounds; it excludes the float
    reference activations a validated run additionally holds).
    ``peak_wired_bytes`` is the maximum weight-payload bytes wired for
    execution at once: for a resident executor that is every layer's
    programmed tensors for the whole run, for a streamed one
    (``NetworkExecutor(..., stream=True)``) it is the single largest
    layer — the deterministic quantity the streaming memory bound rests
    on, independent of allocator/OS noise.
    """

    model: str
    mode: str
    backend: str
    output: np.ndarray
    reference: Optional[np.ndarray] = None
    traces: List[LayerTrace] = field(default_factory=list)
    peak_activation_bytes: int = 0
    peak_wired_bytes: int = 0
    #: network-wide fault totals (sums of the per-layer trace counts);
    #: zero when the context carries no fault model
    stuck_cells: int = 0
    remapped_rows: int = 0

    @property
    def rel_error(self) -> float:
        """L2 relative error of the final output against the reference.

        NaN when the run skipped validation (no reference was computed).
        """
        if self.reference is None:
            return float("nan")
        return relative_error(self.output, self.reference)

    def trace_by_name(self) -> Dict[str, LayerTrace]:
        return {trace.name: trace for trace in self.traces}


def program_layer(
    inst: LayerInstance,
    params: NetworkParams,
    arch,
    mode: str,
    backend: str,
    compute_dtype: str = "float64",
) -> LayerState:
    """Program one conv/FC layer: the expensive, noise-free phase.

    Quantises the layer's weights per output channel, lays them out as the
    backend's im2col matmul matrices and — for the packed backend — runs the
    offset-encode/bit-slice packing of :func:`repro.engine.packed.pack_weights`.
    The result is a plain-array :class:`~repro.engine.state.LayerState` that
    saves, memory-maps and ships across processes; wiring it back into an
    executable layer (:class:`_MappedComputeLayer`) is cheap.
    """
    layer = inst.layer
    p = params[inst.name]
    # Per-output-channel scales: every output channel owns its crossbar
    # column(s), and the TDC read-out is dequantised digitally, so each
    # channel can use the full integer range.
    quant = quantize_symmetric_per_channel(p.weights, arch.weight_bits)
    if isinstance(layer, Conv2D):
        kind = "conv"
        stride, pad, kernel = layer.stride, conv_padding(layer), layer.kernel_h
        n_groups, out_channels = layer.groups, layer.out_channels
        group_out = layer.out_channels // layer.groups
        matrices = [
            quant.values[g * group_out : (g + 1) * group_out].reshape(group_out, -1).T
            for g in range(layer.groups)
        ]  # each (C/g*Z*G, D/g)
    elif isinstance(layer, FullyConnected):
        kind = "fc"
        stride = pad = kernel = 0
        n_groups, out_channels = 1, layer.out_features
        matrices = [quant.values.T]
    else:  # pragma: no cover - guarded by validate_supported
        raise EngineError(f"layer {inst.name!r} is not a compute layer")

    # all groups stacked on one leading axis: (groups, rows, group_cols)
    q = np.stack(matrices).astype(np.int64, copy=False)
    state = LayerState(
        name=inst.name,
        index=inst.index,
        kind=kind,
        out_channels=out_channels,
        n_groups=n_groups,
        w_scales=quant.scales,
        bias=p.bias,
        stride=stride,
        pad=pad,
        kernel=kernel,
    )
    if backend == "packed":
        state.encoded, state.conductances = pack_weights(q, arch, mode, compute_dtype)
    else:
        # the legacy tiled backend re-programs its per-crossbar objects from
        # the quantised weights on wiring (deterministic, so bit-identical)
        state.q = q
    return state


def program(
    network: Network,
    ctx: Optional[SimContext] = None,
    mode: str = "analog",
    params: Optional[NetworkParams] = None,
    backend: Optional[str] = None,
) -> ProgrammedState:
    """Program a network's weights onto crossbars: the one-time phase.

    Quantises, lays out and (for the packed backend) bit-slices every
    conv/FC layer into a :class:`~repro.engine.state.ProgrammedState` —
    the artifact the paper's economics revolve around: built once, then
    executed many times via :meth:`NetworkExecutor.from_state`, saved to
    disk, or shared across processes.  The state is noise-free (base
    conductances); programming variation, which varies per Monte-Carlo
    trial, is applied at wiring time from the trial's noise streams.
    """
    if mode not in MODES:
        raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
    ctx = ctx or SimContext()
    backend = backend if backend is not None else ctx.backend
    if backend not in ENGINE_BACKENDS:
        raise EngineError(
            f"unknown engine backend {backend!r}; choose from: {ENGINE_BACKENDS}"
        )
    validate_supported(network)
    params = params or NetworkParams(network, ctx.seed)
    layers = [
        program_layer(inst, params, ctx.arch, mode, backend, ctx.compute_dtype)
        for inst in network.compute_instances
    ]
    return ProgrammedState(
        model=network.name,
        mode=mode,
        backend=backend,
        seed=ctx.seed,
        arch=ctx.arch,
        layers=layers,
        compute_dtype=ctx.compute_dtype,
    )


def _check_state(
    state: ProgrammedState,
    network: Network,
    ctx: SimContext,
    mode: str,
    backend: str,
) -> None:
    """Reject a programmed state that does not match the execution request.

    A mismatched state would silently execute the wrong chip: different
    weights (model/seed), different conductance grid (arch), or tensors
    laid out for the other backend.  Each is a hard error.
    """
    mismatches = []
    if state.model != network.name:
        mismatches.append(f"model {state.model!r} != {network.name!r}")
    if state.mode != mode:
        mismatches.append(f"mode {state.mode!r} != {mode!r}")
    if state.backend != backend:
        mismatches.append(f"backend {state.backend!r} != {backend!r}")
    if state.seed != ctx.seed:
        mismatches.append(f"seed {state.seed} != {ctx.seed}")
    if state.compute_dtype != ctx.compute_dtype:
        mismatches.append(
            f"compute_dtype {state.compute_dtype!r} != {ctx.compute_dtype!r}"
        )
    if state.arch != ctx.arch:
        mismatches.append(f"arch {state.arch} != {ctx.arch}")
    if not mismatches:
        expected = [inst.name for inst in network.compute_instances]
        got = [ls.name for ls in state.layers]
        if got != expected:
            mismatches.append(f"layers {got} != {expected}")
    if mismatches:
        raise EngineError(
            "programmed state does not match this execution request: "
            + "; ".join(mismatches)
        )


def _layer_crossbars(state: LayerState, arch) -> int:
    """Crossbars a layer state occupies, from payload geometry alone.

    Lets a streaming executor report tile counts without wiring any layer
    (reading a memory-mapped payload's ``.shape`` touches no data pages).
    Matches both backends' own counting: ``groups x row_tiles x col_tiles``.
    """
    payload = state.encoded
    if payload is None:
        payload = state.conductances[0] if state.conductances else state.q
    n_groups, rows_needed, group_cols = payload.shape
    row_tiles = math.ceil(rows_needed / arch.rows)
    col_tiles = math.ceil(group_cols / arch.weights_per_col_tile)
    return n_groups * row_tiles * col_tiles


class _MappedComputeLayer:
    """One conv/FC layer wired for execution from its programmed state."""

    def __init__(
        self,
        state: LayerState,
        ctx: SimContext,
        mode: str,
        backend: str,
    ):
        self.backend = backend
        self.name = state.name
        self.kind = state.kind
        self.w_scales = state.w_scales  # (out_channels,)
        self.bias = state.bias
        self.stride = state.stride
        self.pad = state.pad
        self.kernel = state.kernel
        self.n_groups = state.n_groups
        self.out_channels = state.out_channels
        #: hot-loop tier request for the im2col gather (performance
        #: metadata off the context; never part of the layer state)
        self._kernel_tier = ctx.kernel
        # noise scopes derive from the layer index, so noisy draws are
        # independent of how many executors were constructed before this one
        if backend == "packed":
            self._packed = PackedMatmul.from_packed(
                state.encoded, state.conductances, ctx, mode, salt=state.index
            )
            self._groups: List[TiledMatmul] = []
        else:
            self._packed = None
            self._groups = [
                TiledMatmul(state.q[g], ctx, mode, salt=(state.index, g))
                for g in range(state.n_groups)
            ]

    @property
    def crossbars(self) -> int:
        if self._packed is not None:
            return self._packed.crossbars
        return sum(group.crossbars for group in self._groups)

    @property
    def fault_report(self):
        """Merged :class:`repro.faults.FaultReport` of this layer (or ``None``)."""
        if self._packed is not None:
            return self._packed.fault_report
        reports = [g.fault_report for g in self._groups if g.fault_report is not None]
        if not reports:
            return None
        from repro.faults import FaultReport

        merged = FaultReport()
        for report in reports:
            merged.merge(report)
        return merged

    @property
    def programmed_bytes(self) -> int:
        if self._packed is not None:
            return self._packed.programmed_bytes
        return sum(group.programmed_bytes for group in self._groups)

    def _matmul(self, codes: np.ndarray) -> np.ndarray:
        """Dispatch ``(positions, total_rows)`` codes to the backend."""
        if self._packed is not None:
            # codes were produced by quantize_unsigned_batch: already in range
            return self._packed.matmul(codes, validate=False)
        if self.n_groups == 1:
            return self._groups[0].matmul(codes)
        group_rows = codes.shape[1] // self.n_groups
        return np.concatenate(
            [
                self._groups[g].matmul(codes[:, g * group_rows : (g + 1) * group_rows])
                for g in range(self.n_groups)
            ],
            axis=1,
        )

    def forward(self, acts: np.ndarray, input_bits: int) -> np.ndarray:
        """Quantise a batch, run it through the tiles, dequantise the result.

        ``acts`` is ``(N, C, H, W)`` for conv layers or ``(N, features)``
        for FC layers; each image gets its own quantisation scale while the
        matmuls run once over the whole batch.
        """
        try:
            values, in_scales = quantize_unsigned_batch(acts, input_bits)
        except ValueError as exc:  # negative activations
            raise EngineError(
                f"layer {self.name!r} received negative inputs; the "
                "time-domain engine encodes activations as unsigned "
                "(post-ReLU) codes"
            ) from exc
        n = values.shape[0]
        if self.kind == "fc":
            codes = values.reshape(n, -1)
            out = self._matmul(codes)  # (N, out_features)
            np.multiply(out, self.w_scales[None, :] * in_scales[:, None], out=out)
            if self.bias is not None:
                np.add(out, self.bias, out=out)
            return out
        # conv: one im2col over the batch; the channel-major patch layout
        # keeps each group's rows contiguous, so the grouped matmul slices
        # the same columns the per-group im2col used to produce.  Routed
        # through the kernel dispatch layer (compiled gather when
        # available, the historical numpy strided copy otherwise — same
        # bytes and layout either way).
        cols, out_h, out_w = im2col_pack(
            values, self.kernel, self.stride, self.pad, kernel=self._kernel_tier
        )
        positions = cols.shape[1]
        out = self._matmul(cols.reshape(n * positions, -1))
        out = out.reshape(n, positions, self.out_channels)
        np.multiply(out, self.w_scales[None, None, :] * in_scales[:, None, None], out=out)
        if self.bias is not None:
            np.add(out, self.bias, out=out)
        return out.transpose(0, 2, 1).reshape(n, self.out_channels, out_h, out_w)


class NetworkExecutor:
    """Execute a network through its crossbar mapping, tracking accuracy.

    Parameters
    ----------
    network:
        A resolved network graph — linear chains and branching DAGs
        (ResNet residual joins, SqueezeNet fire concatenations) alike.
    ctx:
        The :class:`repro.context.SimContext` supplying architecture, noise
        and the seed for deterministic parameter generation.
    mode:
        ``"analog"`` (full time-domain chains) or ``"ideal"`` (exact tile
        read-out; isolates quantisation error from analog error).
    params:
        Optional pre-built parameters; defaults to
        ``NetworkParams(network, ctx.seed)``.
    backend:
        ``"packed"`` (vectorized per-slice tensors) or ``"tiled"`` (legacy
        per-crossbar objects); defaults to the context's ``backend`` field.
    state:
        Optional pre-programmed :class:`~repro.engine.state.ProgrammedState`
        (e.g. from a :class:`~repro.engine.state.ProgrammedStateCache`); the
        expensive programming phase is then skipped and the executor is
        wired straight from the stored tensors — bit-for-bit identical
        outputs, noise included.  Without it, the constructor programs the
        network itself (the historical one-shot behaviour, now a thin
        compose of :func:`program` and the wiring step).
    stream:
        With ``True``, no layer is wired at construction: each run wires
        one compute layer at a time — for a disk-backed state on **fresh
        per-layer file handles** (:meth:`ProgrammedState.stream_layer`) —
        executes it and drops every reference before the next layer, so
        peak weight memory is the largest single layer instead of the sum
        over all layers (``ExecutionResult.peak_wired_bytes`` records the
        observed bound).  Outputs are bit-identical to the resident path
        at the same context: noise draws derive from ``(seed, layer
        salt)``, never from wiring order.  Combine with a
        ``ProgrammedState.load(..., mmap=True)`` state for the full
        larger-than-RAM effect.
    """

    def __init__(
        self,
        network: Network,
        ctx: Optional[SimContext] = None,
        mode: str = "analog",
        params: Optional[NetworkParams] = None,
        backend: Optional[str] = None,
        state: Optional[ProgrammedState] = None,
        stream: bool = False,
    ):
        if mode not in MODES:
            raise EngineError(f"unknown engine mode {mode!r}; choose from: {MODES}")
        self.network = network
        self.ctx = ctx or SimContext()
        self.mode = mode
        self.backend = backend if backend is not None else self.ctx.backend
        if self.backend not in ENGINE_BACKENDS:
            raise EngineError(
                f"unknown engine backend {self.backend!r}; "
                f"choose from: {ENGINE_BACKENDS}"
            )
        validate_supported(network)
        self.params = params or NetworkParams(network, self.ctx.seed)
        self.mapping = self.ctx.map_network(network)
        if state is None:
            state = program(
                network, self.ctx, mode, params=self.params, backend=self.backend
            )
        else:
            _check_state(state, network, self.ctx, mode, self.backend)
        self.state = state
        self.stream = stream
        #: layer name -> position in ``state.layers`` (compute layers only)
        self._positions: Dict[str, int] = {
            ls.name: i for i, ls in enumerate(state.layers)
        }
        self._compute: Dict[str, _MappedComputeLayer] = {}
        if not stream:
            self._compute = {
                ls.name: _MappedComputeLayer(ls, self.ctx, mode, self.backend)
                for ls in state.layers
            }

    def _wire_layer(self, name: str) -> _MappedComputeLayer:
        """The executable layer for ``name`` — resident, or freshly streamed."""
        if not self.stream:
            return self._compute[name]
        streamed = self.state.stream_layer(self._positions[name])
        return _MappedComputeLayer(streamed, self.ctx, self.mode, self.backend)

    @classmethod
    def from_state(
        cls,
        state: ProgrammedState,
        network: Optional[Network] = None,
        ctx: Optional[SimContext] = None,
        params: Optional[NetworkParams] = None,
        stream: bool = False,
    ) -> "NetworkExecutor":
        """Wire an executor from a programmed state, skipping programming.

        ``network`` defaults to rebuilding the state's model from the zoo;
        ``ctx`` defaults to a noise-free context matching the state (pass
        one with a noise model to apply per-trial programming variation on
        top of the stored base conductances — the Monte-Carlo path).  The
        context's architecture, seed, backend and compute dtype must match
        the state's.  ``stream=True`` wires nothing up front and executes
        layer-by-layer against the state's backing files (see the
        constructor's ``stream`` parameter).
        """
        if network is None:
            from repro.nn.models import build_model

            network = build_model(state.model)
        if ctx is None:
            ctx = SimContext(
                arch=state.arch,
                seed=state.seed,
                backend=state.backend,
                compute_dtype=state.compute_dtype,
            )
        return cls(
            network,
            ctx,
            state.mode,
            params=params,
            backend=state.backend,
            state=state,
            stream=stream,
        )

    @property
    def crossbars(self) -> int:
        """Programmed physical crossbars (pairs counted once, as the mapper does)."""
        if self.stream:
            return sum(
                _layer_crossbars(ls, self.ctx.arch) for ls in self.state.layers
            )
        return sum(layer.crossbars for layer in self._compute.values())

    @property
    def programmed_bytes(self) -> int:
        """Resident bytes of the programmed weight state across all layers.

        Packed: the per-slice conductance tensors; tiled: the integer levels
        plus conductances of every physical crossbar.  The bench adds this to
        the traced forward-pass peak for its memory figure.  A streaming
        executor wires nothing up front, so this reports the backing
        state's payload bytes (for a memory-mapped state those live on
        disk, not in RAM — ``ExecutionResult.peak_wired_bytes`` is the
        resident bound there).
        """
        if self.stream:
            return self.state.nbytes
        return sum(layer.programmed_bytes for layer in self._compute.values())

    def random_input(self, salt: int = 1) -> np.ndarray:
        """A deterministic non-negative input image for this context's seed."""
        shape = self.network.input_shape
        return self.ctx.rng(salt).uniform(
            0.0, 1.0, size=(shape.channels, shape.height, shape.width)
        )

    def random_batch(self, n: int, salt: int = 1) -> np.ndarray:
        """``n`` deterministic input images; ``random_batch(1)[0]`` equals
        :meth:`random_input` for the same salt."""
        if n <= 0:
            raise EngineError("batch size must be positive")
        shape = self.network.input_shape
        return self.ctx.rng(salt).uniform(
            0.0, 1.0, size=(n, shape.channels, shape.height, shape.width)
        )

    def run_reference(self, x: np.ndarray) -> np.ndarray:
        """The float reference output for ``x`` with this executor's weights."""
        return reference_forward(self.network, self.params, x)[0]

    def run(
        self,
        x: Optional[np.ndarray] = None,
        validate: bool = True,
        free_activations: bool = True,
    ) -> ExecutionResult:
        """Execute ``x`` (default: :meth:`random_input`) through the crossbars.

        The network graph is walked in deterministic topological order; for
        a linear chain that is exactly the declaration order, so sequential
        models take the same numeric path as the flat executor always did.
        An activation is freed as soon as its last consumer has run
        (``free_activations=False`` keeps everything resident — the bench
        uses it to pin the liveness memory win); the observed peak is
        reported as ``peak_activation_bytes``.

        ``x`` may be a single ``(C, H, W)`` image or an ``(N, C, H, W)``
        batch; the output mirrors the input's batchedness.  With
        ``validate=False`` the float reference forward pass is skipped
        entirely (the per-layer traces then carry NaN relative errors) —
        use it for throughput runs where the double-compute would dominate.
        """
        act = np.asarray(x, dtype=float) if x is not None else self.random_input()
        single = act.ndim == 3
        if single:
            batch = act[None]
        elif act.ndim == 4:
            batch = act
        else:
            raise EngineError(
                "engine inputs must be (channels, height, width) images or "
                f"(batch, channels, height, width) batches, got shape {act.shape}"
            )
        if np.any(batch < 0):
            raise EngineError("engine inputs must be non-negative (unsigned input codes)")

        ref_acts: Optional[Dict[str, np.ndarray]] = None
        if validate:
            # one batched float pass — not N separate Python-loop forwards
            ref_acts = reference_forward_batch(self.network, self.params, batch)[1]

        order = self.network.topological_order()
        output_name = self.network.output.name
        # remaining-consumer counts per producer, straight from the graph's
        # liveness map; duplicate edges (a node consuming one producer
        # twice) count twice
        pending: Dict[str, int] = {
            name: len(dests) for name, dests in self.network.consumers().items()
        }
        live: Dict[str, np.ndarray] = {NETWORK_INPUT: batch}
        peak_bytes = _live_buffer_bytes(live.values())
        peak_wired = 0 if self.stream else self.programmed_bytes
        total_stuck = total_remapped = 0
        traces: List[LayerTrace] = []
        for inst in order:
            operands = [live[src] for src in inst.inputs]
            layer_stuck = layer_remapped = 0
            if inst.name in self._positions:
                mapped = self._wire_layer(inst.name)
                out = mapped.forward(operands[0], self.ctx.arch.input_bits)
                crossbars = mapped.crossbars
                report = mapped.fault_report
                if report is not None:
                    layer_stuck = report.stuck_cells
                    layer_remapped = report.remapped_rows
                    total_stuck += layer_stuck
                    total_remapped += layer_remapped
                if self.stream:
                    peak_wired = max(peak_wired, mapped.programmed_bytes)
                    # drop the streamed layer (and its file handles) before
                    # the next layer wires — this is the streaming bound
                    del mapped
            else:
                out = apply_aux_batched(inst, operands, self.params)
                crossbars = 0
            # every batch slice shares out.shape[1:], so checking one image
            # checks them all with the reference path's own shape logic
            check_activation_shape(inst, out[0])
            traces.append(
                LayerTrace(
                    name=inst.name,
                    kind=inst.kind,
                    crossbars=crossbars,
                    rel_error=(
                        relative_error(out, ref_acts[inst.name])
                        if ref_acts is not None
                        else float("nan")
                    ),
                    stuck_cells=layer_stuck,
                    remapped_rows=layer_remapped,
                )
            )
            live[inst.name] = out
            peak_bytes = max(peak_bytes, _live_buffer_bytes(live.values()))
            if free_activations:
                for src in set(inst.inputs):
                    pending[src] -= inst.inputs.count(src)
                    if pending[src] == 0 and src != output_name:
                        del live[src]
                if inst.name != output_name and pending[inst.name] == 0:
                    # a node nothing consumes (and which is not the output)
                    del live[inst.name]
        output = live[output_name]
        reference = None
        if ref_acts is not None:
            reference = ref_acts[output_name][0] if single else ref_acts[output_name]
        return ExecutionResult(
            model=self.network.name,
            mode=self.mode,
            backend=self.backend,
            output=output[0] if single else output,
            reference=reference,
            traces=traces,
            peak_activation_bytes=peak_bytes,
            peak_wired_bytes=peak_wired,
            stuck_cells=total_stuck,
            remapped_rows=total_remapped,
        )


def run_network(
    network: Network,
    ctx: Optional[SimContext] = None,
    x: Optional[np.ndarray] = None,
    mode: str = "analog",
    backend: Optional[str] = None,
    validate: bool = True,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`NetworkExecutor`."""
    return NetworkExecutor(network, ctx, mode, backend=backend).run(x, validate=validate)
