"""Errors raised by the functional simulation engine."""

from __future__ import annotations


class EngineError(RuntimeError):
    """A network, layer or activation the functional engine cannot execute.

    Raised for branching topologies (the engine executes the flat,
    shape-chained view only), unsupported layer kinds, architectures whose
    weight precision does not fit one or two bit-cell columns, and negative
    layer inputs (TIMELY encodes activations as unsigned post-ReLU codes).
    """
