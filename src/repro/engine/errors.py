"""Errors raised by the functional simulation engine."""

from __future__ import annotations


class EngineError(RuntimeError):
    """A network, layer or activation the functional engine cannot execute.

    Raised for unsupported layer kinds (with the offending layer named),
    non-square conv kernels, architectures whose weight precision does not
    fit the bit-cell columns, and negative layer inputs (TIMELY encodes
    activations as unsigned post-ReLU codes).  Malformed graphs — cycles,
    dangling producers, shape mismatches at a merge — are rejected earlier,
    at :class:`~repro.nn.network.Network` construction, with a
    :class:`~repro.nn.network.GraphError` naming the layers involved.
    """
