"""Pure-numpy reference execution of a resolved network.

This is the ground truth the crossbar engine is validated against: the same
:class:`~repro.engine.params.NetworkParams` pushed through the exact
float kernels of :mod:`repro.nn.functional`.  The auxiliary (non-MAC)
layers are applied through :func:`apply_aux_layer`, which the crossbar
executor shares, so the two paths can only differ in the conv/FC dot
products — exactly the part the crossbars replace.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.engine.errors import EngineError
from repro.engine.params import NetworkParams
from repro.nn import functional as F
from repro.nn.layers import Conv2D, FullyConnected, Pool2D, _resolve_padding
from repro.nn.network import LayerInstance, Network

#: layer kinds the flat executor understands
SUPPORTED_KINDS = ("conv", "fc", "pool", "relu", "bn", "flatten", "gap")


def validate_sequential(network: Network) -> None:
    """Reject networks the flat engine cannot execute faithfully.

    The engine runs the layer list as a chain, so every layer must consume
    the previous layer's output; branching topologies (ResNet ``add``
    joins, SqueezeNet fire concatenations, built via ``NetworkBuilder.at``)
    break that invariant and are rejected up front rather than silently
    mis-executed.
    """
    shape = network.input_shape
    for inst in network:
        if inst.kind not in SUPPORTED_KINDS:
            raise EngineError(
                f"layer {inst.name!r} of kind {inst.kind!r} is not supported by "
                f"the functional engine (supported: {', '.join(SUPPORTED_KINDS)})"
            )
        layer = inst.layer
        if isinstance(layer, Conv2D) and layer.kernel_h != layer.kernel_w:
            raise EngineError(
                f"layer {inst.name!r} has a {layer.kernel_h}x{layer.kernel_w} "
                "kernel; the functional engine (like the im2col reference "
                "kernels) supports square filters only"
            )
        if inst.input_shape != shape:
            raise EngineError(
                f"layer {inst.name!r} expects input {inst.input_shape}, but the "
                f"previous layer produces {shape}; the functional engine only "
                "executes sequential (non-branching) networks"
            )
        shape = inst.output_shape


def conv_padding(layer: Conv2D) -> int:
    """Resolve a conv layer's padding spec to a pixel count.

    ``"same"`` resolves to ``(kernel - 1) // 2``; for the even-kernel /
    strided corner cases where that differs from the ceil-based shape
    inference, the executor's output-shape check catches the mismatch.
    """
    if layer.padding == "same":
        return (layer.kernel_h - 1) // 2
    return _resolve_padding(layer.padding, layer.kernel_h)


def apply_aux_batched(
    inst: LayerInstance, acts: np.ndarray, params: NetworkParams
) -> np.ndarray:
    """Batched counterpart of :func:`apply_aux_layer`.

    Applies the same :mod:`repro.nn.functional` kernels over a whole
    ``(N, ...)`` batch at once — image ``n``'s slice equals
    ``apply_aux_layer(inst, acts[n], params)`` exactly (pooling folds the
    batch into the channel axis, which the per-channel kernels treat
    identically).  Shared by the crossbar executor and the batched float
    reference, so the two paths can only differ in the conv/FC dot products.
    """
    layer = inst.layer
    n = acts.shape[0]
    if inst.kind == "relu":
        return F.relu(acts)
    if inst.kind == "pool":
        assert isinstance(layer, Pool2D)
        pad = _resolve_padding(layer.padding, layer.kernel)
        pool = F.max_pool2d if layer.mode == "max" else F.avg_pool2d
        pooled = pool(acts.reshape((-1,) + acts.shape[2:]), layer.kernel, layer.stride, pad)
        return pooled.reshape((n, acts.shape[1]) + pooled.shape[1:])
    if inst.kind == "bn":
        p = params[inst.name]
        return acts * p.scale[None, :, None, None] + p.shift[None, :, None, None]
    if inst.kind == "flatten":
        return acts.reshape(n, -1)
    if inst.kind == "gap":
        return acts.reshape(n, acts.shape[1], -1).mean(axis=2)
    return np.stack([apply_aux_layer(inst, image, params) for image in acts])


def apply_aux_layer(inst: LayerInstance, act: np.ndarray, params: NetworkParams) -> np.ndarray:
    """Apply one non-MAC layer (shared by the reference and crossbar paths)."""
    layer = inst.layer
    if inst.kind == "relu":
        return F.relu(act)
    if inst.kind == "pool":
        assert isinstance(layer, Pool2D)
        pad = _resolve_padding(layer.padding, layer.kernel)
        pool = F.max_pool2d if layer.mode == "max" else F.avg_pool2d
        return pool(act, layer.kernel, layer.stride, pad)
    if inst.kind == "bn":
        p = params[inst.name]
        return F.batch_norm(act, p.scale, p.shift)
    if inst.kind == "flatten":
        return act.reshape(-1)
    if inst.kind == "gap":
        return F.global_avg_pool(act)
    raise EngineError(f"layer {inst.name!r} of kind {inst.kind!r} is not an auxiliary layer")


def check_activation_shape(inst: LayerInstance, act: np.ndarray) -> None:
    """Assert an activation matches the instance's resolved output shape."""
    shape = inst.output_shape
    expected = (shape.channels,) if shape.is_flat else (
        shape.channels,
        shape.height,
        shape.width,
    )
    if act.shape != expected:
        raise EngineError(
            f"layer {inst.name!r} produced activation shape {act.shape}, but "
            f"shape inference resolved {expected} (check padding spec)"
        )


def reference_forward_batch(
    network: Network, params: NetworkParams, x: np.ndarray
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Batched :func:`reference_forward`: one float pass over ``(N, C, H, W)``.

    Returns the ``(N, ...)`` outputs and per-layer activation stacks; image
    ``n``'s slices match ``reference_forward(network, params, x[n])`` (the
    conv/FC matmuls run as stacked GEMMs of exactly the per-image shapes, so
    any difference is at the last-ulp level of the BLAS).  The executor's
    batched validation uses this instead of ``N`` separate Python-loop
    reference forwards — one im2col and one stacked matmul per layer instead
    of ``N`` of each.
    """
    validate_sequential(network)
    acts = np.asarray(x, dtype=float)
    if acts.ndim != 4:
        raise EngineError(
            f"expected a (batch, channels, height, width) batch, got shape {acts.shape}"
        )
    n = acts.shape[0]
    activations: Dict[str, np.ndarray] = {}
    for inst in network:
        layer = inst.layer
        if isinstance(layer, Conv2D):
            p = params[inst.name]
            pad = conv_padding(layer)
            group_in = layer.in_channels // layer.groups
            group_out = layer.out_channels // layer.groups
            outputs = []
            for g in range(layer.groups):
                x_g = acts[:, g * group_in : (g + 1) * group_in]
                cols, out_h, out_w = F.im2col_batch(x_g, layer.kernel_h, layer.stride, pad)
                w_g = p.weights[g * group_out : (g + 1) * group_out]
                outputs.append(cols @ w_g.reshape(group_out, -1).T)  # (N, P, D/g)
            out = np.concatenate(outputs, axis=2)
            if p.bias is not None:
                out = out + p.bias
            acts = out.transpose(0, 2, 1).reshape(n, layer.out_channels, out_h, out_w)
        elif isinstance(layer, FullyConnected):
            p = params[inst.name]
            acts = acts.reshape(n, -1) @ p.weights.T
            if p.bias is not None:
                acts = acts + p.bias
        else:
            acts = apply_aux_batched(inst, acts, params)
        check_activation_shape(inst, acts[0])
        activations[inst.name] = acts
    return acts, activations


def reference_forward(
    network: Network, params: NetworkParams, x: np.ndarray
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Run the float reference, returning the output and per-layer activations."""
    validate_sequential(network)
    act = np.asarray(x, dtype=float)
    activations: Dict[str, np.ndarray] = {}
    for inst in network:
        layer = inst.layer
        if isinstance(layer, Conv2D):
            p = params[inst.name]
            act = F.conv2d(
                act,
                p.weights,
                p.bias,
                stride=layer.stride,
                pad=conv_padding(layer),
                groups=layer.groups,
            )
        elif isinstance(layer, FullyConnected):
            p = params[inst.name]
            act = F.fully_connected(act, p.weights, p.bias)
        else:
            act = apply_aux_layer(inst, act, params)
        check_activation_shape(inst, act)
        activations[inst.name] = act
    return act, activations
