"""Pure-numpy reference execution of a resolved network graph.

This is the ground truth the crossbar engine is validated against: the same
:class:`~repro.engine.params.NetworkParams` pushed through the exact
float kernels of :mod:`repro.nn.functional`, walking the network's
deterministic topological order exactly as the crossbar executor does.
The auxiliary (non-MAC) layers are applied through :func:`apply_aux_layer`
/ :func:`apply_aux_batched`, which the crossbar executor shares, so the two
paths can only differ in the conv/FC dot products — exactly the part the
crossbars replace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.engine.errors import EngineError
from repro.engine.params import NetworkParams
from repro.nn import functional as F
from repro.nn.layers import Conv2D, FullyConnected, Pool2D, _resolve_padding
from repro.nn.network import NETWORK_INPUT, LayerInstance, Network

#: layer kinds the engine (and this reference) can execute
SUPPORTED_KINDS = ("conv", "fc", "pool", "relu", "bn", "flatten", "gap", "add", "concat")


def validate_supported(network: Network) -> None:
    """Reject layers the engine cannot execute, naming the offending layer.

    Graph-structural problems (cycles, dangling producers, merge shape
    mismatches) are caught at :class:`~repro.nn.network.Network`
    construction with :class:`~repro.nn.network.GraphError`; this check
    covers the engine-specific limits on top of a well-formed graph.
    """
    for inst in network:
        if inst.kind not in SUPPORTED_KINDS:
            raise EngineError(
                f"layer {inst.name!r} of kind {inst.kind!r} is not supported by "
                f"the functional engine (supported: {', '.join(SUPPORTED_KINDS)})"
            )
        layer = inst.layer
        if isinstance(layer, Conv2D) and layer.kernel_h != layer.kernel_w:
            raise EngineError(
                f"layer {inst.name!r} has a {layer.kernel_h}x{layer.kernel_w} "
                "kernel; the functional engine (like the im2col reference "
                "kernels) supports square filters only"
            )


def validate_sequential(network: Network) -> None:
    """Assert a network is a plain chain (every layer consumes its predecessor).

    The engine itself executes arbitrary DAGs; this check remains for
    callers that rely on the flat-sequential view (e.g. tests pinning that
    the linear zoo models take the exact chain path).
    """
    validate_supported(network)
    if not network.is_sequential:
        offenders = []
        previous = NETWORK_INPUT
        for inst in network:
            if inst.inputs != (previous,):
                offenders.append(inst.name)
            previous = inst.name
        raise EngineError(
            f"network {network.name!r} is not sequential: layer(s) "
            f"{', '.join(repr(n) for n in offenders)} consume producers other "
            "than their predecessor"
        )
    shape = network.input_shape
    for inst in network:
        if inst.input_shape != shape:
            raise EngineError(
                f"layer {inst.name!r} expects input {inst.input_shape}, but the "
                f"previous layer produces {shape}"
            )
        shape = inst.output_shape


def conv_padding(layer: Conv2D) -> int:
    """Resolve a conv layer's padding spec to a pixel count.

    ``"same"`` resolves to ``(kernel - 1) // 2``; for the even-kernel /
    strided corner cases where that differs from the ceil-based shape
    inference, the executor's output-shape check catches the mismatch.
    """
    if layer.padding == "same":
        return (layer.kernel_h - 1) // 2
    return _resolve_padding(layer.padding, layer.kernel_h)


def apply_aux_batched(
    inst: LayerInstance, inputs: Sequence[np.ndarray], params: NetworkParams
) -> np.ndarray:
    """Batched counterpart of :func:`apply_aux_layer`.

    ``inputs`` holds one ``(N, ...)`` array per producer edge of the node
    (single-input layers receive a one-element list).  Applies the same
    :mod:`repro.nn.functional` kernels over the whole batch at once — image
    ``n``'s slice equals ``apply_aux_layer(inst, [a[n] for a in inputs],
    params)`` exactly (pooling folds the batch into the channel axis, which
    the per-channel kernels treat identically).  Shared by the crossbar
    executor and the batched float reference, so the two paths can only
    differ in the conv/FC dot products.
    """
    layer = inst.layer
    acts = inputs[0]
    n = acts.shape[0]
    if inst.kind == "relu":
        return F.relu(acts)
    if inst.kind == "pool":
        assert isinstance(layer, Pool2D)
        pad = _resolve_padding(layer.padding, layer.kernel)
        pool = F.max_pool2d if layer.mode == "max" else F.avg_pool2d
        pooled = pool(acts.reshape((-1,) + acts.shape[2:]), layer.kernel, layer.stride, pad)
        return pooled.reshape((n, acts.shape[1]) + pooled.shape[1:])
    if inst.kind == "bn":
        p = params[inst.name]
        return acts * p.scale[None, :, None, None] + p.shift[None, :, None, None]
    if inst.kind == "flatten":
        return acts.reshape(n, -1)
    if inst.kind == "gap":
        return acts.reshape(n, acts.shape[1], -1).mean(axis=2)
    if inst.kind == "add":
        out = inputs[0] + inputs[1]
        for extra in inputs[2:]:
            out = out + extra
        return out
    if inst.kind == "concat":
        # batched operands are (N, C, H, W) or (N, features): channels sit
        # on axis 1 either way
        return np.concatenate(inputs, axis=1)
    return np.stack(
        [
            apply_aux_layer(inst, [operand[i] for operand in inputs], params)
            for i in range(n)
        ]
    )


def apply_aux_layer(
    inst: LayerInstance, inputs: Sequence[np.ndarray], params: NetworkParams
) -> np.ndarray:
    """Apply one non-MAC layer to a single image's operand list."""
    layer = inst.layer
    act = inputs[0]
    if inst.kind == "relu":
        return F.relu(act)
    if inst.kind == "pool":
        assert isinstance(layer, Pool2D)
        pad = _resolve_padding(layer.padding, layer.kernel)
        pool = F.max_pool2d if layer.mode == "max" else F.avg_pool2d
        return pool(act, layer.kernel, layer.stride, pad)
    if inst.kind == "bn":
        p = params[inst.name]
        return F.batch_norm(act, p.scale, p.shift)
    if inst.kind == "flatten":
        return act.reshape(-1)
    if inst.kind == "gap":
        return F.global_avg_pool(act)
    if inst.kind == "add":
        out = inputs[0] + inputs[1]
        for extra in inputs[2:]:
            out = out + extra
        return out
    if inst.kind == "concat":
        # single-image operands are (C, H, W) or flat (features,): the
        # channel axis is axis 0 in both layouts
        return np.concatenate(inputs, axis=0)
    raise EngineError(f"layer {inst.name!r} of kind {inst.kind!r} is not an auxiliary layer")


def check_activation_shape(inst: LayerInstance, act: np.ndarray) -> None:
    """Assert an activation matches the instance's resolved output shape."""
    shape = inst.output_shape
    expected = (shape.channels,) if shape.is_flat else (
        shape.channels,
        shape.height,
        shape.width,
    )
    if act.shape != expected:
        raise EngineError(
            f"layer {inst.name!r} produced activation shape {act.shape}, but "
            f"shape inference resolved {expected} (check padding spec)"
        )


def reference_forward_batch(
    network: Network, params: NetworkParams, x: np.ndarray
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Batched :func:`reference_forward`: one float pass over ``(N, C, H, W)``.

    Walks the graph in deterministic topological order and returns the
    ``(N, ...)`` outputs and per-layer activation stacks; image ``n``'s
    slices match ``reference_forward(network, params, x[n])`` (the conv/FC
    matmuls run as stacked GEMMs of exactly the per-image shapes, so any
    difference is at the last-ulp level of the BLAS).  The executor's
    batched validation uses this instead of ``N`` separate Python-loop
    reference forwards — one im2col and one stacked matmul per layer
    instead of ``N`` of each.  Every layer's activations stay resident (the
    executor compares against all of them); throughput runs that need the
    liveness-freed memory profile skip validation instead.
    """
    validate_supported(network)
    acts = np.asarray(x, dtype=float)
    if acts.ndim != 4:
        raise EngineError(
            f"expected a (batch, channels, height, width) batch, got shape {acts.shape}"
        )
    n = acts.shape[0]
    activations: Dict[str, np.ndarray] = {NETWORK_INPUT: acts}
    for inst in network.topological_order():
        layer = inst.layer
        operands: List[np.ndarray] = [activations[src] for src in inst.inputs]
        if isinstance(layer, Conv2D):
            p = params[inst.name]
            pad = conv_padding(layer)
            group_in = layer.in_channels // layer.groups
            group_out = layer.out_channels // layer.groups
            outputs = []
            for g in range(layer.groups):
                x_g = operands[0][:, g * group_in : (g + 1) * group_in]
                cols, out_h, out_w = F.im2col_batch(x_g, layer.kernel_h, layer.stride, pad)
                w_g = p.weights[g * group_out : (g + 1) * group_out]
                outputs.append(cols @ w_g.reshape(group_out, -1).T)  # (N, P, D/g)
            out = np.concatenate(outputs, axis=2)
            if p.bias is not None:
                out = out + p.bias
            out = out.transpose(0, 2, 1).reshape(n, layer.out_channels, out_h, out_w)
        elif isinstance(layer, FullyConnected):
            p = params[inst.name]
            out = operands[0].reshape(n, -1) @ p.weights.T
            if p.bias is not None:
                out = out + p.bias
        else:
            out = apply_aux_batched(inst, operands, params)
        check_activation_shape(inst, out[0])
        activations[inst.name] = out
    del activations[NETWORK_INPUT]
    return activations[network.output.name], activations


def reference_forward(
    network: Network, params: NetworkParams, x: np.ndarray
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Run the float reference, returning the output and per-layer activations."""
    validate_supported(network)
    activations: Dict[str, np.ndarray] = {NETWORK_INPUT: np.asarray(x, dtype=float)}
    for inst in network.topological_order():
        layer = inst.layer
        operands = [activations[src] for src in inst.inputs]
        if isinstance(layer, Conv2D):
            p = params[inst.name]
            act = F.conv2d(
                operands[0],
                p.weights,
                p.bias,
                stride=layer.stride,
                pad=conv_padding(layer),
                groups=layer.groups,
            )
        elif isinstance(layer, FullyConnected):
            p = params[inst.name]
            act = F.fully_connected(operands[0], p.weights, p.bias)
        else:
            act = apply_aux_layer(inst, operands, params)
        check_activation_shape(inst, act)
        activations[inst.name] = act
    del activations[NETWORK_INPUT]
    return activations[network.output.name], activations
