"""Component energy/area/latency tables and accelerator configurations.

The TIMELY numbers follow Table II of the paper; where a number is already
encoded on a behavioural dataclass (DTC/TDC/DAC/ADC, the analog local
buffers, the charging unit) it is read from there so the circuit models and
the energy model cannot drift apart.  The voltage-domain interface costs
keep the paper's ratios: a DAC conversion costs roughly ``q1 = 50x`` a DTC
conversion and an ADC conversion roughly ``q2 = 20x`` a TDC conversion.

Three :class:`AcceleratorSpec` configurations are exported:

* :func:`timely_config` — time-domain interfaces, analog local buffers,
  only-once input read,
* :func:`prime_like_config` — voltage-domain, multi-bit input drivers
  (PRIME presents several input bits per array activation),
* :func:`isaac_like_config` — voltage-domain, bit-serial input streaming
  (1 bit per 100 ns cycle) with one shared ADC per crossbar.

The memory-hierarchy costs (chip-level input buffer, partial-sum buffer,
output buffer) are identical across configurations: the comparison isolates
the paper's two levers — interface energy and input/partial-sum movement —
rather than assuming better SRAM for TIMELY.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.circuits.analog_buffers import ChargingUnit, CurrentAdder, PSubBuf, XSubBuf
from repro.circuits.components import ComponentSpec
from repro.circuits.converters import ADC, DAC, DTC, TDC
from repro.mapping.crossbar_mapping import CrossbarConfig

# -- shared memory-hierarchy costs (per 8-bit element access) -----------------
INPUT_BUFFER_READ = ComponentSpec("input_buffer_read", energy_fj=2000.0)
OUTPUT_BUFFER_WRITE = ComponentSpec("output_buffer_write", energy_fj=2000.0)
PSUM_BUFFER_ACCESS = ComponentSpec("psum_buffer_access", energy_fj=1200.0)
#: digital shift-and-add merging one digitised partial sum (voltage domain)
DIGITAL_PSUM_MERGE = ComponentSpec("digital_psum_merge", energy_fj=60.0)

#: one full-precision activation of a *reference* 256x256 array (row drivers +
#: cell currents); other geometries are scaled by their cell count, and
#: bit-serial styles are charged pro rata per presented bit so the summed
#: array energy is comparable across styles.
CROSSBAR_ACTIVATION = ComponentSpec(
    "crossbar_activation", energy_fj=16000.0, area_um2=1108.0
)
_REFERENCE_CELLS = 256 * 256

#: per-cell area of the ReRAM array (4F^2 at F = 65 nm)
RERAM_CELL_AREA_UM2 = 4 * 0.065 * 0.065


def _tdi_specs(config: CrossbarConfig) -> Dict[str, ComponentSpec]:
    """Time-domain interface + ALB event costs, read off the circuit models."""
    dtc, tdc = DTC(), TDC()
    x_subbuf, p_subbuf = XSubBuf(), PSubBuf()
    charging, i_adder = ChargingUnit(), CurrentAdder()
    return {
        "input_read": INPUT_BUFFER_READ,
        "input_conversion": ComponentSpec(
            "dtc", dtc.energy_fj, dtc.area_um2, dtc.latency_ns
        ),
        "input_forward": ComponentSpec("x_subbuf", x_subbuf.energy_fj, x_subbuf.area_um2),
        "crossbar_op": CROSSBAR_ACTIVATION.scaled(
            energy_factor=config.cells / _REFERENCE_CELLS
        ),
        # one analog partial-sum merge = a P-subBuf mirror plus its share of
        # the I-adder / charging-unit work at the column foot
        "partial_sum_merge": ComponentSpec(
            "alb_psum_merge",
            p_subbuf.energy_fj + charging.energy_fj + i_adder.energy_fj / config.cols,
        ),
        "partial_sum_buffer_access": PSUM_BUFFER_ACCESS,
        "output_conversion": ComponentSpec(
            "tdc", tdc.energy_fj, tdc.area_um2, tdc.latency_ns
        ),
        "output_write": OUTPUT_BUFFER_WRITE,
    }


def _vdi_specs(config: CrossbarConfig, dac_bits: int) -> Dict[str, ComponentSpec]:
    """Voltage-domain interface event costs (PRIME/ISAAC style)."""
    dac, adc = DAC(), ADC()
    bit_fraction = dac_bits / config.input_bits
    return {
        "input_read": INPUT_BUFFER_READ,
        "input_conversion": ComponentSpec(
            "dac", dac.energy_fj * bit_fraction, dac.area_um2, dac.latency_ns
        ),
        "input_forward": ComponentSpec("unused_forward", 0.0),
        "crossbar_op": CROSSBAR_ACTIVATION.scaled(
            energy_factor=bit_fraction * config.cells / _REFERENCE_CELLS
        ),
        "partial_sum_merge": DIGITAL_PSUM_MERGE,
        "partial_sum_buffer_access": PSUM_BUFFER_ACCESS,
        "output_conversion": ComponentSpec(
            "adc", adc.energy_fj, adc.area_um2, adc.latency_ns
        ),
        "output_write": OUTPUT_BUFFER_WRITE,
    }


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator configuration the estimator can price.

    Attributes
    ----------
    name / style:
        ``style`` is ``"time"`` (TIMELY: O2IR + ALBs + TDIs) or ``"voltage"``
        (PRIME/ISAAC: DAC/ADC interfaces, digital partial sums).
    dac_bits:
        Input bits presented per array activation (voltage style only);
        an 8-bit input needs ``ceil(8 / dac_bits)`` sequential slices.
    cycle_time_ns:
        Wall-clock time of one array activation step (all tiles operate in
        parallel, weights stationary).
    event_specs:
        Per-event :class:`ComponentSpec` records keyed by the field names of
        :class:`repro.mapping.access_counts.AccessCounts` (singular form).
    interface_area_um2:
        Interface area attributed to one crossbar tile after sharing
        (DTC/TDC rows-and-columns for TIMELY, row drivers + shared ADC for
        the baselines).
    """

    name: str
    style: str
    cycle_time_ns: float
    dac_bits: int = 8
    event_specs: Dict[str, ComponentSpec] = field(default_factory=dict)
    interface_area_um2: float = 0.0

    def __post_init__(self) -> None:
        if self.style not in ("time", "voltage"):
            raise ValueError(f"unknown accelerator style {self.style!r}")
        if self.cycle_time_ns <= 0:
            raise ValueError("cycle_time_ns must be positive")
        if self.dac_bits <= 0:
            raise ValueError("dac_bits must be positive")

    def input_slices(self, config: CrossbarConfig) -> int:
        """Sequential input slices needed per output position."""
        if self.style == "time":
            return 1
        return math.ceil(config.input_bits / self.dac_bits)

    def area_per_crossbar_um2(self, config: CrossbarConfig) -> float:
        """Array plus attributed interface area of one tile."""
        array = config.cells * RERAM_CELL_AREA_UM2
        return array + self.interface_area_um2


def timely_config(config: CrossbarConfig = CrossbarConfig()) -> AcceleratorSpec:
    """TIMELY: time-domain interfaces, ALBs, only-once input read.

    The cycle covers DTC conversion plus the two-phase charge/compare
    read-out (Section IV-C); DTCs are shared along a sub-Chip row and TDCs
    along a sub-Chip column (8-way sharing, Fig. 5).
    """
    dtc, tdc = DTC(), TDC()
    interface = (
        config.rows * dtc.area_um2 / 8.0 + config.cols * tdc.area_um2 / 8.0
    )
    return AcceleratorSpec(
        name="TIMELY",
        style="time",
        cycle_time_ns=51.2,
        event_specs=_tdi_specs(config),
        interface_area_um2=interface,
    )


def prime_like_config(config: CrossbarConfig = CrossbarConfig()) -> AcceleratorSpec:
    """PRIME-like baseline: multi-bit voltage drivers, per-bank sense ADCs."""
    dac_bits = 4
    adc = ADC()
    interface = config.rows * 20.0 + config.cols * adc.area_um2 / 16.0
    return AcceleratorSpec(
        name="PRIME-like",
        style="voltage",
        cycle_time_ns=64.0,
        dac_bits=dac_bits,
        event_specs=_vdi_specs(config, dac_bits),
        interface_area_um2=interface,
    )


def isaac_like_config(config: CrossbarConfig = CrossbarConfig()) -> AcceleratorSpec:
    """ISAAC-like baseline: 1-bit input streaming, one shared ADC per tile."""
    dac_bits = 1
    adc = ADC()
    interface = config.rows * 2.0 + adc.area_um2
    return AcceleratorSpec(
        name="ISAAC-like",
        style="voltage",
        cycle_time_ns=100.0,
        dac_bits=dac_bits,
        event_specs=_vdi_specs(config, dac_bits),
        interface_area_um2=interface,
    )


def default_configs(config: CrossbarConfig = CrossbarConfig()) -> List[AcceleratorSpec]:
    """The three configurations compared throughout the paper's evaluation."""
    return [timely_config(config), prime_like_config(config), isaac_like_config(config)]
