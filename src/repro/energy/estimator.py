"""Chip-level energy / latency / area estimation.

The estimator rolls a crossbar mapping (:mod:`repro.mapping`) and the
per-accelerator access counts (:mod:`repro.mapping.access_counts`) into
per-layer and per-network totals, pricing every event with the
:class:`repro.circuits.components.ComponentSpec` records of an
:class:`repro.energy.tables.AcceleratorSpec`.

Modelling assumptions (deliberately simple, matching the paper's own
system-level methodology):

* weights are stationary — every layer owns its crossbars, all tiles of a
  layer operate in parallel, and a layer's latency is its number of output
  positions times the input slices per position times the cycle time;
* network latency is the sum of layer latencies (one image, no cross-layer
  pipelining), throughput is total operations over that latency;
* optionally, a *cross-layer pipelined* latency is estimated as well: with
  every layer's crossbars resident (weights stationary), layer ``l+1`` can
  start consuming output positions as soon as layer ``l`` produces them, so
  a single image costs one pipeline fill (one position step per layer) plus
  the drain of the bottleneck layer — ``(n_layers - 1) * step + max_l
  latency_l``.  This is the dataflow ISAAC's inter-layer pipeline and
  TIMELY's sub-Chip pipelining both target;
* energy efficiency is total operations over total energy (TOPS/W).

Entry points accept either the explicit ``(spec, config)`` pair or a single
:class:`repro.context.SimContext` (the ``ctx`` keyword), which supplies
both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.context import SimContext
from repro.mapping.access_counts import (
    AccessCounts,
    timely_access_counts,
    voltage_domain_access_counts,
)
from repro.mapping.crossbar_mapping import CrossbarConfig, LayerMapping, map_network
from repro.energy.tables import AcceleratorSpec, default_configs
from repro.nn.network import Network

#: AccessCounts field -> event-spec key priced against it
_EVENT_FIELDS: Dict[str, str] = {
    "input_reads": "input_read",
    "input_conversions": "input_conversion",
    "input_forwards": "input_forward",
    "crossbar_ops": "crossbar_op",
    "partial_sum_merges": "partial_sum_merge",
    "partial_sum_buffer_accesses": "partial_sum_buffer_access",
    "output_conversions": "output_conversion",
    "output_writes": "output_write",
}


def layer_access_counts(
    mapping: LayerMapping, spec: AcceleratorSpec, config: CrossbarConfig
) -> AccessCounts:
    """Access counts of one layer under the accelerator's data-movement policy."""
    if spec.style == "time":
        return timely_access_counts(mapping, config)
    return voltage_domain_access_counts(mapping, config, spec.dac_bits)


@dataclass(frozen=True)
class LayerEstimate:
    """Energy/latency estimate of one layer on one accelerator."""

    name: str
    kind: str
    crossbars: int
    utilization: float
    macs: int
    counts: AccessCounts
    energy_breakdown_pj: Dict[str, float]
    latency_ns: float

    @property
    def energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())


@dataclass(frozen=True)
class NetworkEstimate:
    """Whole-network estimate of one accelerator configuration.

    ``pipelined_latency_ns`` is populated when the estimate was made with
    ``pipelined=True``: the single-image latency under cross-layer
    pipelining (pipeline fill plus bottleneck drain) instead of the
    sequential layer-by-layer sum.
    """

    model: str
    accelerator: str
    layers: List[LayerEstimate]
    area_mm2: float
    pipelined_latency_ns: Optional[float] = None

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def total_latency_ns(self) -> float:
        return sum(layer.latency_ns for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_crossbars(self) -> int:
        return sum(layer.crossbars for layer in self.layers)

    @property
    def total_operations(self) -> int:
        return 2 * self.total_macs

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency: 1 op/pJ == 1 TOPS/W."""
        return self.total_operations / self.total_energy_pj

    @property
    def gops(self) -> float:
        """Throughput on one image: ops per nanosecond == GOPS."""
        return self.total_operations / self.total_latency_ns

    @property
    def effective_latency_ns(self) -> float:
        """Pipelined latency when estimated, else the sequential sum."""
        if self.pipelined_latency_ns is not None:
            return self.pipelined_latency_ns
        return self.total_latency_ns

    @property
    def pipelined_gops(self) -> Optional[float]:
        """Throughput under cross-layer pipelining (None when not estimated)."""
        if self.pipelined_latency_ns is None:
            return None
        return self.total_operations / self.pipelined_latency_ns

    def energy_breakdown_pj(self) -> Dict[str, float]:
        """Per-component energy totals over the whole network."""
        totals: Dict[str, float] = {}
        for layer in self.layers:
            for component, energy in layer.energy_breakdown_pj.items():
                totals[component] = totals.get(component, 0.0) + energy
        return totals

    def by_name(self) -> Dict[str, LayerEstimate]:
        return {layer.name: layer for layer in self.layers}


def estimate_layer(
    mapping: LayerMapping, spec: AcceleratorSpec, config: CrossbarConfig
) -> LayerEstimate:
    """Price one mapped layer on one accelerator configuration."""
    counts = layer_access_counts(mapping, spec, config)
    breakdown: Dict[str, float] = {}
    for count_field, event in _EVENT_FIELDS.items():
        count = getattr(counts, count_field)
        component = spec.event_specs[event]
        if count and component.energy_fj:
            breakdown[component.name] = (
                breakdown.get(component.name, 0.0) + count * component.energy_pj
            )
    latency = mapping.output_positions * spec.input_slices(config) * spec.cycle_time_ns
    return LayerEstimate(
        name=mapping.name,
        kind=mapping.kind,
        crossbars=mapping.crossbars,
        utilization=mapping.utilization(config),
        macs=mapping.macs,
        counts=counts,
        energy_breakdown_pj=breakdown,
        latency_ns=latency,
    )


def pipelined_latency_ns(
    layers: Sequence[LayerEstimate], spec: AcceleratorSpec, config: CrossbarConfig
) -> float:
    """Single-image latency under cross-layer pipelining.

    All layers' crossbars are resident (weights stationary), so layer
    ``l+1`` starts as soon as layer ``l`` emits its first output position:
    the image costs one position step per non-bottleneck layer (pipeline
    fill) plus the full latency of the slowest layer (the drain).
    """
    if not layers:
        return 0.0
    step = spec.input_slices(config) * spec.cycle_time_ns
    return (len(layers) - 1) * step + max(layer.latency_ns for layer in layers)


def estimate_network(
    network: Network,
    spec: Optional[AcceleratorSpec] = None,
    config: Optional[CrossbarConfig] = None,
    *,
    ctx: Optional[SimContext] = None,
    pipelined: bool = False,
) -> NetworkEstimate:
    """Price every compute layer of ``network`` on one accelerator.

    Either pass an explicit ``(spec, config)`` pair, or a ``ctx`` whose
    architecture and accelerator choice supply both.
    """
    if ctx is not None:
        spec = spec or ctx.accelerator_spec()
        config = config or ctx.arch
    if spec is None:
        raise ValueError("estimate_network needs an AcceleratorSpec or a ctx")
    config = config if config is not None else CrossbarConfig()
    mapping = map_network(network, config)
    layers = [estimate_layer(layer, spec, config) for layer in mapping]
    area_mm2 = mapping.total_crossbars * spec.area_per_crossbar_um2(config) / 1e6
    return NetworkEstimate(
        model=network.name,
        accelerator=spec.name,
        layers=layers,
        area_mm2=area_mm2,
        pipelined_latency_ns=(
            pipelined_latency_ns(layers, spec, config) if pipelined else None
        ),
    )


def compare_accelerators(
    network: Network,
    specs: Sequence[AcceleratorSpec] = (),
    config: Optional[CrossbarConfig] = None,
    *,
    pipelined: bool = False,
) -> List[NetworkEstimate]:
    """Estimate ``network`` on every configuration (default: the paper's three)."""
    config = config if config is not None else CrossbarConfig()
    specs = list(specs) or default_configs(config)
    return [
        estimate_network(network, spec, config, pipelined=pipelined) for spec in specs
    ]
