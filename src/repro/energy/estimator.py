"""Chip-level energy / latency / area estimation.

The estimator rolls a crossbar mapping (:mod:`repro.mapping`) and the
per-accelerator access counts (:mod:`repro.mapping.access_counts`) into
per-layer and per-network totals, pricing every event with the
:class:`repro.circuits.components.ComponentSpec` records of an
:class:`repro.energy.tables.AcceleratorSpec`.

Modelling assumptions (deliberately simple, matching the paper's own
system-level methodology):

* weights are stationary — every layer owns its crossbars, all tiles of a
  layer operate in parallel, and a layer's latency is its number of output
  positions times the input slices per position times the cycle time;
* network latency is the sum of layer latencies (one image, no cross-layer
  pipelining), throughput is total operations over that latency;
* energy efficiency is total operations over total energy (TOPS/W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.mapping.access_counts import (
    AccessCounts,
    timely_access_counts,
    voltage_domain_access_counts,
)
from repro.mapping.crossbar_mapping import CrossbarConfig, LayerMapping, map_network
from repro.energy.tables import AcceleratorSpec, default_configs
from repro.nn.network import Network

#: AccessCounts field -> event-spec key priced against it
_EVENT_FIELDS: Dict[str, str] = {
    "input_reads": "input_read",
    "input_conversions": "input_conversion",
    "input_forwards": "input_forward",
    "crossbar_ops": "crossbar_op",
    "partial_sum_merges": "partial_sum_merge",
    "partial_sum_buffer_accesses": "partial_sum_buffer_access",
    "output_conversions": "output_conversion",
    "output_writes": "output_write",
}


def layer_access_counts(
    mapping: LayerMapping, spec: AcceleratorSpec, config: CrossbarConfig
) -> AccessCounts:
    """Access counts of one layer under the accelerator's data-movement policy."""
    if spec.style == "time":
        return timely_access_counts(mapping, config)
    return voltage_domain_access_counts(mapping, config, spec.dac_bits)


@dataclass(frozen=True)
class LayerEstimate:
    """Energy/latency estimate of one layer on one accelerator."""

    name: str
    kind: str
    crossbars: int
    utilization: float
    macs: int
    counts: AccessCounts
    energy_breakdown_pj: Dict[str, float]
    latency_ns: float

    @property
    def energy_pj(self) -> float:
        return sum(self.energy_breakdown_pj.values())


@dataclass(frozen=True)
class NetworkEstimate:
    """Whole-network estimate of one accelerator configuration."""

    model: str
    accelerator: str
    layers: List[LayerEstimate]
    area_mm2: float

    @property
    def total_energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def total_latency_ns(self) -> float:
        return sum(layer.latency_ns for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_crossbars(self) -> int:
        return sum(layer.crossbars for layer in self.layers)

    @property
    def total_operations(self) -> int:
        return 2 * self.total_macs

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency: 1 op/pJ == 1 TOPS/W."""
        return self.total_operations / self.total_energy_pj

    @property
    def gops(self) -> float:
        """Throughput on one image: ops per nanosecond == GOPS."""
        return self.total_operations / self.total_latency_ns

    def energy_breakdown_pj(self) -> Dict[str, float]:
        """Per-component energy totals over the whole network."""
        totals: Dict[str, float] = {}
        for layer in self.layers:
            for component, energy in layer.energy_breakdown_pj.items():
                totals[component] = totals.get(component, 0.0) + energy
        return totals

    def by_name(self) -> Dict[str, LayerEstimate]:
        return {layer.name: layer for layer in self.layers}


def estimate_layer(
    mapping: LayerMapping, spec: AcceleratorSpec, config: CrossbarConfig
) -> LayerEstimate:
    """Price one mapped layer on one accelerator configuration."""
    counts = layer_access_counts(mapping, spec, config)
    breakdown: Dict[str, float] = {}
    for count_field, event in _EVENT_FIELDS.items():
        count = getattr(counts, count_field)
        component = spec.event_specs[event]
        if count and component.energy_fj:
            breakdown[component.name] = (
                breakdown.get(component.name, 0.0) + count * component.energy_pj
            )
    latency = mapping.output_positions * spec.input_slices(config) * spec.cycle_time_ns
    return LayerEstimate(
        name=mapping.name,
        kind=mapping.kind,
        crossbars=mapping.crossbars,
        utilization=mapping.utilization(config),
        macs=mapping.macs,
        counts=counts,
        energy_breakdown_pj=breakdown,
        latency_ns=latency,
    )


def estimate_network(
    network: Network,
    spec: AcceleratorSpec,
    config: CrossbarConfig = CrossbarConfig(),
) -> NetworkEstimate:
    """Price every compute layer of ``network`` on one accelerator."""
    mapping = map_network(network, config)
    layers = [estimate_layer(layer, spec, config) for layer in mapping]
    area_mm2 = mapping.total_crossbars * spec.area_per_crossbar_um2(config) / 1e6
    return NetworkEstimate(
        model=network.name, accelerator=spec.name, layers=layers, area_mm2=area_mm2
    )


def compare_accelerators(
    network: Network,
    specs: Sequence[AcceleratorSpec] = (),
    config: CrossbarConfig = CrossbarConfig(),
) -> List[NetworkEstimate]:
    """Estimate ``network`` on every configuration (default: the paper's three)."""
    specs = list(specs) or default_configs(config)
    return [estimate_network(network, spec, config) for spec in specs]
