"""Chip-level energy / latency / area models.

* :mod:`repro.energy.tables` — :class:`~repro.circuits.components.ComponentSpec`
  records (Table II of the paper) and the three accelerator configurations:
  TIMELY (time-domain, ALB-buffered), PRIME-like and ISAAC-like
  (voltage-domain),
* :mod:`repro.energy.estimator` — rolls a crossbar mapping plus access
  counts into per-layer and per-network energy (pJ), latency (ns) and
  area (mm^2).

The comparison CLI lives in :mod:`repro.sim` (``python -m repro.sim``).
"""

from repro.energy.estimator import (
    LayerEstimate,
    NetworkEstimate,
    compare_accelerators,
    estimate_layer,
    estimate_network,
    layer_access_counts,
    pipelined_latency_ns,
)
from repro.energy.tables import (
    AcceleratorSpec,
    default_configs,
    isaac_like_config,
    prime_like_config,
    timely_config,
)

__all__ = [
    "AcceleratorSpec",
    "timely_config",
    "prime_like_config",
    "isaac_like_config",
    "default_configs",
    "LayerEstimate",
    "NetworkEstimate",
    "estimate_layer",
    "estimate_network",
    "compare_accelerators",
    "layer_access_counts",
    "pipelined_latency_ns",
]
