"""Noise, variation and error-budget models.

Section V of the paper discusses the accuracy implications of TIMELY's analog
data movement: every X-subBuf adds a small timing error ``eps``; ``n`` cascaded
X-subBufs accumulate an error of ``sqrt(n) * eps`` (random-walk accumulation,
citing the Vernier delay-line analysis of [20]); the design budgets a 40 ps
margin per 50 ps unit delay and limits the cascade depth to 12 so that
``sqrt(12) * eps`` stays inside the margin.

The models here are deliberately simple — zero-mean Gaussians with configurable
standard deviation — because that is exactly the error model the paper's own
system-level simulation uses ("the errors follow Gaussian noise distribution").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def cascaded_buffer_error(n_buffers: int, epsilon: float) -> float:
    """Accumulated RMS error of ``n_buffers`` cascaded analog buffers.

    Independent zero-mean per-buffer errors add in quadrature, giving
    ``sqrt(n) * eps`` (Section V / [20] of the paper).
    """
    if n_buffers < 0:
        raise ValueError("n_buffers must be non-negative")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return math.sqrt(n_buffers) * epsilon


@dataclass(frozen=True)
class NoiseBudget:
    """The timing-error budget of a TIMELY sub-Chip row.

    Attributes mirror the numbers in Section V: a 50 ps unit delay, a margin of
    40 ps per unit delay, up to 12 cascaded X-subBufs, and a per-buffer error
    ``epsilon_ps``.
    """

    unit_delay_ps: float = 50.0
    margin_ps_per_unit: float = 40.0
    max_cascaded_bufs: int = 12
    epsilon_ps: float = 5.0
    input_bits: int = 8

    @property
    def total_margin_ps(self) -> float:
        """Design margin over the full input dynamic range (40 ps x 2^8)."""
        return self.margin_ps_per_unit * (2 ** self.input_bits)

    @property
    def accumulated_error_ps(self) -> float:
        """Worst-case accumulated error over the full dynamic range.

        The per-buffer error scales with the signal (one epsilon per unit
        delay step), matching the paper's ``sqrt(12) * eps < 20 x 2^8 ps``
        bound.
        """
        return cascaded_buffer_error(self.max_cascaded_bufs, self.epsilon_ps) * (
            2 ** self.input_bits
        )

    def within_margin(self) -> bool:
        """True when the accumulated error fits inside the design margin."""
        return self.accumulated_error_ps <= self.total_margin_ps


@dataclass
class HardwareNoiseConfig:
    """Standard deviations of the per-component Gaussian error models.

    All timing errors are expressed as a fraction of the DTC unit delay; all
    current/voltage errors are expressed as a fraction of the full-scale
    signal.  Setting every sigma to zero recovers the ideal behavioural model.
    """

    x_subbuf_sigma: float = 0.02
    p_subbuf_sigma: float = 0.005
    i_adder_sigma: float = 0.002
    comparator_sigma: float = 0.002
    dtc_sigma: float = 0.01
    tdc_sigma: float = 0.01
    reram_conductance_sigma: float = 0.01
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        for name in (
            "x_subbuf_sigma",
            "p_subbuf_sigma",
            "i_adder_sigma",
            "comparator_sigma",
            "dtc_sigma",
            "tdc_sigma",
            "reram_conductance_sigma",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def ideal(cls) -> "HardwareNoiseConfig":
        """A configuration with all noise sources disabled."""
        return cls.scaled(0.0)

    @classmethod
    def scaled(cls, scale: float, seed: Optional[int] = None) -> "HardwareNoiseConfig":
        """Every default sigma multiplied by ``scale`` (0 = ideal hardware).

        This is the one-knob noise model the CLI and Monte-Carlo sweeps use:
        the *ratios* between the per-component sigmas stay at their
        Section-V defaults while the overall severity scales.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        base = cls(seed=seed)
        return cls(
            x_subbuf_sigma=base.x_subbuf_sigma * scale,
            p_subbuf_sigma=base.p_subbuf_sigma * scale,
            i_adder_sigma=base.i_adder_sigma * scale,
            comparator_sigma=base.comparator_sigma * scale,
            dtc_sigma=base.dtc_sigma * scale,
            tdc_sigma=base.tdc_sigma * scale,
            reram_conductance_sigma=base.reram_conductance_sigma * scale,
            seed=seed,
        )

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: int) -> None:
        """Re-seed the generator (used to make Monte-Carlo runs reproducible)."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def sample(self, sigma: float, shape=None) -> np.ndarray:
        """Draw zero-mean Gaussian samples with the given sigma.

        ``shape`` may be any array shape, so one call can cover a whole
        packed conductance tensor or a full batch of input delays; the
        vectorized engine paths rely on this to draw per-layer (rather than
        per-tile) without falling back to Python loops.
        """
        if sigma == 0.0:
            return np.zeros(shape) if shape is not None else np.array(0.0)
        return self._rng.normal(0.0, sigma, size=shape)

    def apply_conductance_variation(self, conductances: np.ndarray) -> np.ndarray:
        """Multiplicative programming variation on a conductance tensor.

        One Gaussian draw of the full tensor shape, applied as
        ``G * (1 + eps)`` and clipped at zero — shared by the per-tile
        :meth:`repro.circuits.reram.ReRAMCrossbar.program` path and the
        packed per-slice tensors of :class:`repro.engine.packed.PackedMatmul`
        so both backends model the same physics (the draws themselves differ
        because the tensor shapes do; see the engine docs).
        """
        if self.reram_conductance_sigma <= 0:
            return conductances
        variation = self.sample(self.reram_conductance_sigma, conductances.shape)
        return np.clip(conductances * (1.0 + variation), 0.0, None)
