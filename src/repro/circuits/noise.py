"""Noise, variation and error-budget models.

Section V of the paper discusses the accuracy implications of TIMELY's analog
data movement: every X-subBuf adds a small timing error ``eps``; ``n`` cascaded
X-subBufs accumulate an error of ``sqrt(n) * eps`` (random-walk accumulation,
citing the Vernier delay-line analysis of [20]); the design budgets a 40 ps
margin per 50 ps unit delay and limits the cascade depth to 12 so that
``sqrt(12) * eps`` stays inside the margin.

The models here are deliberately simple — zero-mean Gaussians with configurable
standard deviation — because that is exactly the error model the paper's own
system-level simulation uses ("the errors follow Gaussian noise distribution").

Seeding is **stateless per salt**: a *salted* draw is produced by a
generator derived on the spot from ``(seed, salt)``, so two consumers of
the same config can never perturb each other's draws — results are
independent of how many other executors, crossbars or chains were
constructed first, which is what makes parallel and resumable Monte-Carlo
sweeps reproducible.  Call sites that need a *sequence* of decorrelated
draws (a tile programming pass, the per-call read-out jitter of one chain)
take a :class:`NoiseStream` scoped by a salt identifying the use site; the
stream's generator is itself derived from ``(seed, salt)``, so equal salts
replay equal sequences.  The functional engine uses scoped streams
exclusively.  *Unsalted* draws — the circuit blocks' legacy
``noise.sample(sigma, shape)`` path when handed a bare config — consume a
per-config fallback stream (itself derived from the seed), so successive
hops/slices/calls stay decorrelated as the Gaussian error model requires;
that fallback never backs any engine draw.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

#: a salt part: plain ints and strings are both accepted and hashed stably
SaltPart = Union[int, str]

#: an array shape accepted by :meth:`HardwareNoiseConfig.sample` — an int, a
#: full shape tuple, or ``None`` for a scalar draw
ShapeArg = Optional[Union[int, Tuple[int, ...]]]

_MASK64 = (1 << 64) - 1


def _entropy(part: SaltPart) -> int:
    """One salt part as a non-negative integer, stable across processes.

    Python's builtin ``hash()`` is randomised per process for strings, so
    string parts go through SHA-256 instead — the sweep pool relies on a
    worker process deriving exactly the seed the parent would.
    """
    if isinstance(part, (int, np.integer)):
        return int(part) & _MASK64
    if isinstance(part, str):
        return int.from_bytes(hashlib.sha256(part.encode("utf-8")).digest()[:8], "little")
    raise TypeError(f"salt parts must be ints or strings, got {type(part).__name__}")


def stable_seed(*parts: SaltPart) -> int:
    """A deterministic 64-bit seed derived from ints/strings.

    Stable across processes and Python versions (no builtin ``hash()``), so
    per-trial seeds derived in a parent process match the ones a pool worker
    would derive.
    """
    sequence = np.random.SeedSequence([_entropy(part) for part in parts])
    return int(sequence.generate_state(1, np.uint64)[0])


def cascaded_buffer_error(n_buffers: int, epsilon: float) -> float:
    """Accumulated RMS error of ``n_buffers`` cascaded analog buffers.

    Independent zero-mean per-buffer errors add in quadrature, giving
    ``sqrt(n) * eps`` (Section V / [20] of the paper).
    """
    if n_buffers < 0:
        raise ValueError("n_buffers must be non-negative")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return math.sqrt(n_buffers) * epsilon


@dataclass(frozen=True)
class NoiseBudget:
    """The timing-error budget of a TIMELY sub-Chip row.

    Attributes mirror the numbers in Section V: a 50 ps unit delay, a margin of
    40 ps per unit delay, up to 12 cascaded X-subBufs, and a per-buffer error
    ``epsilon_ps``.
    """

    unit_delay_ps: float = 50.0
    margin_ps_per_unit: float = 40.0
    max_cascaded_bufs: int = 12
    epsilon_ps: float = 5.0
    input_bits: int = 8

    @property
    def total_margin_ps(self) -> float:
        """Design margin over the full input dynamic range (40 ps x 2^8)."""
        return self.margin_ps_per_unit * (2 ** self.input_bits)

    @property
    def accumulated_error_ps(self) -> float:
        """Worst-case accumulated error over the full dynamic range.

        The per-buffer error scales with the signal (one epsilon per unit
        delay step), so the Section-V design point requires
        ``sqrt(12) * eps * 2^8 <= 40 x 2^8 ps`` — the cascade error must stay
        inside the 40 ps-per-unit-delay margin, both sides scaled by the
        2^8-step dynamic range.
        """
        return cascaded_buffer_error(self.max_cascaded_bufs, self.epsilon_ps) * (
            2 ** self.input_bits
        )

    def within_margin(self) -> bool:
        """True when the accumulated error fits inside the design margin."""
        return self.accumulated_error_ps <= self.total_margin_ps


def _conductance_variation(
    sampler: Callable[[float, Tuple[int, ...]], np.ndarray],
    sigma: float,
    conductances: np.ndarray,
) -> np.ndarray:
    """Shared ``G * (1 + eps)`` programming-variation kernel, clipped at zero.

    The draw itself always happens in float64 (so the realisation is
    bit-identical regardless of the storage precision), then the product is
    cast back to the input's dtype — a float32 conductance tensor stays
    float32 instead of silently doubling under the noise multiply.
    """
    if sigma <= 0:
        return conductances
    variation = sampler(sigma, conductances.shape)
    noisy = (conductances * (1.0 + variation)).astype(conductances.dtype, copy=False)
    return np.clip(noisy, 0.0, None, out=noisy)


@dataclass
class HardwareNoiseConfig:
    """Standard deviations of the per-component Gaussian error models.

    All timing errors are expressed as a fraction of the DTC unit delay; all
    current/voltage errors are expressed as a fraction of the full-scale
    signal.  Setting every sigma to zero recovers the ideal behavioural model.

    The config is a plain picklable dataclass: a *salted* :meth:`sample`
    derives a fresh generator from ``(seed, salt)`` per call, so identical
    calls return identical draws and no consumer can perturb another's
    stream — use :meth:`stream` where a use site needs a sequence of
    decorrelated draws (the engine scopes one per layer/tile).  An
    *unsalted* :meth:`sample` — the circuit blocks' legacy path when given
    the bare config — draws from a lazily created fallback stream derived
    from the seed, keeping successive calls (cascade hops, MSB/LSB slices,
    repeated chain computes) decorrelated exactly as before; the fallback is
    excluded from equality and reset by :meth:`reseed`.
    """

    x_subbuf_sigma: float = 0.02
    p_subbuf_sigma: float = 0.005
    i_adder_sigma: float = 0.002
    comparator_sigma: float = 0.002
    dtc_sigma: float = 0.01
    tdc_sigma: float = 0.01
    reram_conductance_sigma: float = 0.01
    seed: Optional[int] = 0
    _fallback: Optional["NoiseStream"] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        for name in (
            "x_subbuf_sigma",
            "p_subbuf_sigma",
            "i_adder_sigma",
            "comparator_sigma",
            "dtc_sigma",
            "tdc_sigma",
            "reram_conductance_sigma",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        # historical callers passed seed=None for "don't care"; stateless
        # seeding is always deterministic, so normalise to the default seed
        if self.seed is None:
            self.seed = 0

    @classmethod
    def ideal(cls) -> "HardwareNoiseConfig":
        """A configuration with all noise sources disabled."""
        return cls.scaled(0.0)

    @classmethod
    def scaled(cls, scale: float, seed: Optional[int] = 0) -> "HardwareNoiseConfig":
        """Every default sigma multiplied by ``scale`` (0 = ideal hardware).

        This is the one-knob noise model the CLI and Monte-Carlo sweeps use:
        the *ratios* between the per-component sigmas stay at their
        Section-V defaults while the overall severity scales.
        """
        if scale < 0:
            raise ValueError("scale must be non-negative")
        base = cls(seed=seed)
        return cls(
            x_subbuf_sigma=base.x_subbuf_sigma * scale,
            p_subbuf_sigma=base.p_subbuf_sigma * scale,
            i_adder_sigma=base.i_adder_sigma * scale,
            comparator_sigma=base.comparator_sigma * scale,
            dtc_sigma=base.dtc_sigma * scale,
            tdc_sigma=base.tdc_sigma * scale,
            reram_conductance_sigma=base.reram_conductance_sigma * scale,
            seed=seed,
        )

    # -- stateless derivation --------------------------------------------------
    def derived_rng(self, *salt: SaltPart) -> np.random.Generator:
        """A fresh generator deterministically derived from ``(seed, salt)``.

        Equal ``(seed, salt)`` pairs always produce identical generators —
        independent of construction order, process boundaries, or any other
        draws taken from this config.
        """
        entropy = [_entropy(self.seed)] + [_entropy(part) for part in salt]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def stream(self, *salt: SaltPart) -> "NoiseStream":
        """A :class:`NoiseStream` scoped to ``salt`` for sequential draws."""
        return NoiseStream(self, salt)

    def reseed(self, seed: int) -> None:
        """Change the seed (used to decorrelate Monte-Carlo trials)."""
        self.seed = seed
        self._fallback = None

    def sample(
        self,
        sigma: float,
        shape: ShapeArg = None,
        salt: Union[SaltPart, Tuple[SaltPart, ...]] = (),
    ) -> np.ndarray:
        """Draw zero-mean Gaussian samples with the given sigma.

        A *salted* draw is a pure function of ``(seed, salt, shape)`` —
        identical calls return identical samples, so distinct use sites
        decorrelate by passing distinct ``salt`` values (or scoping a
        :class:`NoiseStream`).  An *unsalted* draw consumes this config's
        fallback stream instead: successive calls return successive
        (decorrelated) samples, so circuit blocks handed the bare config —
        a 12-hop X-subBuf cascade, an MSB/LSB sub-ranging pair — accumulate
        independent per-step errors rather than one repeated draw.
        ``shape`` may be any array shape, so one call can cover a whole
        packed conductance tensor or a full batch of input delays.
        """
        if sigma == 0.0:
            return np.zeros(shape) if shape is not None else np.array(0.0)
        parts = salt if isinstance(salt, tuple) else (salt,)
        if not parts:
            if self._fallback is None:
                self._fallback = self.stream("unsalted")
            return self._fallback.sample(sigma, shape)
        return self.derived_rng(*parts).normal(0.0, sigma, size=shape)

    def apply_conductance_variation(self, conductances: np.ndarray) -> np.ndarray:
        """Multiplicative programming variation on a conductance tensor.

        One Gaussian draw of the full tensor shape, applied as
        ``G * (1 + eps)`` and clipped at zero — shared by the per-tile
        :meth:`repro.circuits.reram.ReRAMCrossbar.program` path and the
        packed per-slice tensors of :class:`repro.engine.packed.PackedMatmul`
        so both backends model the same physics (the draws themselves differ
        because the tensor shapes do; see the engine docs).
        """
        return _conductance_variation(
            self.sample, self.reram_conductance_sigma, conductances
        )


class NoiseStream:
    """Sequential noise draws scoped to one use site.

    A stream carries a reference to its :class:`HardwareNoiseConfig` (so the
    per-component sigmas resolve as attributes, making streams drop-in
    replacements wherever the circuit blocks accept a noise config) plus a
    private generator derived from ``(config.seed, salt)``.  Successive
    :meth:`sample` calls consume the generator — decorrelated draws within
    the scope — while two streams built with equal salts from equal configs
    replay identical sequences, independent of anything else drawn anywhere.

    The functional engine scopes one stream per programmed tile / packed
    layer, which is what makes two executors built from the same
    :class:`repro.context.SimContext` produce identical noisy outputs.
    """

    __slots__ = ("_config", "_salt", "_rng")

    def __init__(
        self, config: HardwareNoiseConfig, salt: Tuple[SaltPart, ...] = ()
    ) -> None:
        self._config = config
        self._salt = tuple(salt)
        self._rng = config.derived_rng(*self._salt)

    def __getattr__(self, name: str) -> Any:
        # sigma fields (and anything else public) resolve on the config;
        # underscore names must fail fast so unpickling cannot recurse
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._config, name)

    def __getstate__(
        self,
    ) -> Tuple[HardwareNoiseConfig, Tuple[SaltPart, ...], np.random.Generator]:
        return (self._config, self._salt, self._rng)

    def __setstate__(
        self,
        state: Tuple[HardwareNoiseConfig, Tuple[SaltPart, ...], np.random.Generator],
    ) -> None:
        self._config, self._salt, self._rng = state

    @property
    def salt(self) -> Tuple[SaltPart, ...]:
        return self._salt

    def stream(self, *salt: SaltPart) -> "NoiseStream":
        """A sub-stream scoped by extending this stream's salt."""
        return NoiseStream(self._config, self._salt + salt)

    def sample(self, sigma: float, shape: ShapeArg = None) -> np.ndarray:
        """Draw from this scope's sequence (zero sigma consumes no entropy)."""
        if sigma == 0.0:
            return np.zeros(shape) if shape is not None else np.array(0.0)
        return self._rng.normal(0.0, sigma, size=shape)

    def apply_conductance_variation(self, conductances: np.ndarray) -> np.ndarray:
        """Scoped counterpart of
        :meth:`HardwareNoiseConfig.apply_conductance_variation`."""
        return _conductance_variation(
            self.sample, self._config.reram_conductance_sigma, conductances
        )
