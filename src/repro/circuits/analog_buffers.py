"""Analog local buffers (ALBs) and the column read-out chain.

These are the blocks that let TIMELY keep inputs and partial sums in the
analog domain inside a sub-Chip (Fig. 6 of the paper):

* :class:`XSubBuf` — a time-signal latch (two cross-coupled inverters plus an
  output inverter) that copies the input delay to its output; it sits between
  horizontally adjacent crossbars and forwards the time-domain inputs.
* :class:`PSubBuf` — an NMOS current mirror that copies a column's partial-sum
  current towards the I-adder; it sits between vertically adjacent crossbars.
* :class:`CurrentAdder` — sums the mirrored column currents of all crossbars
  in one sub-Chip column (KCL at a single node).
* :class:`ChargingUnit` — integrates the summed current onto a capacitor
  (phase I) and then applies a constant current (phase II) until the
  comparator threshold is reached.
* :class:`Comparator` — detects the threshold crossing, producing the output
  time signal that the TDC digitises.

All behavioural methods are exact apart from the optional Gaussian errors
configured through :class:`repro.circuits.noise.HardwareNoiseConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.circuits.noise import HardwareNoiseConfig

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class XSubBuf:
    """Time-domain analog local buffer for inputs (the "X" in X-subBuf).

    The latch copies the input delay to its output; the only non-ideality is a
    small timing error per hop.  X-subBufs are reset every pipeline cycle via
    the ``phi`` signal, which is why their error does not accumulate across
    cycles — only across the (bounded) horizontal cascade within one cycle.
    """

    energy_fj: float = 0.62
    area_um2: float = 5.0
    unit_delay_s: float = 50e-12

    def latch(self, delay_s: ArrayLike, noise: Optional[HardwareNoiseConfig] = None) -> ArrayLike:
        """Copy a time signal to the buffer output, adding per-hop jitter."""
        delays = np.asarray(delay_s, dtype=float)
        if np.any(delays < 0):
            raise ValueError("time signals must be non-negative")
        if noise is not None and noise.x_subbuf_sigma > 0:
            delays = delays + noise.sample(
                noise.x_subbuf_sigma * self.unit_delay_s, np.shape(delays)
            )
            delays = np.clip(delays, 0.0, None)
        if np.isscalar(delay_s):
            return float(delays)
        return delays

    def cascade(
        self,
        delay_s: ArrayLike,
        hops: int,
        noise: Optional[HardwareNoiseConfig] = None,
    ) -> ArrayLike:
        """Pass a time signal through ``hops`` consecutive X-subBufs."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        result = delay_s
        for _ in range(hops):
            result = self.latch(result, noise)
        return result


@dataclass(frozen=True)
class PSubBuf:
    """Current-mirror analog local buffer for partial sums (the "P" in P-subBuf)."""

    energy_fj: float = 2.3
    area_um2: float = 5.0

    def mirror(self, current_a: ArrayLike, noise: Optional[HardwareNoiseConfig] = None) -> ArrayLike:
        """Copy a current to the buffer output with a small gain error."""
        currents = np.asarray(current_a, dtype=float)
        if noise is not None and noise.p_subbuf_sigma > 0:
            gain_error = noise.sample(noise.p_subbuf_sigma, np.shape(currents))
            currents = currents * (1.0 + gain_error)
        if np.isscalar(current_a):
            return float(currents)
        return currents


@dataclass(frozen=True)
class CurrentAdder:
    """I-adder: sums the partial-sum currents of one sub-Chip column."""

    energy_fj: float = 36.8
    area_um2: float = 40.0

    def sum(
        self,
        currents_a: Sequence[ArrayLike],
        noise: Optional[HardwareNoiseConfig] = None,
    ) -> ArrayLike:
        """Sum currents arriving from the P-subBufs of one sub-Chip column."""
        stacked = np.asarray(list(currents_a), dtype=float)
        total = stacked.sum(axis=0)
        if noise is not None and noise.i_adder_sigma > 0:
            scale = np.max(np.abs(total)) if np.size(total) else 0.0
            total = total + noise.sample(noise.i_adder_sigma * max(scale, 1e-30), np.shape(total))
        if np.isscalar(currents_a[0]) and np.ndim(total) == 0:
            return float(total)
        return total


@dataclass(frozen=True)
class ChargingUnit:
    """Capacitor-charging block implementing the two-phase scheme of Eq. 2."""

    capacitance_f: float = 1e-12
    v_dd: float = 1.2
    energy_fj: float = 41.7
    area_um2: float = 40.0

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if self.v_dd <= 0:
            raise ValueError("V_DD must be positive")

    def charge_to_voltage(self, charge_c: ArrayLike) -> ArrayLike:
        """Voltage reached after integrating ``charge_c`` coulombs (V = Q/C)."""
        charge = np.asarray(charge_c, dtype=float)
        voltage = charge / self.capacitance_f
        if np.isscalar(charge_c):
            return float(voltage)
        return voltage

    def phase2_time_to_threshold(
        self, v_phase1: ArrayLike, v_threshold: float, constant_current_a: float
    ) -> ArrayLike:
        """Phase-II time needed to reach the comparator threshold.

        ``T_x = (V_th - V_phase1) * C / I_c``.  A larger phase-I charge (a
        larger dot product) leaves less to charge in phase II, so the
        threshold-crossing happens earlier; the output time of the column is
        defined as ``T~ - T_x`` (Fig. 6(e)(g)).
        """
        if constant_current_a <= 0:
            raise ValueError("phase-II current must be positive")
        v1 = np.asarray(v_phase1, dtype=float)
        remaining = np.clip(v_threshold - v1, 0.0, None)
        times = remaining * self.capacitance_f / constant_current_a
        if np.isscalar(v_phase1):
            return float(times)
        return times


@dataclass(frozen=True)
class Comparator:
    """Threshold comparator producing the time-domain output edge."""

    v_threshold: float = 0.6
    energy_fj: float = 0.0  # included in the charging-unit figure of Table II
    area_um2: float = 0.0

    def crosses(self, voltage: ArrayLike, noise: Optional[HardwareNoiseConfig] = None) -> ArrayLike:
        """True where the input voltage exceeds the (possibly noisy) threshold."""
        voltages = np.asarray(voltage, dtype=float)
        threshold = self.v_threshold
        if noise is not None and noise.comparator_sigma > 0:
            threshold = threshold + float(noise.sample(noise.comparator_sigma * self.v_threshold))
        result = voltages >= threshold
        if np.isscalar(voltage):
            return bool(result)
        return result
