"""Physical component specification records.

Each physical block in a TIMELY sub-Chip (or in a baseline accelerator) is
described by a :class:`ComponentSpec`: its per-operation energy, its area and
its latency.  The concrete numbers for TIMELY come from Table II of the paper
and are collected in :mod:`repro.energy.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ComponentSpec:
    """Energy / area / latency description of one physical component.

    Attributes
    ----------
    name:
        Component name (e.g. ``"dtc"``, ``"x_subbuf"``).
    energy_fj:
        Energy per activation, in femtojoules.
    area_um2:
        Area per instance, in square micrometres.
    latency_ns:
        Latency per activation, in nanoseconds (0 when it is hidden behind
        another pipeline stage and never on the critical path).
    """

    name: str
    energy_fj: float
    area_um2: float = 0.0
    latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.energy_fj < 0 or self.area_um2 < 0 or self.latency_ns < 0:
            raise ValueError(f"component {self.name!r} has a negative spec value")

    def scaled(self, energy_factor: float = 1.0, area_factor: float = 1.0) -> "ComponentSpec":
        """Return a copy with energy and/or area scaled (used in what-if studies)."""
        return replace(
            self,
            energy_fj=self.energy_fj * energy_factor,
            area_um2=self.area_um2 * area_factor,
        )

    @property
    def energy_pj(self) -> float:
        return self.energy_fj / 1e3

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6
