"""Time-domain dot-product chains (Eq. 2 and the sub-ranging composition).

:class:`TimeDomainDotProduct` wires the behavioural blocks into TIMELY's
two-phase column read-out (Section IV-C, Fig. 6):

1. a DTC turns each input code into a delay ``T_i = d_i * T_del``,
2. (optionally) the delay passes through a cascade of X-subBufs,
3. during phase I every row drives its column cells for ``T_i`` seconds,
   integrating a charge ``Q_j = V_DD * sum_i T_i * G_ij`` on the charging
   capacitor,
4. a reference column of ``G_min`` cells is subtracted, cancelling the
   conductance offset of the "off" level,
5. during phase II a constant current charges the capacitor until the
   comparator threshold is crossed; the threshold-crossing time is the
   time-domain output, proportional to the dot product.

With all noise sources disabled the chain recovers the integer dot product
exactly (up to floating-point rounding); tests compare it against
:meth:`repro.circuits.reram.ReRAMCrossbar.ideal_dot_product`.

:class:`SubRangingDotProduct` maps wide weights (e.g. 8-bit) onto two
crossbars holding the MSB and LSB halves (e.g. 4-bit cells) and recombines
the two partial dot products digitally, mirroring the sub-ranging design of
Section IV-C.

All inputs may be a single ``(rows,)`` code vector or a ``(batch, rows)``
matrix; the batched path runs one matmul per crossbar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.context import SimContext

from repro.circuits.analog_buffers import ChargingUnit, Comparator, XSubBuf
from repro.circuits.converters import DTC
from repro.circuits.noise import HardwareNoiseConfig
from repro.circuits.reram import ReRAMCellSpec, ReRAMCrossbar
from repro.nn.quantization import split_msb_lsb


class TimeDomainDotProduct:
    """Behavioural model of one time-domain crossbar column read-out.

    Parameters
    ----------
    crossbar:
        The programmed :class:`ReRAMCrossbar` (time-mode operation).
    dtc:
        Input digital-to-time converter.  Its resolution bounds the input
        codes; its unit delay sets the time scale of the whole chain.
    charging_unit, comparator:
        Phase-I/II integration blocks.  The capacitance is rescaled so the
        full-scale phase-I charge reaches exactly the comparator threshold —
        the behavioural analogue of sizing the capacitor for the dynamic
        range of the array.
    x_subbuf, cascade_hops:
        Optional X-subBuf cascade the input delays traverse before reaching
        the crossbar rows (models intra-sub-Chip input forwarding).
    v_dd:
        Supply driving the rows during phase I.
    """

    def __init__(
        self,
        crossbar: ReRAMCrossbar,
        dtc: Optional[DTC] = None,
        charging_unit: Optional[ChargingUnit] = None,
        comparator: Optional[Comparator] = None,
        x_subbuf: Optional[XSubBuf] = None,
        cascade_hops: int = 0,
        v_dd: float = 1.2,
    ):
        if cascade_hops < 0:
            raise ValueError("cascade_hops must be non-negative")
        self.crossbar = crossbar
        self.dtc = dtc or DTC()
        self.comparator = comparator or Comparator()
        self.x_subbuf = x_subbuf or XSubBuf(unit_delay_s=self.dtc.t_del_s)
        self.cascade_hops = cascade_hops
        self.v_dd = v_dd

        cell = crossbar.cell
        # Full-scale net charge: every input at the max code, every cell at the
        # max weight level (offset column already subtracted).
        q_full = (
            v_dd
            * cell.g_step_s
            * (cell.levels - 1)
            * self.dtc.full_scale_s
            * crossbar.rows
        )
        base = charging_unit or ChargingUnit()
        threshold = self.comparator.v_threshold
        # Resize the capacitor so v1 <= v_threshold over the whole dynamic range.
        self.charging_unit = ChargingUnit(
            capacitance_f=q_full / threshold,
            v_dd=v_dd,
            energy_fj=base.energy_fj,
            area_um2=base.area_um2,
        )
        # Phase-II current sized so the full-scale threshold-crossing time
        # equals the input full scale (keeps phase II on the same time axis).
        self.phase2_current_a = q_full / self.dtc.full_scale_s

    @property
    def dot_max(self) -> float:
        """Largest dot product the chain can represent without clipping."""
        return float(
            (self.dtc.levels - 1)
            * (self.crossbar.cell.levels - 1)
            * self.crossbar.rows
        )

    def output_times(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Time-domain column outputs (seconds), proportional to the dot product."""
        delays = self.dtc.convert(codes, noise)
        delays = self.x_subbuf.cascade(delays, self.cascade_hops, noise)
        delays = np.atleast_1d(np.asarray(delays, dtype=float))

        charges = self.crossbar.column_charges(delays, self.v_dd)
        # Reference column of G_min cells cancels the "off"-level offset.
        offset = (
            self.v_dd
            * self.crossbar.cell.g_min_s
            * delays.sum(axis=-1, keepdims=delays.ndim > 1)
        )
        net = np.clip(charges - offset, 0.0, None)

        v1 = self.charging_unit.charge_to_voltage(net)
        t_phase2 = self.charging_unit.phase2_time_to_threshold(
            v1, self.comparator.v_threshold, self.phase2_current_a
        )
        # Output edge position: a larger dot product crosses earlier, so the
        # column's time output is T_full - T_x (Fig. 6(e)(g)).
        return self.dtc.full_scale_s - np.asarray(t_phase2, dtype=float)

    def compute(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Dot-product estimate in integer (input-level x weight-level) units."""
        times = self.output_times(codes, noise)
        lsb_s = self.dtc.full_scale_s / self.dot_max
        return times / lsb_s


class SubRangingDotProduct:
    """Wide-weight dot product via MSB/LSB crossbar pairs (Section IV-C).

    An ``2 * cell_bits``-bit unsigned weight matrix is split with
    :func:`repro.nn.quantization.split_msb_lsb` across two crossbars whose
    cells hold ``cell_bits`` each; the two time-domain partial products are
    recombined digitally as ``msb * 2**cell_bits + lsb``.
    """

    def __init__(
        self,
        weights: np.ndarray,
        rows: int = 256,
        cols: int = 256,
        cell: Optional[ReRAMCellSpec] = None,
        noise: Optional[HardwareNoiseConfig] = None,
        dtc: Optional[DTC] = None,
        v_dd: float = 1.2,
    ):
        self.cell = cell or ReRAMCellSpec()
        self.low_bits = self.cell.bits_per_cell
        self.weight_bits = 2 * self.low_bits

        values = np.asarray(weights, dtype=np.int64)
        if np.any(values < 0) or np.any(values > 2 ** self.weight_bits - 1):
            raise ValueError(
                f"weights must lie in [0, {2 ** self.weight_bits - 1}] for "
                f"sub-ranging over two {self.low_bits}-bit cells"
            )
        msb, lsb = split_msb_lsb(values, self.weight_bits, self.low_bits)

        self.msb_crossbar = ReRAMCrossbar(rows, cols, self.cell, noise)
        self.lsb_crossbar = ReRAMCrossbar(rows, cols, self.cell, noise)
        self.msb_crossbar.program(msb)
        self.lsb_crossbar.program(lsb)

        self.msb_chain = TimeDomainDotProduct(self.msb_crossbar, dtc=dtc, v_dd=v_dd)
        self.lsb_chain = TimeDomainDotProduct(self.lsb_crossbar, dtc=dtc, v_dd=v_dd)

    @classmethod
    def from_context(cls, ctx: "SimContext", weights: np.ndarray) -> "SubRangingDotProduct":
        """Build the MSB/LSB pair from a :class:`repro.context.SimContext`.

        The cell, converter and supply parameters all come from ``ctx.arch``
        and the programming noise from ``ctx.noise``, so the functional
        engine and the analytics price exactly the same hardware.
        """
        return cls(
            weights,
            rows=ctx.arch.rows,
            cols=ctx.arch.cols,
            cell=ctx.arch.cell_spec(),
            noise=ctx.noise,
            dtc=ctx.arch.dtc(),
            v_dd=ctx.arch.v_dd,
        )

    def compute(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Dot product of input codes with the full-width weights."""
        msb = self.msb_chain.compute(codes, noise)
        lsb = self.lsb_chain.compute(codes, noise)
        return msb * (2 ** self.low_bits) + lsb

    def ideal(self, codes: np.ndarray) -> np.ndarray:
        """Exact integer reference for the same full-width weights."""
        msb = self.msb_crossbar.ideal_dot_product(codes)
        lsb = self.lsb_crossbar.ideal_dot_product(codes)
        return msb * (2 ** self.low_bits) + lsb
