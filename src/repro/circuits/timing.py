"""Time-domain dot-product chains (Eq. 2 and the sub-ranging composition).

:class:`TimeDomainDotProduct` wires the behavioural blocks into TIMELY's
two-phase column read-out (Section IV-C, Fig. 6):

1. a DTC turns each input code into a delay ``T_i = d_i * T_del``,
2. (optionally) the delay passes through a cascade of X-subBufs,
3. during phase I every row drives its column cells for ``T_i`` seconds,
   integrating a charge ``Q_j = V_DD * sum_i T_i * G_ij`` on the charging
   capacitor,
4. a reference column of ``G_min`` cells is subtracted, cancelling the
   conductance offset of the "off" level,
5. during phase II a constant current charges the capacitor until the
   comparator threshold is crossed; the threshold-crossing time is the
   time-domain output, proportional to the dot product.

With all noise sources disabled the chain recovers the integer dot product
exactly (up to floating-point rounding); tests compare it against
:meth:`repro.circuits.reram.ReRAMCrossbar.ideal_dot_product`.

:class:`SubRangingDotProduct` maps wide weights (e.g. 8-bit) onto two
crossbars holding the MSB and LSB halves (e.g. 4-bit cells) and recombines
the two partial dot products digitally, mirroring the sub-ranging design of
Section IV-C.

All inputs may be a single ``(rows,)`` code vector or a ``(batch, rows)``
matrix; the batched path runs one matmul per crossbar.

:class:`TimeDomainChainSpec` factors the chain's scalar parameters (full
scale charge, capacitor sizing, phase-II current, LSB) out of the per-tile
objects: within one layer every tile's chain shares them, so the packed
execution backend (:class:`repro.engine.packed.PackedMatmul`) can run the
whole elementwise phase-I/II read-out as one vectorized pass over every
tile, slice and output position at once via :meth:`TimeDomainChainSpec.read_out`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.context import SimContext

from repro.circuits.analog_buffers import ChargingUnit, Comparator, XSubBuf
from repro.circuits.converters import DTC
from repro.circuits.noise import HardwareNoiseConfig
from repro.circuits.reram import ReRAMCellSpec, ReRAMCrossbar
from repro.kernels.dispatch import ReadoutScalars, readout_fused
from repro.nn.quantization import split_msb_lsb


class TimeDomainChainSpec:
    """Scalar parameters of one two-phase time-domain read-out chain.

    These are the quantities :class:`TimeDomainDotProduct` derives from its
    crossbar, DTC and comparator — the full-scale phase-I charge, the
    capacitor sized for it, the phase-II constant current and the output
    LSB.  They depend only on the cell physics, the converter resolution and
    the (full) tile height, so within one mapped layer every tile's chain
    shares the same spec.  That is what lets the packed execution backend
    apply the whole elementwise chain — offset subtraction, clip, phase-I
    integration, phase-II threshold crossing, LSB rescale — in one
    vectorized :meth:`read_out` pass over a stacked charge tensor covering
    every tile, slice, batch position and output column of a layer.
    """

    def __init__(
        self,
        cell: ReRAMCellSpec,
        dtc: DTC,
        rows: int,
        v_dd: float = 1.2,
        v_threshold: Optional[float] = None,
    ):
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.cell = cell
        self.dtc = dtc
        self.rows = rows
        self.v_dd = v_dd
        self.v_threshold = (
            v_threshold if v_threshold is not None else Comparator().v_threshold
        )
        # Full-scale net charge: every input at the max code, every cell at
        # the max weight level (offset column already subtracted).
        self.q_full = (
            v_dd * cell.g_step_s * (cell.levels - 1) * dtc.full_scale_s * rows
        )
        # Capacitor sized so v1 <= v_threshold over the whole dynamic range,
        # phase-II current sized so the full-scale crossing time equals the
        # input full scale (keeps phase II on the same time axis).
        self.capacitance_f = self.q_full / self.v_threshold
        self.phase2_current_a = self.q_full / dtc.full_scale_s
        #: largest dot product the chain represents without clipping
        self.dot_max = float((dtc.levels - 1) * (cell.levels - 1) * rows)
        #: output time per integer dot-product unit
        self.lsb_s = dtc.full_scale_s / self.dot_max
        #: the chain constants as one flat pack for the kernel dispatch
        #: layer; precomputing the two products cannot change a bit (each
        #: is a single IEEE-754 double the chain formed per call anyway)
        self._scalars = ReadoutScalars(
            offset_coeff=self.v_dd * cell.g_min_s,
            capacitance_f=self.capacitance_f,
            v_threshold=self.v_threshold,
            phase2_scale=self.capacitance_f / self.phase2_current_a,
            full_scale_s=dtc.full_scale_s,
            lsb_s=self.lsb_s,
            dot_max=self.dot_max,
        )

    @classmethod
    def from_context(cls, ctx: "SimContext") -> "TimeDomainChainSpec":
        """The chain spec of a full-height tile in ``ctx``'s architecture."""
        return cls(
            cell=ctx.arch.cell_spec(),
            dtc=ctx.arch.dtc(),
            rows=ctx.arch.rows,
            v_dd=ctx.arch.v_dd,
        )

    def scalars(self) -> ReadoutScalars:
        """The chain constants as a flat kernel-argument pack."""
        return self._scalars

    def read_out(
        self,
        charges: np.ndarray,
        delay_sums: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized phase-I/II read-out of raw column charges.

        ``charges`` holds phase-I column charges (coulombs) of any shape;
        ``delay_sums`` holds the per-chain sums of the input delays (seconds)
        and must broadcast against ``charges``.  Applies, elementwise and in
        the same order as :meth:`TimeDomainDotProduct.output_times`: the
        G_min reference-column subtraction, the zero clip, the phase-I
        capacitor voltage, the phase-II threshold-crossing time and the
        LSB rescale.  Returns dot-product estimates in integer
        (input-level x weight-level) units.

        The arithmetic runs in place on one working array (a single
        allocation regardless of how many tiles the stack covers); the
        inputs are left untouched unless ``out`` aliases ``charges`` —
        pass ``out=charges`` to run the whole chain fully in place with
        zero allocations, which is how the packed backend's chunked
        read-out keeps its working set bounded by one chunk.

        The arithmetic itself lives behind :mod:`repro.kernels.dispatch`
        (the historical numpy sequence is the always-available reference
        tier; a compiled tier serves the same call bit-for-bit faster).
        """
        return readout_fused(charges, delay_sums, self._scalars, out=out)


class TimeDomainDotProduct:
    """Behavioural model of one time-domain crossbar column read-out.

    Parameters
    ----------
    crossbar:
        The programmed :class:`ReRAMCrossbar` (time-mode operation).
    dtc:
        Input digital-to-time converter.  Its resolution bounds the input
        codes; its unit delay sets the time scale of the whole chain.
    charging_unit, comparator:
        Phase-I/II integration blocks.  The capacitance is rescaled so the
        full-scale phase-I charge reaches exactly the comparator threshold —
        the behavioural analogue of sizing the capacitor for the dynamic
        range of the array.
    x_subbuf, cascade_hops:
        Optional X-subBuf cascade the input delays traverse before reaching
        the crossbar rows (models intra-sub-Chip input forwarding).
    v_dd:
        Supply driving the rows during phase I.
    """

    def __init__(
        self,
        crossbar: ReRAMCrossbar,
        dtc: Optional[DTC] = None,
        charging_unit: Optional[ChargingUnit] = None,
        comparator: Optional[Comparator] = None,
        x_subbuf: Optional[XSubBuf] = None,
        cascade_hops: int = 0,
        v_dd: float = 1.2,
    ):
        if cascade_hops < 0:
            raise ValueError("cascade_hops must be non-negative")
        self.crossbar = crossbar
        self.dtc = dtc or DTC()
        self.comparator = comparator or Comparator()
        self.x_subbuf = x_subbuf or XSubBuf(unit_delay_s=self.dtc.t_del_s)
        self.cascade_hops = cascade_hops
        self.v_dd = v_dd

        # The scalar chain parameters (full-scale charge, capacitor sizing,
        # phase-II current, LSB) live in the shared spec so the packed
        # backend prices exactly the same chain.
        self.spec = TimeDomainChainSpec(
            cell=crossbar.cell,
            dtc=self.dtc,
            rows=crossbar.rows,
            v_dd=v_dd,
            v_threshold=self.comparator.v_threshold,
        )
        base = charging_unit or ChargingUnit()
        self.charging_unit = ChargingUnit(
            capacitance_f=self.spec.capacitance_f,
            v_dd=v_dd,
            energy_fj=base.energy_fj,
            area_um2=base.area_um2,
        )
        self.phase2_current_a = self.spec.phase2_current_a
        #: optional early read-out saturation (see repro.faults): when set,
        #: dot-product estimates clip at this fraction of :attr:`dot_max`
        #: instead of the chain's own full-scale ceiling.  ``None`` (the
        #: default) keeps the historical unclipped behaviour.
        self.clip_fraction: Optional[float] = None

    @property
    def dot_max(self) -> float:
        """Largest dot product the chain can represent without clipping."""
        return self.spec.dot_max

    def output_times(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Time-domain column outputs (seconds), proportional to the dot product."""
        delays = self.dtc.convert(codes, noise)
        delays = self.x_subbuf.cascade(delays, self.cascade_hops, noise)
        delays = np.atleast_1d(np.asarray(delays, dtype=float))

        # DTC outputs are clipped to [0, full_scale] by construction, so the
        # per-call non-negativity scan of the crossbar can be skipped here.
        charges = self.crossbar.column_charges(delays, self.v_dd, validate=False)
        # Reference column of G_min cells cancels the "off"-level offset.
        offset = (
            self.v_dd
            * self.crossbar.cell.g_min_s
            * delays.sum(axis=-1, keepdims=delays.ndim > 1)
        )
        net = np.clip(charges - offset, 0.0, None)

        v1 = self.charging_unit.charge_to_voltage(net)
        t_phase2 = self.charging_unit.phase2_time_to_threshold(
            v1, self.comparator.v_threshold, self.phase2_current_a
        )
        # Output edge position: a larger dot product crosses earlier, so the
        # column's time output is T_full - T_x (Fig. 6(e)(g)).
        return self.dtc.full_scale_s - np.asarray(t_phase2, dtype=float)

    def compute(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Dot-product estimate in integer (input-level x weight-level) units."""
        times = self.output_times(codes, noise)
        lsb_s = self.dtc.full_scale_s / self.dot_max
        estimates = times / lsb_s
        if self.clip_fraction is not None:
            estimates = np.minimum(estimates, self.clip_fraction * self.dot_max)
        return estimates


class SubRangingDotProduct:
    """Wide-weight dot product via MSB/LSB crossbar pairs (Section IV-C).

    An ``2 * cell_bits``-bit unsigned weight matrix is split with
    :func:`repro.nn.quantization.split_msb_lsb` across two crossbars whose
    cells hold ``cell_bits`` each; the two time-domain partial products are
    recombined digitally as ``msb * 2**cell_bits + lsb``.
    """

    def __init__(
        self,
        weights: np.ndarray,
        rows: int = 256,
        cols: int = 256,
        cell: Optional[ReRAMCellSpec] = None,
        noise: Optional[HardwareNoiseConfig] = None,
        dtc: Optional[DTC] = None,
        v_dd: float = 1.2,
    ):
        self.cell = cell or ReRAMCellSpec()
        self.low_bits = self.cell.bits_per_cell
        self.weight_bits = 2 * self.low_bits

        values = np.asarray(weights, dtype=np.int64)
        if np.any(values < 0) or np.any(values > 2 ** self.weight_bits - 1):
            raise ValueError(
                f"weights must lie in [0, {2 ** self.weight_bits - 1}] for "
                f"sub-ranging over two {self.low_bits}-bit cells"
            )
        msb, lsb = split_msb_lsb(values, self.weight_bits, self.low_bits)

        self.msb_crossbar = ReRAMCrossbar(rows, cols, self.cell, noise)
        self.lsb_crossbar = ReRAMCrossbar(rows, cols, self.cell, noise)
        self.msb_crossbar.program(msb)
        self.lsb_crossbar.program(lsb)

        self.msb_chain = TimeDomainDotProduct(self.msb_crossbar, dtc=dtc, v_dd=v_dd)
        self.lsb_chain = TimeDomainDotProduct(self.lsb_crossbar, dtc=dtc, v_dd=v_dd)

    @classmethod
    def from_context(
        cls, ctx: "SimContext", weights: np.ndarray, noise=None
    ) -> "SubRangingDotProduct":
        """Build the MSB/LSB pair from a :class:`repro.context.SimContext`.

        The cell, converter and supply parameters all come from ``ctx.arch``
        and the programming noise from ``noise`` (the caller's scoped
        :class:`~repro.circuits.noise.NoiseStream`, defaulting to
        ``ctx.noise``), so the functional engine and the analytics price
        exactly the same hardware.  The crossbar pair is sized at the weight
        block's true height (a partial row tile occupies only the rows it
        needs), so input codes can be sliced instead of zero-padded to the
        full tile height.
        """
        weights = np.asarray(weights)
        return cls(
            weights,
            rows=ctx.arch.tile_height(weights.shape[0]),
            cols=ctx.arch.cols,
            cell=ctx.arch.cell_spec(),
            noise=ctx.noise if noise is None else noise,
            dtc=ctx.arch.dtc(),
            v_dd=ctx.arch.v_dd,
        )

    def compute(
        self, codes: np.ndarray, noise: Optional[HardwareNoiseConfig] = None
    ) -> np.ndarray:
        """Dot product of input codes with the full-width weights."""
        msb = self.msb_chain.compute(codes, noise)
        lsb = self.lsb_chain.compute(codes, noise)
        return msb * (2 ** self.low_bits) + lsb

    def ideal(self, codes: np.ndarray) -> np.ndarray:
        """Exact integer reference for the same full-width weights."""
        msb = self.msb_crossbar.ideal_dot_product(codes)
        lsb = self.lsb_crossbar.ideal_dot_product(codes)
        return msb * (2 ** self.low_bits) + lsb

    @property
    def programmed_bytes(self) -> int:
        """Bytes held by the programmed state of the MSB/LSB pair."""
        return self.msb_crossbar.programmed_bytes + self.lsb_crossbar.programmed_bytes
