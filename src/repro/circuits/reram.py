"""ReRAM cell and crossbar behavioural models.

A ReRAM cell stores a weight as a programmable conductance; a crossbar of
``B x B`` cells performs an analog vector-matrix multiplication: the inputs
bias the rows, each cell contributes a current ``V_i * G_ij`` (Ohm's law), and
the column currents sum by Kirchhoff's current law (Section II-B).

TIMELY drives the rows with *time* signals instead of voltages; the crossbar
model therefore exposes both views:

* :meth:`ReRAMCrossbar.column_currents` — voltage-mode operation (PRIME/ISAAC),
* :meth:`ReRAMCrossbar.column_charges` — time-mode operation, where each cell
  contributes a charge ``V_DD * T_i * G_ij`` that is later integrated on the
  charging capacitor (TIMELY, Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.noise import HardwareNoiseConfig


@dataclass(frozen=True)
class ReRAMCellSpec:
    """Programmable-conductance cell description.

    ``bits_per_cell`` conductance levels are spaced uniformly between
    ``g_min = 1/r_max`` (the lowest, "off" level encoding weight 0) and
    ``g_max = 1/r_min``.
    """

    bits_per_cell: int = 4
    r_min_ohm: float = 20e3
    r_max_ohm: float = 2e6

    def __post_init__(self) -> None:
        if self.bits_per_cell <= 0:
            raise ValueError("bits_per_cell must be positive")
        if self.r_min_ohm <= 0 or self.r_max_ohm <= self.r_min_ohm:
            raise ValueError("require 0 < r_min < r_max")

    @property
    def levels(self) -> int:
        return 2 ** self.bits_per_cell

    @property
    def g_min_s(self) -> float:
        return 1.0 / self.r_max_ohm

    @property
    def g_max_s(self) -> float:
        return 1.0 / self.r_min_ohm

    @property
    def g_step_s(self) -> float:
        """Conductance increment per weight level."""
        return (self.g_max_s - self.g_min_s) / (self.levels - 1)

    def weight_to_conductance(self, weights: np.ndarray) -> np.ndarray:
        """Map integer weight levels ``[0, levels-1]`` to conductances (siemens)."""
        values = np.asarray(weights)
        if np.any(values < 0) or np.any(values > self.levels - 1):
            raise ValueError(
                f"weights must lie in [0, {self.levels - 1}] for a "
                f"{self.bits_per_cell}-bit cell"
            )
        return self.g_min_s + values * self.g_step_s

    def conductance_to_weight(self, conductance: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`weight_to_conductance` (nearest level)."""
        levels = np.round((np.asarray(conductance) - self.g_min_s) / self.g_step_s)
        return np.clip(levels, 0, self.levels - 1).astype(np.int64)


class ReRAMCrossbar:
    """A ``rows x cols`` crossbar of ReRAM cells holding unsigned weight levels."""

    def __init__(
        self,
        rows: int = 256,
        cols: int = 256,
        cell: Optional[ReRAMCellSpec] = None,
        noise: Optional[HardwareNoiseConfig] = None,
    ):
        if rows <= 0 or cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.cell = cell or ReRAMCellSpec()
        self.noise = noise
        self._weights = np.zeros((rows, cols), dtype=np.int64)
        self._conductances = self.cell.weight_to_conductance(self._weights)

    # -- programming ----------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """The programmed integer weight levels (read-only copy)."""
        return self._weights.copy()

    @property
    def conductances(self) -> np.ndarray:
        """Programmed conductances, including programming variation if enabled."""
        return self._conductances.copy()

    def program(self, weights: np.ndarray) -> None:
        """Program integer weight levels into the array.

        ``weights`` may be smaller than the array, in which case it is placed
        in the top-left corner and the rest of the array keeps weight 0 — this
        mirrors partially utilised crossbars in real mappings.
        """
        values = np.asarray(weights, dtype=np.int64)
        if values.ndim != 2:
            raise ValueError("weights must be a 2-D array")
        if values.shape[0] > self.rows or values.shape[1] > self.cols:
            raise ValueError(
                f"weights of shape {values.shape} do not fit a "
                f"{self.rows}x{self.cols} crossbar"
            )
        full = np.zeros((self.rows, self.cols), dtype=np.int64)
        full[: values.shape[0], : values.shape[1]] = values
        self._weights = full
        conductances = self.cell.weight_to_conductance(full)
        if self.noise is not None:
            conductances = self.noise.apply_conductance_variation(conductances)
        self._conductances = conductances

    def _check_rows(self, values: np.ndarray, what: str) -> None:
        """Validate a ``(rows,)`` vector or ``(batch, rows)`` matrix of inputs."""
        if values.ndim not in (1, 2) or values.shape[-1] != self.rows:
            raise ValueError(
                f"expected {what} of shape ({self.rows},) or (batch, {self.rows}), "
                f"got {values.shape}"
            )

    # -- voltage-mode operation (PRIME / ISAAC style) ---------------------------
    def column_currents(self, row_voltages: np.ndarray) -> np.ndarray:
        """Column currents for the given row voltages (amperes).

        ``I_j = sum_i V_i * G_ij`` — the analog dot product of Section II-B.
        ``row_voltages`` may be a ``(rows,)`` vector or a ``(batch, rows)``
        matrix; the batched form runs one matmul per crossbar instead of a
        Python loop per input vector.
        """
        voltages = np.asarray(row_voltages, dtype=float)
        self._check_rows(voltages, "row voltages")
        return voltages @ self._conductances

    # -- time-mode operation (TIMELY style) --------------------------------------
    def column_charges(
        self, row_times: np.ndarray, v_dd: float = 1.2, validate: bool = True
    ) -> np.ndarray:
        """Column charges when rows are driven for ``row_times`` seconds at V_DD.

        Each cell conducts ``V_DD * G_ij`` for ``T_i`` seconds, contributing a
        charge ``V_DD * G_ij * T_i``; charges sum along the column.  This is
        the phase-I charging of the two-phase scheme in Section IV-C.
        ``row_times`` may be ``(rows,)`` or ``(batch, rows)``.

        ``validate=False`` skips the shape and non-negativity scan of the
        inputs.  Callers that already guarantee both — the time-domain chains
        feed in DTC outputs, which are clipped to ``[0, full_scale]`` by
        construction — use it to avoid re-scanning the whole batch once per
        tile in the engine's hot loop.
        """
        times = np.asarray(row_times, dtype=float)
        if validate:
            self._check_rows(times, "row times")
            if np.any(times < 0):
                raise ValueError("row times must be non-negative")
        return v_dd * (times @ self._conductances)

    # -- ideal reference -----------------------------------------------------------
    def ideal_dot_product(self, row_levels: np.ndarray) -> np.ndarray:
        """Integer dot product of input levels with the programmed weight levels.

        This is the exact result the analog array approximates; tests compare
        the analog paths against it.  ``row_levels`` may be ``(rows,)`` or
        ``(batch, rows)``.
        """
        levels = np.asarray(row_levels, dtype=np.int64)
        self._check_rows(levels, "input levels")
        return levels @ self._weights

    @property
    def programmed_bytes(self) -> int:
        """Bytes held by the programmed state (integer levels + conductances)."""
        return self._weights.nbytes + self._conductances.nbytes

    def utilization(self) -> float:
        """Fraction of cells holding a non-zero weight level."""
        return float(np.count_nonzero(self._weights)) / float(self.rows * self.cols)
