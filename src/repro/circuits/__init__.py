"""Behavioural circuit substrate for the TIMELY reproduction.

Every analog or mixed-signal block the paper relies on is modelled here as a
small, numerically exercised Python class:

* :mod:`repro.circuits.reram` — ReRAM cells and crossbar arrays,
* :mod:`repro.circuits.converters` — DTC/TDC (time domain) and DAC/ADC
  (voltage domain) interfaces,
* :mod:`repro.circuits.analog_buffers` — X-subBuf, P-subBuf, I-adder,
  charging unit and comparator,
* :mod:`repro.circuits.timing` — the two-phase time-domain dot product
  (Eq. 2 of the paper) and the sub-ranging MSB/LSB composition,
* :mod:`repro.circuits.noise` — Gaussian/PVT noise models and the cascaded
  X-subBuf error budget,
* :mod:`repro.circuits.components` — the energy/area/latency spec record used
  to describe each physical component.

The architecture-level models (:mod:`repro.mapping`, :mod:`repro.energy`)
consume only the energy/area/latency numbers; the behavioural methods are
used by the unit tests and accuracy studies.
"""

from repro.circuits.components import ComponentSpec
from repro.circuits.converters import ADC, DAC, DTC, TDC
from repro.circuits.analog_buffers import (
    ChargingUnit,
    Comparator,
    CurrentAdder,
    PSubBuf,
    XSubBuf,
)
from repro.circuits.noise import (
    HardwareNoiseConfig,
    NoiseBudget,
    NoiseStream,
    cascaded_buffer_error,
    stable_seed,
)
from repro.circuits.reram import ReRAMCellSpec, ReRAMCrossbar
from repro.circuits.timing import SubRangingDotProduct, TimeDomainDotProduct

__all__ = [
    "ComponentSpec",
    "DTC",
    "TDC",
    "DAC",
    "ADC",
    "XSubBuf",
    "PSubBuf",
    "CurrentAdder",
    "ChargingUnit",
    "Comparator",
    "ReRAMCellSpec",
    "ReRAMCrossbar",
    "TimeDomainDotProduct",
    "SubRangingDotProduct",
    "HardwareNoiseConfig",
    "NoiseBudget",
    "NoiseStream",
    "cascaded_buffer_error",
    "stable_seed",
]
