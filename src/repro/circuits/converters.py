"""Digital/analog interface models: DTC, TDC, DAC and ADC.

Two families of interfaces are modelled (Section II-C of the paper):

* **time-domain** — a digital code maps to a delay in multiples of the unit
  delay ``T_del`` (DTC) and back (TDC).  TIMELY uses 8-bit DTCs/TDCs with
  ``T_del = 50 ps`` (conversion time 25 ns including margin), based on the
  silicon-verified designs the paper cites.
* **voltage-domain** — a digital code maps to a voltage (DAC) and back (ADC).
  PRIME and ISAAC use these; their per-conversion energy is roughly
  ``q1 = 50x`` (DAC vs DTC) and ``q2 = 20x`` (ADC vs TDC) higher.

The behavioural conversion methods are exact except for quantisation and the
optional Gaussian jitter/noise supplied through a
:class:`repro.circuits.noise.HardwareNoiseConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.circuits.noise import HardwareNoiseConfig

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class DTC:
    """Digital-to-time converter.

    A code ``d`` in ``[0, 2^resolution - 1]`` becomes a delay ``d * t_del_s``.
    """

    resolution: int = 8
    t_del_s: float = 50e-12
    energy_fj: float = 37.5
    area_um2: float = 240.0
    latency_ns: float = 25.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.t_del_s <= 0:
            raise ValueError("unit delay must be positive")

    @property
    def levels(self) -> int:
        return 2 ** self.resolution

    @property
    def full_scale_s(self) -> float:
        """Largest generated delay, ``(levels - 1) * T_del`` (255 x T_del for 8 bits).

        The largest representable code is ``levels - 1``, so the delay range
        tops out one unit delay below ``levels * T_del``; jittered delays are
        clipped to this ceiling in :meth:`convert`.
        """
        return (self.levels - 1) * self.t_del_s

    def convert(self, code: ArrayLike, noise: Optional[HardwareNoiseConfig] = None) -> ArrayLike:
        """Convert digital code(s) to delay(s) in seconds."""
        codes = np.clip(np.asarray(code), 0, self.levels - 1)
        delays = codes * self.t_del_s
        if noise is not None and noise.dtc_sigma > 0:
            delays = delays + noise.sample(noise.dtc_sigma * self.t_del_s, np.shape(delays))
            delays = np.clip(delays, 0.0, self.full_scale_s)
        if np.isscalar(code):
            return float(delays)
        return delays


@dataclass(frozen=True)
class TDC:
    """Time-to-digital converter: quantises a delay back to a code."""

    resolution: int = 8
    t_del_s: float = 50e-12
    energy_fj: float = 145.0
    area_um2: float = 310.0
    latency_ns: float = 25.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.t_del_s <= 0:
            raise ValueError("unit delay must be positive")

    @property
    def levels(self) -> int:
        return 2 ** self.resolution

    @property
    def full_scale_s(self) -> float:
        """Largest representable delay, ``(levels - 1) * T_del`` (code ``levels - 1``)."""
        return (self.levels - 1) * self.t_del_s

    def convert(self, delay_s: ArrayLike, noise: Optional[HardwareNoiseConfig] = None) -> ArrayLike:
        """Convert delay(s) in seconds to digital code(s)."""
        delays = np.asarray(delay_s, dtype=float)
        if noise is not None and noise.tdc_sigma > 0:
            delays = delays + noise.sample(noise.tdc_sigma * self.t_del_s, np.shape(delays))
        codes = np.clip(np.round(delays / self.t_del_s), 0, self.levels - 1).astype(np.int64)
        if np.isscalar(delay_s):
            return int(codes)
        return codes


@dataclass(frozen=True)
class DAC:
    """Voltage-domain digital-to-analog converter (used by PRIME/ISAAC models)."""

    resolution: int = 8
    v_ref: float = 1.2
    energy_fj: float = 1875.0
    area_um2: float = 600.0
    latency_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.v_ref <= 0:
            raise ValueError("reference voltage must be positive")

    @property
    def levels(self) -> int:
        return 2 ** self.resolution

    def convert(self, code: ArrayLike) -> ArrayLike:
        """Convert digital code(s) to voltage(s)."""
        codes = np.clip(np.asarray(code), 0, self.levels - 1)
        voltages = codes / (self.levels - 1) * self.v_ref
        if np.isscalar(code):
            return float(voltages)
        return voltages


@dataclass(frozen=True)
class ADC:
    """Voltage-domain analog-to-digital converter (used by PRIME/ISAAC models)."""

    resolution: int = 8
    v_ref: float = 1.2
    energy_fj: float = 2900.0
    area_um2: float = 1200.0
    latency_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if self.v_ref <= 0:
            raise ValueError("reference voltage must be positive")

    @property
    def levels(self) -> int:
        return 2 ** self.resolution

    def convert(self, voltage: ArrayLike) -> ArrayLike:
        """Convert voltage(s) to digital code(s)."""
        voltages = np.clip(np.asarray(voltage, dtype=float), 0.0, self.v_ref)
        codes = np.clip(
            np.round(voltages / self.v_ref * (self.levels - 1)), 0, self.levels - 1
        ).astype(np.int64)
        if np.isscalar(voltage):
            return int(codes)
        return codes


def roundtrip_error_lsb(dtc: DTC, tdc: TDC, codes: np.ndarray) -> np.ndarray:
    """Digital-to-time-to-digital round-trip error in LSBs (ideal circuits).

    Used by tests to demonstrate that the time-domain interface is lossless
    for matched resolutions, which is what lets TIMELY interface crossbars
    without accuracy loss.
    """
    return np.abs(tdc.convert(dtc.convert(codes)) - np.clip(codes, 0, dtc.levels - 1))
