"""Seed-stable ReRAM fault injection: stuck cells, drift, read-out saturation.

The noise models of :mod:`repro.circuits.noise` cover *parametric* analog
error — zero-mean Gaussian variation on conductances, delays and read-out.
Real ReRAM arrays additionally suffer *hard* non-idealities, and this module
models the three the device literature keeps measuring:

* **stuck-at cells** — a fraction of cells is pinned at ``G_on`` (the
  maximum conductance, a cell that formed permanently) or ``G_off`` (the
  minimum, a cell that never forms), independent of what was programmed,
* **conductance drift** — programmed levels decay toward the off state over
  time; modelled multiplicatively as
  ``G(t) = G_min + (G(0) - G_min) * (1 + t/t0) ** (-nu)`` (a power law in
  normalised time, the standard retention fit),
* **read-out saturation** — the phase-II TDC chain clips early: dot-product
  estimates above ``saturation * dot_max`` saturate instead of resolving
  (``saturation = 1`` is the chain's own physical ceiling, i.e. a no-op).

Like every noise draw in this codebase, fault masks are **stateless per
salt**: the mask of one tile derives from ``(seed, salt)`` via
:func:`repro.circuits.noise.stable_seed`, so masks are bit-reproducible
across processes, worker counts and resident-vs-streamed execution — the
property the Monte-Carlo sweep's byte-identical stores rest on.  The
underlying uniform field is drawn *once per tile* and compared against the
stuck fractions, so masks at different severities from the same seed are
**nested** (every cell stuck at 3% is also stuck at 5%) — severity sweeps
are comparable draw-for-draw, exactly like the noise-scale sweeps.

Faults are applied at executor **wiring** time (on per-executor copies of
the conductance tensors, after programming variation), never at programming
time — a :class:`repro.engine.state.ProgrammedState` therefore stays
fault-free and one cached artifact serves every fault realisation of a
sweep, mirroring how the noise model composes with the state cache.

Graceful degradation: when a tile's stuck-cell fraction exceeds
``remap_threshold`` and the architecture provisions spare rows
(``ArchSpec.spare_rows``), the worst rows — most stuck cells first — are
remapped onto spares: their cells revert to the drifted-but-unpinned values
(a spare row is programmed through the same variation and drifts like any
other row; it just does not carry the stuck defects).  The executor reports
per-layer stuck/remap counts on its
:class:`~repro.engine.executor.ExecutionResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.noise import SaltPart, stable_seed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.circuits.reram import ReRAMCellSpec


@dataclass(frozen=True)
class FaultModel:
    """Hard-fault description of one chip realisation.

    ``stuck_on_fraction`` / ``stuck_off_fraction`` are independent per-cell
    probabilities of being pinned at ``G_max`` / ``G_min``; ``drift_nu`` and
    ``drift_time_s`` parameterise the retention power law (``drift_t0_s``
    normalises the time axis); ``readout_saturation`` clips dot-product
    estimates at that fraction of the chain's ``dot_max`` (``None`` = the
    chain's own ceiling); ``remap_threshold`` is the per-tile stuck fraction
    above which rows remap onto the architecture's spare rows; ``seed``
    selects the fault realisation (decorrelated per Monte-Carlo trial via
    :meth:`for_trial`, exactly like the noise seed).
    """

    stuck_on_fraction: float = 0.0
    stuck_off_fraction: float = 0.0
    drift_nu: float = 0.0
    drift_time_s: float = 0.0
    drift_t0_s: float = 1.0
    readout_saturation: Optional[float] = None
    remap_threshold: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("stuck_on_fraction", "stuck_off_fraction"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0) or not math.isfinite(value):
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.stuck_on_fraction + self.stuck_off_fraction > 1.0:
            raise ValueError("stuck fractions must sum to at most 1")
        if self.drift_nu < 0 or not math.isfinite(self.drift_nu):
            raise ValueError("drift_nu must be finite and non-negative")
        if self.drift_time_s < 0 or not math.isfinite(self.drift_time_s):
            raise ValueError("drift_time_s must be finite and non-negative")
        if self.drift_t0_s <= 0:
            raise ValueError("drift_t0_s must be positive")
        if self.readout_saturation is not None and not (
            0.0 < self.readout_saturation <= 1.0
        ):
            raise ValueError("readout_saturation must lie in (0, 1] (or be None)")
        if not (0.0 <= self.remap_threshold <= 1.0):
            raise ValueError("remap_threshold must lie in [0, 1]")

    # -- derived switches ------------------------------------------------------
    @property
    def cell_active(self) -> bool:
        """True when any conductance-mutating fault is enabled."""
        return (
            self.stuck_on_fraction > 0
            or self.stuck_off_fraction > 0
            or (self.drift_nu > 0 and self.drift_time_s > 0)
        )

    @property
    def active(self) -> bool:
        """True when this model perturbs an analog execution at all."""
        return self.cell_active or self.readout_saturation is not None

    def drift_factor(self) -> float:
        """Multiplier on ``(G - G_min)`` after ``drift_time_s`` seconds."""
        if self.drift_nu <= 0 or self.drift_time_s <= 0:
            return 1.0
        return (1.0 + self.drift_time_s / self.drift_t0_s) ** (-self.drift_nu)

    # -- stateless derivation --------------------------------------------------
    def rng(self, *salt: SaltPart) -> np.random.Generator:
        """A generator derived from ``(seed, "faults", salt)`` — equal salts
        replay equal draws, independent of process or construction order."""
        return np.random.default_rng(stable_seed(self.seed, "faults", *salt))

    def for_trial(self, trial: int) -> "FaultModel":
        """This model with a per-trial seed: each Monte-Carlo trial samples an
        independent — and independently reproducible — chip realisation."""
        return replace(self, seed=stable_seed(self.seed, "trial", trial))


@dataclass
class FaultReport:
    """Aggregated fault/remap counts of one wired layer (or whole network)."""

    cells: int = 0
    stuck_cells: int = 0
    remapped_rows: int = 0
    healed_cells: int = 0

    def merge(self, other: "FaultReport") -> "FaultReport":
        self.cells += other.cells
        self.stuck_cells += other.stuck_cells
        self.remapped_rows += other.remapped_rows
        self.healed_cells += other.healed_cells
        return self

    @property
    def stuck_fraction(self) -> float:
        """Surviving (post-remap) stuck cells as a fraction of all cells."""
        return self.stuck_cells / self.cells if self.cells else 0.0


def apply_tile_faults(
    slices: Sequence[np.ndarray],
    cell: "ReRAMCellSpec",
    faults: FaultModel,
    spare_rows: int,
    salt: Tuple[SaltPart, ...],
) -> FaultReport:
    """Apply ``faults`` to one tile's per-slice conductance arrays, in place.

    ``slices`` holds one *writable* 2-D ``(height, width)`` conductance
    array (or view) per bit-cell slice of the tile — the packed backend
    passes views into its per-slice tensors, the tiled backend the private
    arrays of its crossbar objects.  ``cell`` is the
    :class:`repro.circuits.reram.ReRAMCellSpec` supplying ``g_min``/``g_max``.

    Application order models the physics: drift acts on whatever was
    programmed (variation included), stuck-at pinning overrides everything —
    a stuck cell reads ``G_max``/``G_min`` no matter what was programmed or
    how long ago.  The stuck masks of all slices derive from one generator
    seeded by ``(faults.seed, "faults", salt)``; the uniform field is
    compared against the fractions, so masks at different severities from
    one seed are nested.

    Redundancy remap: when the tile's stuck fraction exceeds
    ``faults.remap_threshold`` and ``spare_rows > 0``, the up-to-
    ``spare_rows`` worst rows (most stuck cells; ties broken by row index)
    keep their drifted, *unpinned* values — their cells moved to spare
    rows.  Returns the tile's :class:`FaultReport`.
    """
    if not slices:
        return FaultReport()
    height, width = slices[0].shape
    report = FaultReport(cells=len(slices) * height * width)

    factor = faults.drift_factor()
    if factor != 1.0:
        for conductances in slices:
            dtype = conductances.dtype
            conductances -= dtype.type(cell.g_min_s)
            conductances *= dtype.type(factor)
            conductances += dtype.type(cell.g_min_s)

    p_on = faults.stuck_on_fraction
    p_off = faults.stuck_off_fraction
    if p_on <= 0 and p_off <= 0:
        return report

    rng = faults.rng(*salt)
    on_masks: List[np.ndarray] = []
    off_masks: List[np.ndarray] = []
    for conductances in slices:
        u = rng.random(conductances.shape)
        on_masks.append(u < p_on)
        off_masks.append((u >= p_on) & (u < p_on + p_off))

    per_row = np.zeros(height, dtype=np.int64)
    for on, off in zip(on_masks, off_masks):
        per_row += (on | off).sum(axis=1)
    total_stuck = int(per_row.sum())

    remapped: List[int] = []
    if (
        spare_rows > 0
        and total_stuck > 0
        and total_stuck / report.cells > faults.remap_threshold
    ):
        # worst rows first; argsort of the negated counts with a stable kind
        # breaks ties by row index, keeping the remap choice deterministic
        order = np.argsort(-per_row, kind="stable")
        remapped = [int(r) for r in order[:spare_rows] if per_row[r] > 0]
    healed = int(per_row[remapped].sum()) if remapped else 0

    for conductances, on, off in zip(slices, on_masks, off_masks):
        if remapped:
            on[remapped, :] = False
            off[remapped, :] = False
        dtype = conductances.dtype
        conductances[on] = dtype.type(cell.g_max_s)
        conductances[off] = dtype.type(cell.g_min_s)

    report.stuck_cells = total_stuck - healed
    report.remapped_rows = len(remapped)
    report.healed_cells = healed
    return report
