"""Incremental, resumable JSON-lines result store for sweep trials.

Every completed trial is appended as one JSON line keyed by the trial's
content key — an interrupted sweep therefore loses at most the in-flight
trials, and a re-invocation with ``resume`` skips everything already on
disk.  Rows hold only deterministic content (spec fields + accuracy
results, no wall-clock), so equal grids produce byte-identical rows no
matter how many workers computed them; :meth:`SweepStore.rewrite` compacts
the append-ordered file into canonical grid order once a sweep completes,
making the whole file byte-stable too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Union


def row_line(row: dict) -> str:
    """The canonical serialised form of one result row (sorted keys)."""
    return json.dumps(row, sort_keys=True)


class SweepStore:
    """Append-only JSON-lines store with content-key lookup."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: malformed lines skipped by the last :meth:`load` (e.g. the torn
        #: tail of a crashed append) — they are simply recomputed
        self.skipped_lines = 0

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Dict[str, dict]:
        """All stored rows by content key (malformed lines are dropped)."""
        rows: Dict[str, dict] = {}
        self.skipped_lines = 0
        if not self.exists():
            return rows
        with open(self.path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    key = row["key"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    self.skipped_lines += 1
                    continue
                rows[key] = row
        return rows

    def clear(self) -> None:
        """Drop any previous results (a fresh, non-resumed sweep)."""
        if self.exists():
            self.path.unlink()

    def append(self, row: dict) -> None:
        """Durably append one completed trial."""
        if "key" not in row:
            raise ValueError("result rows must carry their content 'key'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(row_line(row) + "\n")
            handle.flush()

    def rewrite(self, rows: Iterable[dict]) -> None:
        """Atomically replace the file with ``rows`` in the given order.

        Called once a sweep completes to compact the completion-ordered
        appends into canonical grid order — the file is then byte-identical
        across worker counts and re-runs.
        """
        rows = list(rows)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            with open(tmp, "w") as handle:
                for row in rows:
                    handle.write(row_line(row) + "\n")
            os.replace(tmp, self.path)
        except BaseException:
            # a failed compaction must leave the previous file untouched
            # (the replace is atomic) and no stray tmp behind
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def lines(self) -> List[str]:
        """The raw stored lines (for byte-identity checks and tooling)."""
        if not self.exists():
            return []
        return [line for line in self.path.read_text().splitlines() if line.strip()]
