"""Reduction of sweep result rows into summary statistics.

The reducer answers the Section-V question the sweep exists for: how does
accuracy degrade as the analog error model scales?  Rows are grouped by
configuration (model, cell bits, backend) and, within each group, by noise
scale; every (configuration, scale) cell reduces to mean / p95 / max
relative error plus the per-layer mean errors (error attribution — which
layer's analog chains contribute the degradation).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

#: the fields that identify one sweep configuration group
GROUP_FIELDS = ("model", "cell_bits", "backend")


def summarize(rows: Iterable[dict]) -> List[dict]:
    """Reduce result rows into per-(configuration, noise-scale) statistics.

    Returns one entry per (model, cell_bits, backend, noise_scale,
    stuck_fraction), sorted canonically, each carrying ``trials``,
    ``mean_rel_error``, ``p95_rel_error``, ``max_rel_error``,
    ``std_rel_error`` and a ``layers`` dict of per-layer mean relative
    errors.  Structured error rows (a ``--keep-going`` sweep records failed
    trials with an ``"error"`` field instead of results) are excluded from
    the statistics; cells containing any add a ``failed`` count, and a cell
    whose trials *all* failed reports NaN errors rather than vanishing.
    """
    cells: Dict[Tuple, List[dict]] = {}
    for row in rows:
        group = tuple(row[field] for field in GROUP_FIELDS) + (
            row["noise_scale"],
            row.get("stuck_fraction", 0.0),
        )
        cells.setdefault(group, []).append(row)

    summary: List[dict] = []
    # model/backend sort as strings; cell_bits, noise_scale and
    # stuck_fraction numerically
    for group in sorted(cells, key=lambda g: (str(g[0]), g[1], str(g[2]), g[3], g[4])):
        bucket = cells[group]
        failed = [row for row in bucket if "error" in row]
        ok = [row for row in bucket if "error" not in row]
        errors = np.array([row["rel_error"] for row in ok], dtype=float)
        layer_names = list(ok[0].get("layers", {})) if ok else []
        layers = {
            name: float(np.mean([row["layers"][name] for row in ok]))
            for name in layer_names
        }
        entry = dict(zip(GROUP_FIELDS, group[:-2]))
        entry.update(
            {
                "noise_scale": group[-2],
                "stuck_fraction": group[-1],
                "trials": len(ok),
                "mean_rel_error": float(errors.mean()) if ok else float("nan"),
                "p95_rel_error": float(np.percentile(errors, 95)) if ok else float("nan"),
                "max_rel_error": float(errors.max()) if ok else float("nan"),
                "std_rel_error": float(errors.std()) if ok else float("nan"),
                "layers": layers,
            }
        )
        if failed:
            entry["failed"] = len(failed)
        summary.append(entry)
    return summary


def format_summary(summary: List[dict], per_layer: bool = False) -> str:
    """Human-readable table of :func:`summarize` output."""
    lines: List[str] = []
    header = (
        f"{'model':<12} {'cells':>5} {'backend':<8} {'noise':>6} {'stuck':>6} "
        f"{'trials':>6} {'mean err':>11} {'p95 err':>11} {'max err':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in summary:
        line = (
            f"{entry['model']:<12} {entry['cell_bits']:>5} {entry['backend']:<8} "
            f"{entry['noise_scale']:>6g} {entry.get('stuck_fraction', 0.0):>6g} "
            f"{entry['trials']:>6} "
            f"{entry['mean_rel_error']:>11.3e} {entry['p95_rel_error']:>11.3e} "
            f"{entry['max_rel_error']:>11.3e}"
        )
        if entry.get("failed"):
            line += f"  [{entry['failed']} failed]"
        lines.append(line)
        if per_layer and entry["layers"]:
            worst = sorted(entry["layers"].items(), key=lambda kv: -kv[1])
            for name, err in worst:
                lines.append(f"{'':<12} {'':>5} {'':<8} {'':>6} {name:>20}: {err:.3e}")
    return "\n".join(lines)
