"""Monte-Carlo sweep grids: trial specifications and their content keys.

A sweep is the cartesian product of (model x cell-bits x backend x noise
scale x trial index) over one architecture/seed configuration — the
"accuracy vs. analog error" characterisation of Section V.  Each point is a
:class:`TrialSpec`: a small frozen dataclass of primitives that

* pickles across the :class:`~repro.sweep.pool` process boundary,
* builds its own :class:`repro.context.SimContext` (weights/input fixed by
  ``seed``, noise decorrelated per trial via
  :meth:`repro.context.SimContext.for_trial`), and
* hashes to a stable **content key** so the result store can skip trials
  that a previous — possibly interrupted — invocation already computed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import asdict, dataclass
from typing import List, Tuple

from repro.context import COMPUTE_DTYPES, ENGINE_BACKENDS, ArchSpec, SimContext

#: engine read-out modes a sweep may run (mirrors repro.engine.tiles.MODES
#: without importing the engine at grid-definition time)
SWEEP_MODES = ("analog", "ideal")


@dataclass(frozen=True)
class TrialSpec:
    """One grid point: everything a worker needs to run the trial.

    All fields are primitives, so the spec pickles cheaply and its canonical
    JSON form defines the content key.  ``trial`` only decorrelates the noise
    draws — weights and the input image are fixed by ``seed`` across trials,
    which is the paper's Monte-Carlo setup (one trained network, many noise
    realisations) and what makes per-trial errors comparable across noise
    scales.
    """

    model: str
    noise_scale: float
    trial: int
    cell_bits: int = 4
    backend: str = "packed"
    seed: int = 0
    mode: str = "analog"
    rows: int = 256
    cols: int = 256
    weight_bits: int = 8
    input_bits: int = 8
    #: packed-engine arithmetic precision — a float32 campaign can run
    #: against a float64 reference campaign without the two ever sharing a
    #: content key (the field is part of the canonical JSON ``key``)
    compute_dtype: str = "float64"
    #: total stuck-cell fraction injected by :mod:`repro.faults` (split
    #: evenly between stuck-at-G_on and stuck-at-G_off); ``0`` = a
    #: defect-free chip.  Each trial samples an independent, seed-stable
    #: chip realisation, mirroring the noise decorrelation.
    stuck_fraction: float = 0.0

    @property
    def key(self) -> str:
        """Stable content key of this trial (prefix of the spec's SHA-256)."""
        canonical = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def context(self) -> SimContext:
        """The simulation context of this trial.

        The noise model carries the Section-V sigma ratios scaled by
        ``noise_scale`` (``0`` = ideal hardware) and a per-trial seed derived
        from ``(seed, "trial", trial)`` — identical across noise scales, so a
        trial's error grows monotonically with the scale draw-for-draw.
        """
        from repro.circuits.noise import HardwareNoiseConfig

        arch = ArchSpec(
            rows=self.rows,
            cols=self.cols,
            cell_bits=self.cell_bits,
            weight_bits=self.weight_bits,
            input_bits=self.input_bits,
        )
        noise = (
            HardwareNoiseConfig.scaled(self.noise_scale, seed=self.seed)
            if self.noise_scale > 0
            else None
        )
        faults = None
        if self.stuck_fraction > 0:
            from repro.faults import FaultModel

            faults = FaultModel(
                stuck_on_fraction=self.stuck_fraction / 2,
                stuck_off_fraction=self.stuck_fraction / 2,
                seed=self.seed,
            )
        ctx = SimContext(
            arch=arch,
            noise=noise,
            seed=self.seed,
            backend=self.backend,
            compute_dtype=self.compute_dtype,
            faults=faults,
        )
        return ctx.for_trial(self.trial)

    def as_row(self) -> dict:
        """The spec's fields as a flat JSON-ready dict (key included)."""
        return {"key": self.key, **asdict(self)}


@dataclass(frozen=True)
class SweepGrid:
    """The full cartesian sweep over models, noise scales, cells and backends."""

    models: Tuple[str, ...] = ("cnn_1",)
    noise_scales: Tuple[float, ...] = (0.0, 0.5, 1.0)
    trials: int = 8
    cell_bits: Tuple[int, ...] = (4,)
    backends: Tuple[str, ...] = ("packed",)
    seed: int = 0
    mode: str = "analog"
    rows: int = 256
    cols: int = 256
    weight_bits: int = 8
    input_bits: int = 8
    compute_dtypes: Tuple[str, ...] = ("float64",)
    stuck_fractions: Tuple[float, ...] = (0.0,)

    def __post_init__(self) -> None:
        # normalise away repeated grid values (e.g. `--noise-grid 0,0.5,0.5`)
        # before validation: duplicates would inflate trial counts and write
        # duplicate rows under one content key, which resume logic assumes
        # cannot happen
        for name in (
            "models",
            "noise_scales",
            "cell_bits",
            "backends",
            "compute_dtypes",
            "stuck_fractions",
        ):
            values = tuple(dict.fromkeys(getattr(self, name)))
            object.__setattr__(self, name, values)
        if not self.models:
            raise ValueError("a sweep needs at least one model")
        if not self.noise_scales:
            raise ValueError("a sweep needs at least one noise scale")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        # NaN passes a bare `< 0` check and would serialise as invalid JSON
        if any(not math.isfinite(scale) or scale < 0 for scale in self.noise_scales):
            raise ValueError("noise scales must be finite and non-negative")
        if not self.cell_bits or any(bits <= 0 for bits in self.cell_bits):
            raise ValueError("cell_bits entries must be positive")
        unknown = [b for b in self.backends if b not in ENGINE_BACKENDS]
        if unknown or not self.backends:
            raise ValueError(
                f"unknown backends {unknown}; choose from: {ENGINE_BACKENDS}"
            )
        if self.mode not in SWEEP_MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from: {SWEEP_MODES}")
        bad_dtypes = [d for d in self.compute_dtypes if d not in COMPUTE_DTYPES]
        if bad_dtypes or not self.compute_dtypes:
            raise ValueError(
                f"unknown compute dtypes {bad_dtypes}; choose from: {COMPUTE_DTYPES}"
            )
        if not self.stuck_fractions or any(
            not math.isfinite(f) or not (0.0 <= f <= 1.0) for f in self.stuck_fractions
        ):
            raise ValueError("stuck fractions must lie in [0, 1]")

    def specs(self) -> List[TrialSpec]:
        """Every trial of the grid in deterministic (canonical) order."""
        return [
            TrialSpec(
                model=model,
                noise_scale=scale,
                trial=trial,
                cell_bits=bits,
                backend=backend,
                seed=self.seed,
                mode=self.mode,
                rows=self.rows,
                cols=self.cols,
                weight_bits=self.weight_bits,
                input_bits=self.input_bits,
                compute_dtype=dtype,
                stuck_fraction=stuck,
            )
            for model, bits, backend, dtype, stuck, scale, trial in itertools.product(
                self.models,
                self.cell_bits,
                self.backends,
                self.compute_dtypes,
                self.stuck_fractions,
                self.noise_scales,
                range(self.trials),
            )
        ]

    def __len__(self) -> int:
        return (
            len(self.models)
            * len(self.cell_bits)
            * len(self.backends)
            * len(self.compute_dtypes)
            * len(self.stuck_fractions)
            * len(self.noise_scales)
            * self.trials
        )

    def to_dict(self) -> dict:
        """JSON-serialisable description (lists instead of tuples)."""
        doc = asdict(self)
        for name in (
            "models",
            "noise_scales",
            "cell_bits",
            "backends",
            "compute_dtypes",
            "stuck_fractions",
        ):
            doc[name] = list(doc[name])
        return doc
