"""Monte-Carlo parameter-sweep engine over the functional simulator.

Reproduces the paper's Section-V "accuracy vs. analog error" study at
scale: a grid of (model x noise-scale x trial-seed x cell-bits x backend)
engine trials runs through a process pool, every completed trial lands in
an incremental JSON-lines store keyed by content (so interrupted sweeps
resume and completed ones are free to re-invoke), and the rows reduce to
mean / p95 relative error per noise scale with per-layer attribution.

* :mod:`repro.sweep.grid` — :class:`TrialSpec` / :class:`SweepGrid`,
  content keys and per-trial :class:`~repro.context.SimContext` derivation,
* :mod:`repro.sweep.store` — the resumable :class:`SweepStore`,
* :mod:`repro.sweep.pool` — :func:`run_trial` / :func:`run_sweep` workers,
* :mod:`repro.sweep.stats` — :func:`summarize` / :func:`format_summary`.

The pool is program-once/run-many: each distinct (model, arch, mode,
backend, seed) group is programmed a single time into a
:class:`repro.engine.ProgrammedState` snapshot that every trial — across
noise scales and worker processes — executes from, instead of re-building
the chip per trial.

The correctness prerequisite is the stateless noise seeding of
:mod:`repro.circuits.noise`: every draw derives from ``(seed, salt)``, so a
pool worker computes exactly the row a serial run would (per-trial
programming variation is applied on top of the shared base conductances
from the trial's own streams) and equal grids yield byte-identical stores
at any worker count.  CLI: ``python -m repro.sim sweep``.
"""

from repro.sweep.grid import SweepGrid, TrialSpec
from repro.sweep.pool import (
    SweepOutcome,
    run_sweep,
    run_trial,
    run_trial_chunk,
    warm_pool,
)
from repro.sweep.stats import format_summary, summarize
from repro.sweep.store import SweepStore

__all__ = [
    "SweepGrid",
    "TrialSpec",
    "SweepStore",
    "SweepOutcome",
    "run_sweep",
    "run_trial",
    "run_trial_chunk",
    "warm_pool",
    "summarize",
    "format_summary",
]
