"""Parallel sweep execution through a process pool, program-once style.

:func:`run_trial` is the (picklable, module-level) worker: it rebuilds the
trial's :class:`~repro.context.SimContext` from the :class:`TrialSpec`
primitives, runs one validated engine forward pass and returns a plain-dict
result row.  Because every noise draw is derived statelessly from
``(seed, salt)`` (see :mod:`repro.circuits.noise`), a worker computes
exactly the row the parent process would — worker count, scheduling order
and resume boundaries cannot change any result.

The expensive part of a trial is not the forward pass but the weight
*programming* that used to happen inside every ``NetworkExecutor``
construction.  Programming is noise-free, so every trial and noise scale of
one ``(model, arch, mode, backend, seed)`` group shares a single
:class:`~repro.engine.state.ProgrammedState`: :func:`run_sweep` programs
each group **once** in the parent, snapshots it to disk (the sweep's
``--state-cache`` directory when given, a temp directory otherwise) and
ships the snapshot path to the workers — a pool initializer pre-loads it,
and :func:`run_trial_chunk` runs a whole chunk of trials against the
memoised state instead of re-programming per trial.  Per-trial programming
variation is applied at executor wiring from the trial's own noise streams,
so the rows stay bit-for-bit identical to the re-program-every-trial path.

:func:`run_sweep` drives a grid through a ``ProcessPoolExecutor`` (or
inline for ``workers <= 1``), appending rows to the
:class:`~repro.sweep.store.SweepStore` as they complete and compacting the
store into canonical grid order at the end.  Noise-scale-0 grid points are
deduplicated: with no noise model attached every trial of such a point is
the same deterministic forward pass, so one engine run fans out to all of
its trials' rows.  A fully-resumed sweep computes nothing and — pool
startup being the dominant cost of small sweeps — never creates a pool.

Long fault-injection campaigns must survive their own workers: the pooled
paths route every unit of work through a drain loop that retries failed
units with exponential backoff (``max_retries``), rebuilds the process pool
when a worker death surfaces as ``BrokenProcessPool`` (re-running only the
in-flight units — everything already appended to the store is kept), and
runs a stall watchdog (``trial_timeout_s``) that hard-kills a hung pool so
the same recovery path applies.  Because every row is deterministic, a
crashed-and-recovered sweep compacts to a store byte-identical to an
undisturbed one.  ``keep_going`` converts a unit that exhausts its retries
into structured error rows (spec fields plus an ``"error"`` message) instead
of aborting the sweep; stored error rows are treated as pending — not
resumed — by the next invocation.
"""

from __future__ import annotations

import math
import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sweep.grid import SweepGrid, TrialSpec
from repro.sweep.store import SweepStore


def run_trial(
    spec: TrialSpec,
    state=None,
    network=None,
    params=None,
) -> dict:
    """Run one sweep trial and return its deterministic result row.

    The row carries the spec fields (with content key), the end-to-end
    relative error against the float reference, the per-layer relative
    errors (the error-attribution data the reducer aggregates) and the
    crossbar count — and deliberately **no** wall-clock fields, so rows are
    byte-identical across runs and worker counts.

    ``state``/``network``/``params`` are the program-once fast path: a
    pre-programmed :class:`~repro.engine.state.ProgrammedState` (with its
    rebuilt network and parameters) skips quantisation and bit-slice packing
    and goes straight to wiring — same numbers, noise included, because the
    state is noise-free and per-trial variation is applied at wiring time.
    With all three ``None`` the trial programs from scratch (the legacy
    path, still exercised by ``share_state=False``).
    """
    from repro.engine import NetworkExecutor
    from repro.nn.models import build_model

    if network is None:
        network = build_model(spec.model)
    ctx = spec.context()
    executor = NetworkExecutor(network, ctx, mode=spec.mode, params=params, state=state)
    result = executor.run(executor.random_input(), validate=True)
    row = spec.as_row()
    row["rel_error"] = result.rel_error
    row["crossbars"] = executor.crossbars
    row["layers"] = {trace.name: trace.rel_error for trace in result.traces}
    return row


#: per-worker memo of loaded snapshots: path -> (state, network, params).
#: Populated by the pool initializer (and lazily by run_trial_chunk), so a
#: worker loads each programmed state once and serves every chunk from it.
_WORKER_STATES: Dict[str, tuple] = {}


def _load_worker_state(path: str) -> tuple:
    entry = _WORKER_STATES.get(path)
    if entry is None:
        from repro.engine import NetworkParams, ProgrammedState
        from repro.nn.models import build_model

        state = ProgrammedState.load(path)
        network = build_model(state.model)
        entry = (state, network, NetworkParams(network, state.seed))
        _WORKER_STATES[path] = entry
    return entry


def _preload_states(paths: Sequence[str]) -> None:
    """Pool initializer: warm the engine import and pre-load snapshots."""
    import repro.engine  # noqa: F401  (the heavyweight import, paid once)

    for path in paths:
        _load_worker_state(path)


def _warm_worker(_: int) -> bool:
    import repro.engine  # noqa: F401

    return True


def warm_pool(
    workers: int, snapshot_paths: Sequence[str] = ()
) -> Tuple[ProcessPoolExecutor, float]:
    """A started, import-warmed pool and the seconds its startup took.

    Forces all ``workers`` processes to spawn and run the
    :func:`_preload_states` initializer before returning, so a subsequent
    :func:`run_sweep` with ``pool=`` measures steady-state throughput —
    the bench reports the returned startup separately as ``pool_startup_s``.
    The caller owns the pool (``shutdown()`` when done).
    """
    start = time.perf_counter()
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_preload_states,
        initargs=(tuple(snapshot_paths),),
    )
    # one no-op per worker forces every process to exist before we return
    list(pool.map(_warm_worker, range(workers)))
    return pool, time.perf_counter() - start


def _maybe_inject_fault() -> None:
    """Test/CI crash-injection hook, keyed off environment variables.

    ``REPRO_SWEEP_CRASH_ONCE=<marker-path>`` SIGKILLs the first worker chunk
    that atomically claims the marker file (``O_CREAT | O_EXCL``) —
    simulating a hard worker death exactly once per marker path, so the
    retried chunk (and every other claimant) proceeds normally.
    ``REPRO_SWEEP_HANG_ONCE=<marker-path>`` makes the first claimant hang
    instead, exercising the ``trial_timeout_s`` stall watchdog.
    """
    for env, action in (
        ("REPRO_SWEEP_CRASH_ONCE", "crash"),
        ("REPRO_SWEEP_HANG_ONCE", "hang"),
    ):
        marker = os.environ.get(env)
        if not marker:
            continue
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        if action == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(3600.0)  # far beyond any stall budget; the watchdog kills us


def run_trial_chunk(specs: Sequence[TrialSpec], snapshot_path: str) -> List[dict]:
    """Run a chunk of one group's trials against its programmed snapshot.

    The chunk is the pool's unit of work: it amortises task submission and
    result pickling over several trials, and every trial reuses the
    worker-memoised state/network/params loaded from ``snapshot_path``.
    """
    _maybe_inject_fault()
    state, network, params = _load_worker_state(snapshot_path)
    return [
        run_trial(spec, state=state, network=network, params=params) for spec in specs
    ]


def _work_spec(spec: TrialSpec) -> TrialSpec:
    """The spec whose engine run produces ``spec``'s results.

    At noise scale 0 the noise model is ``None``, and in ``"ideal"`` mode
    the exact integer read-out bypasses the noisy analog chains entirely —
    either way every trial of the grid point is the same deterministic
    forward pass, so all of them share trial 0's run: it executes once and
    its results fan out to each trial's row (rows still differ in their
    ``trial`` field and content key).  A non-zero ``stuck_fraction`` blocks
    the dedup in analog mode just like noise does: each trial samples an
    independent faulty-chip realisation (:meth:`repro.faults.FaultModel.
    for_trial`).  In ideal mode faults are no-ops — no conductances exist —
    so faulty ideal trials still collapse onto trial 0.
    """
    if spec.trial == 0:
        return spec
    if spec.mode != "ideal" and (spec.noise_scale > 0 or spec.stuck_fraction > 0):
        return spec
    return replace(spec, trial=0)


def _group_key(spec: TrialSpec) -> str:
    """Programmed-state content key of ``spec``'s trial group.

    Noise scale and trial index are deliberately absent — the state is
    noise-free, so every Monte-Carlo trial of one
    ``(model, arch, mode, backend, seed, compute_dtype)`` group shares one
    programming.  The compute dtype **is** present: a float32 payload holds
    different bytes than a float64 one, so mixed-precision campaigns must
    not alias in the cache.
    """
    from repro.context import ArchSpec
    from repro.engine.state import state_key

    arch = ArchSpec(
        rows=spec.rows,
        cols=spec.cols,
        cell_bits=spec.cell_bits,
        weight_bits=spec.weight_bits,
        input_bits=spec.input_bits,
    )
    return state_key(
        spec.model, arch, spec.mode, spec.backend, spec.seed, spec.compute_dtype
    )


@dataclass
class _PoolTask:
    """One retryable unit of pool work (a trial, or a chunk of trials)."""

    fn: Callable
    args: tuple
    payload: object  # handed back verbatim to the result/failure callbacks
    weight: int = 1  # trials in the unit — scales the stall-watchdog budget
    attempts: int = 0


def _terminate_pool_processes(pool: Executor) -> None:
    """Hard-kill a pool's worker processes (the stall watchdog's hammer).

    The pool then marks itself broken and raises ``BrokenProcessPool`` on
    its in-flight futures, which funnels a *hang* into the same
    rebuild-and-retry recovery path as a worker *crash*.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass


def _drain_pool(
    holder: List[Executor],
    rebuild: Callable[[], Executor],
    tasks: List[_PoolTask],
    on_result: Callable[[_PoolTask, object], None],
    on_failure: Callable[[_PoolTask, BaseException], None],
    max_retries: int,
    backoff_s: float,
    timeout_s: Optional[float],
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Run ``tasks`` on ``holder[0]`` to completion, surviving the pool.

    * A task that raises is resubmitted with exponential backoff
      (``backoff_s * 2**(attempts-1)``) up to ``max_retries`` times, then
      handed to ``on_failure`` (which may raise to abort the drain).
    * ``BrokenProcessPool`` — a worker died — shuts the dead pool down,
      builds a fresh one via ``rebuild()`` and resubmits every in-flight
      task (each such loss counts as one attempt).  Results already
      delivered are kept; re-running lost units is safe because every row
      is deterministic.
    * With ``timeout_s`` set, a stall watchdog kills the pool's workers
      when no unit completes within ``timeout_s * max(active unit weight)``
      seconds, converting a hang into the broken-pool recovery above.

    ``holder`` is a one-element list so the caller always sees the current
    pool (rebuilds included) and can shut it down in its ``finally``.
    """
    active: Dict = {}
    retry: List[_PoolTask] = []

    def submit_all(batch: List[_PoolTask]) -> None:
        for task in batch:
            active[holder[0].submit(task.fn, *task.args)] = task

    def requeue_or_fail(task: _PoolTask, exc: BaseException) -> None:
        task.attempts += 1
        if task.attempts > max_retries:
            on_failure(task, exc)
            return
        if backoff_s > 0:
            time.sleep(backoff_s * (2 ** (task.attempts - 1)))
        retry.append(task)
        if progress:
            progress(
                f"retrying {task.weight} trial(s) after {type(exc).__name__} "
                f"(attempt {task.attempts + 1}/{max_retries + 1})"
            )

    submit_all(tasks)
    last_progress = time.monotonic()
    while active:
        retry = []
        budget = tick = None
        if timeout_s is not None:
            budget = timeout_s * max(task.weight for task in active.values())
            tick = max(0.05, min(1.0, budget / 4.0))
        finished, _ = wait(list(active), timeout=tick, return_when=FIRST_COMPLETED)
        broken = False
        if finished:
            last_progress = time.monotonic()
        for future in finished:
            task = active.pop(future)
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                broken = True
                requeue_or_fail(task, exc)
            except Exception as exc:
                requeue_or_fail(task, exc)
            else:
                on_result(task, result)
        if (
            not broken
            and not finished
            and budget is not None
            and time.monotonic() - last_progress >= budget
        ):
            # nothing completed within the stall budget: presume the pool
            # hung, kill its workers and fall through to the rebuild below
            if progress:
                progress(f"no trial finished within {budget:.1f}s; restarting pool")
            _terminate_pool_processes(holder[0])
            exc = TimeoutError(f"no trial finished within the {budget:.1f}s budget")
            for future, task in list(active.items()):
                future.cancel()
                requeue_or_fail(task, exc)
            active.clear()
            broken = True
        if broken:
            # every other in-flight unit died with the pool — retry them too
            exc = BrokenProcessPool("process pool died; unit resubmitted")
            for future, task in list(active.items()):
                future.cancel()
                requeue_or_fail(task, exc)
            active.clear()
            try:
                holder[0].shutdown(wait=False)
            except Exception:
                pass
            holder[0] = rebuild()
            last_progress = time.monotonic()
        submit_all(retry)


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` invocation did."""

    #: all grid rows in canonical grid order (computed + previously stored)
    rows: List[dict]
    #: trial rows produced by this invocation
    computed: int
    #: trials skipped because the store already held their keys
    skipped: int
    #: engine runs actually performed (< ``computed`` when noiseless grid
    #: points deduplicated their identical trials)
    executed: int
    elapsed_s: float
    #: seconds the parent spent programming shared states (0 with
    #: ``share_state=False`` or when everything resumed from the store)
    program_s: float = 0.0
    #: seconds spent spawning and warming a pool this call created itself
    #: (0 inline, and 0 when the caller passed a pre-warmed ``pool=``)
    pool_startup_s: float = 0.0
    #: trials recorded as structured error rows because ``keep_going`` was
    #: set and the trial exhausted its retries (0 otherwise — without
    #: ``keep_going`` a persistent failure raises instead); counted inside
    #: ``computed``, and retried by the next ``resume`` invocation
    failed: int = 0

    @property
    def trials_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf") if self.computed else 0.0
        return self.computed / self.elapsed_s


def run_sweep(
    grid: SweepGrid,
    store: SweepStore,
    workers: int = 1,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    cache=None,
    share_state: bool = True,
    pool: Optional[Executor] = None,
    chunk_size: Optional[int] = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.1,
    trial_timeout_s: Optional[float] = None,
    keep_going: bool = False,
) -> SweepOutcome:
    """Run every missing trial of ``grid``, recording rows in ``store``.

    With ``resume=True`` trials whose content keys are already stored are
    skipped (an interrupted sweep continues where it stopped; a completed
    one computes nothing — and creates no pool).  Stored *error* rows (from
    an earlier ``keep_going`` run) count as missing and are retried.
    Without ``resume`` any previous store content is discarded.
    ``workers <= 1`` runs inline — no pool, same rows.

    Crash tolerance: a failing unit of work is retried up to ``max_retries``
    times with exponential backoff starting at ``retry_backoff_s``; a worker
    death (``BrokenProcessPool``) rebuilds the pool and resubmits only the
    in-flight units; ``trial_timeout_s`` arms a stall watchdog that kills a
    pool when no unit completes within ``trial_timeout_s`` seconds per trial
    of the largest in-flight unit, recovering hangs the same way.  A unit
    that exhausts its retries aborts the sweep — unless ``keep_going`` is
    set, which records each affected trial as a structured error row
    (spec fields plus an ``"error"`` message) and carries on.

    ``share_state`` (default) programs each distinct
    ``(model, arch, mode, backend, seed)`` group once in the parent and
    reuses the snapshot for every trial — bit-identical rows, minus the
    per-trial re-programming cost; ``share_state=False`` is the legacy
    program-every-trial path.  ``cache`` (a
    :class:`~repro.engine.state.ProgrammedStateCache`) persists and reuses
    programmed states across invocations; without one, snapshots for the
    workers live in a temp directory for the duration of the call.
    ``pool`` substitutes a caller-owned (pre-warmed) executor — it is not
    shut down here, and ``pool_startup_s`` stays 0.  ``chunk_size`` caps
    trials per pool task (default: enough chunks for ~2 tasks per worker).
    """
    if workers < 0:
        raise ValueError("workers must be non-negative")
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if retry_backoff_s < 0:
        raise ValueError("retry_backoff_s must be non-negative")
    if trial_timeout_s is not None and trial_timeout_s <= 0:
        raise ValueError("trial_timeout_s must be positive (or None)")
    specs = grid.specs()
    if not resume:
        store.clear()
    known: Dict[str, dict] = store.load()
    # error rows from an earlier --keep-going run resume as *pending*: the
    # sweep retries them rather than treating a recorded failure as a result
    failed_keys = {key for key, row in known.items() if "error" in row}
    pending = [
        spec for spec in specs if spec.key not in known or spec.key in failed_keys
    ]
    skipped = len(specs) - len(pending)
    if progress and skipped:
        progress(f"resuming: {skipped} of {len(specs)} trials already stored")

    # deduplicate: noiseless trials of one grid point share a single run
    members: Dict[str, List[TrialSpec]] = {}
    work: Dict[str, TrialSpec] = {}
    for spec in pending:
        shared = _work_spec(spec)
        members.setdefault(shared.key, []).append(spec)
        work[shared.key] = shared

    done = 0
    failed = 0

    def emit(work_row: dict, dependents: List[TrialSpec]) -> None:
        nonlocal done
        for spec in dependents:
            if spec.key == work_row["key"]:
                row = work_row
            else:  # fan a shared noiseless run out to this trial's own row
                row = {**work_row, **spec.as_row()}
            store.append(row)
            known[row["key"]] = row
            done += 1
            if progress:
                progress(
                    f"trial {done}/{len(pending)} ({spec.model}, noise x{spec.noise_scale:g})"
                )

    def emit_error(shared: TrialSpec, exc: BaseException) -> None:
        """Record every trial depending on ``shared`` as a failed row."""
        nonlocal done, failed
        message = f"{type(exc).__name__}: {exc}"[:500]
        for spec in members[shared.key]:
            row = {**spec.as_row(), "error": message}
            store.append(row)
            known[row["key"]] = row
            done += 1
            failed += 1
            if progress:
                progress(f"trial {done}/{len(pending)} FAILED ({spec.model}): {message}")

    def call_with_retries(fn: Callable, *args):
        """Inline-path counterpart of the pool drain's retry policy."""
        attempts = 0
        while True:
            try:
                return fn(*args)
            except Exception:
                attempts += 1
                if attempts > max_retries:
                    raise
                if retry_backoff_s > 0:
                    time.sleep(retry_backoff_s * (2 ** (attempts - 1)))

    program_s = 0.0
    pool_startup_s = 0.0
    start = time.perf_counter()
    # a shared run whose row resumed from the store fans out without
    # re-running (error rows never fan out — their specs stayed pending)
    for key in [k for k in work if k in known and k not in failed_keys]:
        emit(known[key], members.pop(key))
        del work[key]

    if not work:
        # everything resumed (or the grid was empty): nothing to program,
        # and — crucially — no pool to pay startup for
        pass
    elif not share_state:
        # legacy path: every trial programs its own chip
        if pool is None and (workers <= 1 or len(work) == 1):
            for key, shared in work.items():
                try:
                    row = call_with_retries(run_trial, shared)
                except Exception as exc:
                    if not keep_going:
                        raise
                    emit_error(shared, exc)
                else:
                    emit(row, members[key])
        else:
            own_pool = pool is None
            original_pool = pool
            if own_pool:
                pool, pool_startup_s = warm_pool(workers)
            holder: List[Executor] = [pool]

            def rebuild() -> Executor:
                return warm_pool(max(2, workers))[0]

            def on_result(task: _PoolTask, row: dict) -> None:
                emit(row, members[task.payload.key])

            def on_failure(task: _PoolTask, exc: BaseException) -> None:
                if not keep_going:
                    raise exc
                emit_error(task.payload, exc)

            tasks = [
                _PoolTask(fn=run_trial, args=(shared,), payload=shared)
                for shared in work.values()
            ]
            try:
                _drain_pool(
                    holder,
                    rebuild,
                    tasks,
                    on_result,
                    on_failure,
                    max_retries,
                    retry_backoff_s,
                    trial_timeout_s,
                    progress,
                )
            finally:
                # a rebuilt pool is owned here even when the caller lent the
                # original (now dead) one; the original is only closed if
                # this call created it
                if own_pool or holder[0] is not original_pool:
                    holder[0].shutdown()
    else:
        from repro.engine import NetworkParams, ProgrammedStateCache
        from repro.nn.models import build_model

        # program each distinct chip configuration once, in the parent
        groups: Dict[str, List[TrialSpec]] = {}
        for shared in work.values():
            groups.setdefault(_group_key(shared), []).append(shared)
        if cache is None:
            cache = ProgrammedStateCache(memory_entries=max(4, len(groups)))
        t_program = time.perf_counter()
        states: Dict[str, tuple] = {}
        for gkey, gspecs in groups.items():
            rep = gspecs[0]
            network = build_model(rep.model)
            state, source = cache.get_or_program(network, rep.context(), rep.mode)
            states[gkey] = (state, network, NetworkParams(network, rep.seed))
            if progress:
                progress(
                    f"programmed state {state.key} ({rep.model}, "
                    f"{len(gspecs)} runs): {source}"
                )
        program_s = time.perf_counter() - t_program

        if pool is None and (workers <= 1 or len(work) == 1):
            for gkey, gspecs in groups.items():
                state, network, params = states[gkey]
                for shared in gspecs:
                    try:
                        row = call_with_retries(
                            run_trial, shared, state, network, params
                        )
                    except Exception as exc:
                        if not keep_going:
                            raise
                        emit_error(shared, exc)
                    else:
                        emit(row, members[shared.key])
        else:
            # snapshot each group's state to disk so the pool initializer /
            # run_trial_chunk can load it once per worker process
            tmpdir: Optional[str] = None
            if cache.root is None:
                tmpdir = tempfile.mkdtemp(prefix="repro-sweep-state-")
            paths: Dict[str, str] = {}
            for gkey, (state, _, _) in states.items():
                if cache.root is not None:
                    paths[gkey] = str(cache.ensure_on_disk(state))
                else:
                    paths[gkey] = str(state.save(Path(tmpdir) / state.key))
            try:
                own_pool = pool is None
                original_pool = pool
                if own_pool:
                    pool, pool_startup_s = warm_pool(workers, tuple(paths.values()))
                holder = [pool]

                def rebuild() -> Executor:
                    return warm_pool(max(2, workers), tuple(paths.values()))[0]

                def on_result(task: _PoolTask, rows: List[dict]) -> None:
                    for row, shared in zip(rows, task.payload):
                        emit(row, members[shared.key])

                def on_failure(task: _PoolTask, exc: BaseException) -> None:
                    if not keep_going:
                        raise exc
                    for shared in task.payload:
                        emit_error(shared, exc)

                # ~2 chunks per worker: coarse enough that chunk hand-off
                # (result pickling, scheduling) stays negligible next to
                # the trials, fine enough that a straggler worker can
                # still be backfilled
                size = chunk_size or max(
                    1, math.ceil(len(work) / (workers * 2 if workers else 2))
                )
                tasks = [
                    _PoolTask(
                        fn=run_trial_chunk,
                        args=(chunk, paths[gkey]),
                        payload=chunk,
                        weight=len(chunk),
                    )
                    for gkey, gspecs in groups.items()
                    for chunk in (
                        gspecs[lo : lo + size] for lo in range(0, len(gspecs), size)
                    )
                ]
                try:
                    _drain_pool(
                        holder,
                        rebuild,
                        tasks,
                        on_result,
                        on_failure,
                        max_retries,
                        retry_backoff_s,
                        trial_timeout_s,
                        progress,
                    )
                finally:
                    if own_pool or holder[0] is not original_pool:
                        holder[0].shutdown()
            finally:
                if tmpdir is not None:
                    shutil.rmtree(tmpdir, ignore_errors=True)
    elapsed = time.perf_counter() - start

    # compact: grid rows in canonical order, then any foreign rows (other
    # grids sharing the store) in key order so the file stays deterministic
    ordered = [known[spec.key] for spec in specs]
    grid_keys = {spec.key for spec in specs}
    extras = [known[key] for key in sorted(known) if key not in grid_keys]
    store.rewrite(ordered + extras)
    return SweepOutcome(
        rows=ordered,
        computed=len(pending),
        skipped=skipped,
        executed=len(work),
        elapsed_s=elapsed,
        program_s=program_s,
        pool_startup_s=pool_startup_s,
        failed=failed,
    )
