"""Parallel sweep execution through a process pool.

:func:`run_trial` is the (picklable, module-level) worker: it rebuilds the
trial's :class:`~repro.context.SimContext` from the :class:`TrialSpec`
primitives, runs one validated engine forward pass and returns a plain-dict
result row.  Because every noise draw is derived statelessly from
``(seed, salt)`` (see :mod:`repro.circuits.noise`), a worker computes
exactly the row the parent process would — worker count, scheduling order
and resume boundaries cannot change any result.

:func:`run_sweep` drives a grid through a ``ProcessPoolExecutor`` (or
inline for ``workers <= 1``), appending rows to the
:class:`~repro.sweep.store.SweepStore` as they complete and compacting the
store into canonical grid order at the end.  Noise-scale-0 grid points are
deduplicated: with no noise model attached every trial of such a point is
the same deterministic forward pass, so one engine run fans out to all of
its trials' rows.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.sweep.grid import SweepGrid, TrialSpec
from repro.sweep.store import SweepStore


def run_trial(spec: TrialSpec) -> dict:
    """Run one sweep trial and return its deterministic result row.

    The row carries the spec fields (with content key), the end-to-end
    relative error against the float reference, the per-layer relative
    errors (the error-attribution data the reducer aggregates) and the
    crossbar count — and deliberately **no** wall-clock fields, so rows are
    byte-identical across runs and worker counts.
    """
    from repro.engine import NetworkExecutor
    from repro.nn.models import build_model

    network = build_model(spec.model)
    ctx = spec.context()
    executor = NetworkExecutor(network, ctx, mode=spec.mode)
    result = executor.run(executor.random_input(), validate=True)
    row = spec.as_row()
    row["rel_error"] = result.rel_error
    row["crossbars"] = executor.crossbars
    row["layers"] = {trace.name: trace.rel_error for trace in result.traces}
    return row


def _work_spec(spec: TrialSpec) -> TrialSpec:
    """The spec whose engine run produces ``spec``'s results.

    At noise scale 0 the noise model is ``None``, and in ``"ideal"`` mode
    the exact integer read-out bypasses the noisy analog chains entirely —
    either way every trial of the grid point is the same deterministic
    forward pass, so all of them share trial 0's run: it executes once and
    its results fan out to each trial's row (rows still differ in their
    ``trial`` field and content key).
    """
    if spec.trial == 0 or (spec.noise_scale > 0 and spec.mode != "ideal"):
        return spec
    return replace(spec, trial=0)


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` invocation did."""

    #: all grid rows in canonical grid order (computed + previously stored)
    rows: List[dict]
    #: trial rows produced by this invocation
    computed: int
    #: trials skipped because the store already held their keys
    skipped: int
    #: engine runs actually performed (< ``computed`` when noiseless grid
    #: points deduplicated their identical trials)
    executed: int
    elapsed_s: float

    @property
    def trials_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf") if self.computed else 0.0
        return self.computed / self.elapsed_s


def run_sweep(
    grid: SweepGrid,
    store: SweepStore,
    workers: int = 1,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Run every missing trial of ``grid``, recording rows in ``store``.

    With ``resume=True`` trials whose content keys are already stored are
    skipped (an interrupted sweep continues where it stopped; a completed
    one computes nothing).  Without it any previous store content is
    discarded.  ``workers <= 1`` runs inline — no pool, same rows.
    """
    if workers < 0:
        raise ValueError("workers must be non-negative")
    specs = grid.specs()
    if not resume:
        store.clear()
    known: Dict[str, dict] = store.load()
    pending = [spec for spec in specs if spec.key not in known]
    skipped = len(specs) - len(pending)
    if progress and skipped:
        progress(f"resuming: {skipped} of {len(specs)} trials already stored")

    # deduplicate: noiseless trials of one grid point share a single run
    members: Dict[str, List[TrialSpec]] = {}
    work: Dict[str, TrialSpec] = {}
    for spec in pending:
        shared = _work_spec(spec)
        members.setdefault(shared.key, []).append(spec)
        work[shared.key] = shared

    done = 0

    def emit(work_row: dict, dependents: List[TrialSpec]) -> None:
        nonlocal done
        for spec in dependents:
            if spec.key == work_row["key"]:
                row = work_row
            else:  # fan a shared noiseless run out to this trial's own row
                row = {**work_row, **spec.as_row()}
            store.append(row)
            known[row["key"]] = row
            done += 1
            if progress:
                progress(
                    f"trial {done}/{len(pending)} ({spec.model}, noise x{spec.noise_scale:g})"
                )

    start = time.perf_counter()
    # a shared run whose row resumed from the store fans out without re-running
    for key in [key for key in work if key in known]:
        emit(known[key], members.pop(key))
        del work[key]
    if workers <= 1 or len(work) <= 1:
        for key, shared in work.items():
            emit(run_trial(shared), members[key])
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(run_trial, shared): key for key, shared in work.items()}
            for future in as_completed(futures):
                emit(future.result(), members[futures[future]])  # errors propagate
    elapsed = time.perf_counter() - start

    # compact: grid rows in canonical order, then any foreign rows (other
    # grids sharing the store) in key order so the file stays deterministic
    ordered = [known[spec.key] for spec in specs]
    grid_keys = {spec.key for spec in specs}
    extras = [known[key] for key in sorted(known) if key not in grid_keys]
    store.rewrite(ordered + extras)
    return SweepOutcome(
        rows=ordered,
        computed=len(pending),
        skipped=skipped,
        executed=len(work),
        elapsed_s=elapsed,
    )
