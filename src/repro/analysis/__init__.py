"""repro.analysis — AST-based invariant checker for the engine's contracts.

Run it as ``python -m repro.analysis [paths]`` (see :mod:`__main__`) or
programmatically::

    from repro.analysis import run_analysis
    report = run_analysis(["src"])
    assert not report.findings

The rules encode this repo's correctness contracts — RNG discipline,
content-key completeness, pool picklability, array-layout/dtype discipline;
each module under :mod:`repro.analysis.rules` documents the contract and
the historical bug it guards against.
"""

from __future__ import annotations

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Rule,
    SourceFile,
    collect_sources,
    load_baseline,
    run_analysis,
    write_baseline,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Rule",
    "SourceFile",
    "collect_sources",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]
