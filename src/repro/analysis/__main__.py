"""``python -m repro.analysis`` — the invariant-checker CLI.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

Examples::

    python -m repro.analysis src                 # full run, text output
    python -m repro.analysis src --json          # machine-readable report
    python -m repro.analysis src --rules rng-discipline,layout-discipline
    python -m repro.analysis src --baseline analysis-baseline.json
    python -m repro.analysis src --baseline b.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import Rule, load_baseline, run_analysis, write_baseline
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant checker: RNG discipline, content-key "
            "completeness, pool picklability, array-layout/dtype discipline."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of text",
    )
    parser.add_argument(
        "--rules",
        metavar="NAMES",
        help="comma-separated subset of rules to run (see --list-rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered finding fingerprints",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline and exit 0",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return list(ALL_RULES)
    rules: List[Rule] = []
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        if name not in RULES_BY_NAME:
            known = ", ".join(sorted(RULES_BY_NAME))
            raise SystemExit(f"error: unknown rule '{name}' (known: {known})")
        rules.append(RULES_BY_NAME[name])
    if not rules:
        raise SystemExit("error: --rules selected no rules")
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}: {rule.description}")
        return 0

    try:
        rules = _select_rules(args.rules)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_analysis(args.paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.baseline, report.findings)
        print(f"wrote {count} fingerprint(s) to {args.baseline}")
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files} file(s)"
        )
        extras = []
        if report.suppressed:
            extras.append(f"{report.suppressed} inline-allowed")
        if report.baselined:
            extras.append(f"{report.baselined} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        print(summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
