"""Rule ``layout-discipline``: packed payloads keep layout and precision.

Contract (from the PR-7 layout-discard bugfix and the pinned-float64
digital-recombination design in ``engine/packed.py``):

* a packed payload array (bit-sliced codes, programmed conductances) must
  never pass through ``np.ascontiguousarray``/``np.asfortranarray`` — those
  silently re-copy the array into one fixed order and throw away the
  F-order layout the executor arranged for BLAS;
* ``payload.astype(...)`` must carry ``order="K"`` so the cast preserves
  whatever layout the payload has;
* the digital recombination of slice products is pinned to float64 —
  narrowing casts (``float32``/``float16``) on payload or recombination
  arrays are findings (compute_dtype selection happens upstream, once).

The rule is name-driven: it watches a closed set of payload/recombination
identifiers used by the engine.  Receivers that are calls
(``np.ascontiguousarray(x @ y)``) are out of scope — only named payloads
carry the invariant.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro.analysis.core import Finding, ImportMap, Rule, SourceFile, dotted, leaf_name

#: identifiers that hold packed payloads (bit-sliced codes / conductances)
PAYLOAD_NAMES: Set[str] = {
    "q",
    "encoded",
    "encoded_flat",
    "_encoded",
    "conductances",
    "slice_conductances",
    "_conductances",
    "payload",
}

#: identifiers in the pinned-float64 digital-recombination region
RECOMBINATION_NAMES: Set[str] = {
    "products",
    "shifts",
    "correction",
    "estimates",
}

#: dtype leaves that narrow below the pinned float64 accumulator
NARROWING_DTYPES = {"float32", "float16", "half", "single"}

#: layout-discarding copy constructors
COPY_FUNCS = {"numpy.ascontiguousarray", "numpy.asfortranarray"}


def _receiver_name(node: ast.AST) -> Optional[str]:
    """The payload identifier of a receiver expression, if it has one.

    Unwraps subscripts so ``conductances[sel].astype(...)`` and
    ``self._encoded.astype(...)`` both resolve; Call receivers return None
    (a freshly computed temporary carries no layout contract).
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    return leaf_name(node)


def _dtype_leaf(call: ast.Call) -> Optional[str]:
    """The dtype identifier an ``astype`` call casts to, if resolvable."""
    node: Optional[ast.AST] = call.args[0] if call.args else None
    for kw in call.keywords:
        if kw.arg == "dtype":
            node = kw.value
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return leaf_name(node)


def _order_kw(call: ast.Call) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == "order" and isinstance(kw.value, ast.Constant):
            return str(kw.value.value)
    return None


class LayoutDisciplineRule(Rule):
    name = "layout-discipline"
    description = (
        'packed payloads keep their layout (astype(..., order="K"), no '
        "ascontiguousarray) and recombination stays float64"
    )

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for source in files:
            imports = ImportMap(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                findings.extend(self._check_copy(source, node, imports))
                findings.extend(self._check_astype(source, node))
        return findings

    def _check_copy(
        self, source: SourceFile, call: ast.Call, imports: ImportMap
    ) -> List[Finding]:
        target = dotted(call.func, imports)
        if target not in COPY_FUNCS or not call.args:
            return []
        name = _receiver_name(call.args[0])
        if name not in PAYLOAD_NAMES:
            return []
        short = target.replace("numpy.", "np.")
        return [
            Finding(
                rule=self.name,
                path=source.rel,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"{short} on packed payload '{name}' discards its "
                    f"arranged memory layout (the PR-7 F-order bug); cast "
                    f'with astype(..., order="K") or keep the view'
                ),
            )
        ]

    def _check_astype(self, source: SourceFile, call: ast.Call) -> List[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return []
        name = _receiver_name(func.value)
        if name is None:
            return []
        findings: List[Finding] = []
        if name in PAYLOAD_NAMES:
            order = _order_kw(call)
            if order != "K":
                hint = (
                    f'order="{order}" forces a fixed layout'
                    if order is not None
                    else "the default order='K' is only implicit for copies "
                    "of same-kind dtypes; state it"
                )
                findings.append(
                    Finding(
                        rule=self.name,
                        path=source.rel,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"astype on packed payload '{name}' without "
                            f'order="K" — {hint}; a silent C-order copy '
                            f"changes BLAS summation order and breaks "
                            f"bit-identical replay"
                        ),
                    )
                )
        if name in PAYLOAD_NAMES or name in RECOMBINATION_NAMES:
            dtype = _dtype_leaf(call)
            if dtype in NARROWING_DTYPES:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=source.rel,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"dtype-narrowing cast to {dtype} on '{name}' — "
                            f"digital recombination of slice products is "
                            f"pinned to float64; select compute_dtype "
                            f"upstream instead of casting here"
                        ),
                    )
                )
        return findings
