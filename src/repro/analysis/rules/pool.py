"""Rule ``pool-picklability``: everything crossing the pool is frozen.

Contract (from the sweep fabric in ``repro.sweep.pool``): objects shipped
through a process-pool boundary are pickled in the parent and rebuilt in
the worker — mutation in either process is invisible to the other, and
unpicklable callables surface only at runtime as a ``BrokenProcessPool``.
So every submission site must ship:

* a *module-level* function (lambdas and nested closures don't pickle),
* whose annotated parameters are frozen dataclasses, builtins, or
  allowlisted immutable types.

Checked submission sites: ``executor.submit(fn, ...)``,
``executor.map(fn, ...)`` (only in files that import
``concurrent.futures``/``multiprocessing``), the
``ProcessPoolExecutor(initializer=...)`` keyword, and
``_PoolTask(fn=..., ...)`` constructions (the sweep fabric's resubmittable
unit).  Unannotated parameters and dynamic callables (``task.fn``) are out
of scope — the static contract is enforced where the task is *built*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ImportMap, Rule, SourceFile, leaf_name

#: annotation identifiers that are always pool-safe
SAFE_TYPE_NAMES: Set[str] = {
    # builtins / stdlib immutables
    "str", "int", "float", "bool", "bytes", "complex", "frozenset",
    "None", "NoneType", "object", "Path",
    # containers-of-safe-things and typing wrappers (the wrapped names are
    # checked independently when they resolve to analyzed classes)
    "dict", "list", "tuple", "set",
    "Dict", "List", "Tuple", "Set", "FrozenSet", "Sequence", "Iterable",
    "Mapping", "MutableMapping", "Optional", "Union", "Any", "Callable",
    "Literal", "Annotated", "Type",
    # numpy arrays pickle by value; shipping them is a bandwidth choice,
    # not a correctness bug
    "ndarray", "NDArray", "dtype",
}

_POOL_MODULES = ("concurrent.futures", "multiprocessing")


@dataclass
class _ClassInfo:
    frozen_dataclass: bool
    line: int
    path: str


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call) and leaf_name(deco.func) == "dataclass":
            for kw in deco.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _annotation_names(node: ast.AST) -> Set[str]:
    """Every class-ish identifier mentioned in an annotation expression.

    ``Sequence[TrialSpec]`` yields ``{"Sequence", "TrialSpec"}``; quoted
    forward references are parsed recursively.
    """
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                names |= _annotation_names(ast.parse(sub.value, mode="eval").body)
            except SyntaxError:
                pass
    return names


def _imports_pool_module(imports: ImportMap) -> bool:
    return any(
        resolved.startswith(prefix)
        for resolved in imports.aliases.values()
        for prefix in _POOL_MODULES
    )


class PoolPicklabilityRule(Rule):
    name = "pool-picklability"
    description = (
        "pool submission sites ship module-level functions whose annotated "
        "parameters are frozen dataclasses or allowlisted immutable types"
    )

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        classes: Dict[str, _ClassInfo] = {}
        module_funcs: Dict[Tuple[str, str], ast.FunctionDef] = {}
        nested_funcs: Dict[str, Set[str]] = {}
        for source in files:
            top_level: Set[str] = set()
            for stmt in source.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    top_level.add(stmt.name)
                    if isinstance(stmt, ast.FunctionDef):
                        module_funcs[(source.rel, stmt.name)] = stmt
            nested: Set[str] = set()
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    info = _ClassInfo(
                        frozen_dataclass=_is_frozen_dataclass(node),
                        line=node.lineno,
                        path=source.rel,
                    )
                    # first definition wins; fixtures and src are analyzed
                    # in separate runs so collisions don't arise in practice
                    classes.setdefault(node.name, info)
                elif (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name not in top_level
                ):
                    nested.add(node.name)
            nested_funcs[source.rel] = nested

        findings: List[Finding] = []
        reported: Set[Tuple[str, str, str]] = set()
        for source in files:
            imports = ImportMap(source.tree)
            uses_pools = _imports_pool_module(imports)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                for callable_node in self._submitted_callables(node, uses_pools):
                    findings.extend(
                        self._check_callable(
                            source,
                            callable_node,
                            classes,
                            module_funcs,
                            nested_funcs[source.rel],
                            reported,
                        )
                    )
        return findings

    @staticmethod
    def _submitted_callables(call: ast.Call, uses_pools: bool) -> List[ast.AST]:
        out: List[ast.AST] = []
        func_leaf = leaf_name(call.func)
        if (
            uses_pools
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in ("submit", "map")
            and call.args
        ):
            out.append(call.args[0])
        if func_leaf == "ProcessPoolExecutor":
            for kw in call.keywords:
                if kw.arg == "initializer":
                    out.append(kw.value)
        if func_leaf == "_PoolTask":
            for kw in call.keywords:
                if kw.arg == "fn":
                    out.append(kw.value)
            if call.args:
                out.append(call.args[0])
        return out

    def _check_callable(
        self,
        source: SourceFile,
        node: ast.AST,
        classes: Dict[str, _ClassInfo],
        module_funcs: Dict[Tuple[str, str], ast.FunctionDef],
        nested: Set[str],
        reported: Set[Tuple[str, str, str]],
    ) -> List[Finding]:
        if isinstance(node, ast.Lambda):
            return [
                Finding(
                    rule=self.name,
                    path=source.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "lambda shipped across the process boundary — "
                        "lambdas don't pickle and die as BrokenProcessPool; "
                        "use a module-level worker function"
                    ),
                )
            ]
        if not isinstance(node, ast.Name):
            # dynamic dispatch (task.fn, methods): checked where the task
            # object is constructed, not where it is re-submitted
            return []
        name = node.id
        if name in nested and (source.rel, name) not in module_funcs:
            return [
                Finding(
                    rule=self.name,
                    path=source.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"nested function '{name}' shipped across the "
                        f"process boundary — closures don't pickle; hoist "
                        f"it to module level"
                    ),
                )
            ]
        worker = module_funcs.get((source.rel, name))
        if worker is None:
            return []
        findings: List[Finding] = []
        params = list(worker.args.args) + list(worker.args.kwonlyargs)
        for param in params:
            if param.annotation is None:
                continue
            for type_name in sorted(_annotation_names(param.annotation)):
                if type_name in SAFE_TYPE_NAMES:
                    continue
                info = classes.get(type_name)
                if info is None or info.frozen_dataclass:
                    continue
                key = (source.rel, name, f"{param.arg}:{type_name}")
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=source.rel,
                        line=worker.lineno,
                        col=worker.col_offset,
                        message=(
                            f"pool worker '{name}' ships parameter "
                            f"'{param.arg}: {type_name}' across the process "
                            f"boundary but {type_name} "
                            f"({info.path}:{info.line}) is not a frozen "
                            f"dataclass — worker-side mutation would "
                            f"silently diverge from the parent"
                        ),
                    )
                )
        return findings
