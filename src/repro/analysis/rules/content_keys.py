"""Rule ``content-key-completeness``: every numeric knob reaches the keys.

Contract (from the PR-7 ``compute_dtype`` near-miss): the engine caches
programmed chip states and sweep rows under *content keys*.  Any dataclass
field that can change programmed numerics but is absent from the keys makes
two different configurations alias the same cache entry — float32 campaigns
silently replaying cached float64 states was the founding example.

The rule introspects the dataclass fields of the four key-bearing specs and
cross-references them against their derivations:

* ``ArchSpec``/``SimContext`` fields must reach
  :func:`repro.engine.state.state_key` (as a parameter or an attribute
  read),
* ``TrialSpec`` fields must all feed the trial content key (``asdict`` of
  the frozen spec counts as full coverage) *and* appear in the sweep
  ``_group_key`` (which decides which trials may share one programmed
  state),
* ``FaultModel`` fields must have a sweep counterpart (a keyword in the
  ``FaultModel(...)`` construction inside ``TrialSpec.context``).

Escapes, each requiring a stated reason:

* ``field(..., compare=False)`` — the dataclass itself declares the field
  equality-irrelevant (``spare_rows``: run-time repair budget, remap never
  changes programmed bytes); auto-exempt,
* an entry in :data:`ALLOWLIST` below,
* an inline ``# analysis: allow=content-key-completeness`` comment on the
  field.

Each check only runs when its cross-reference target is present in the
analyzed file set, so fixtures and partial trees can exercise single
contracts in isolation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Rule, SourceFile, leaf_name

#: (class, field) -> reason why the field may stay out of the keys.
#: Every entry is a *documented design decision*; deleting one re-arms the
#: checker for that field.
ALLOWLIST: Dict[Tuple[str, str], str] = {
    ("SimContext", "accelerator"): (
        "event-time pricing only; never touches programmed numerics"
    ),
    ("SimContext", "noise"): (
        "programmed states are noise-free by design; per-trial noise is "
        "wired at execution time"
    ),
    ("SimContext", "chunk_bytes"): (
        "chunked read-out is a working-set bound; results are bit-identical "
        "at any chunking"
    ),
    ("SimContext", "faults"): (
        "faults are injected at executor wiring time; cached states stay "
        "fault-free"
    ),
    ("TrialSpec", "noise_scale"): (
        "programmed states are noise-free; every noise scale shares one "
        "state (program-once design)"
    ),
    ("TrialSpec", "trial"): (
        "trials share one programming; per-trial decorrelation derives from "
        "(seed, 'trial', trial) at wiring time"
    ),
    ("TrialSpec", "stuck_fraction"): (
        "faults are wired at execution; programmed states stay fault-free"
    ),
    ("FaultModel", "drift_nu"): (
        "run-CLI knob, not a sweep axis; add a TrialSpec field before "
        "sweeping it"
    ),
    ("FaultModel", "drift_time_s"): (
        "run-CLI knob, not a sweep axis; add a TrialSpec field before "
        "sweeping it"
    ),
    ("FaultModel", "drift_t0_s"): (
        "run-CLI knob, not a sweep axis; add a TrialSpec field before "
        "sweeping it"
    ),
    ("FaultModel", "readout_saturation"): (
        "run-CLI knob, not a sweep axis; add a TrialSpec field before "
        "sweeping it"
    ),
    ("FaultModel", "remap_threshold"): (
        "repair heuristic applied after programming; does not key the "
        "faulted state"
    ),
}


@dataclass
class _Field:
    name: str
    line: int
    col: int
    compare_excluded: bool


def _class_fields(node: ast.ClassDef) -> List[_Field]:
    """The dataclass fields of ``node`` (AnnAssign statements).

    Underscore-prefixed and ``ClassVar`` entries are skipped;
    ``field(..., compare=False)`` marks the field equality-irrelevant and
    therefore exempt from key completeness.
    """
    fields: List[_Field] = []
    for stmt in node.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation_names = {
            leaf_name(sub)
            for sub in ast.walk(stmt.annotation)
            if leaf_name(sub) is not None
        }
        if "ClassVar" in annotation_names:
            continue
        compare_excluded = False
        value = stmt.value
        if isinstance(value, ast.Call) and leaf_name(value.func) == "field":
            for kw in value.keywords:
                if (
                    kw.arg == "compare"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                ):
                    compare_excluded = True
        fields.append(
            _Field(
                name=name,
                line=stmt.lineno,
                col=stmt.col_offset,
                compare_excluded=compare_excluded,
            )
        )
    return fields


def _find_class(
    files: Sequence[SourceFile], name: str
) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
    for source in files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return source, node
    return None


def _find_function(
    files: Sequence[SourceFile], name: str
) -> Optional[ast.FunctionDef]:
    for source in files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
    return None


def _attribute_reads(fn: ast.FunctionDef, of: Optional[str] = None) -> Set[str]:
    """Attribute names read inside ``fn`` (optionally only ``of.<attr>``)."""
    reads: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            if of is None or (
                isinstance(node.value, ast.Name) and node.value.id == of
            ):
                reads.add(node.attr)
    return reads


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


class ContentKeyCompletenessRule(Rule):
    name = "content-key-completeness"
    description = (
        "every SimContext/ArchSpec/TrialSpec/FaultModel field reaches "
        "state_key/trial keys/_group_key or is allowlisted with a reason"
    )

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        state_key = _find_function(files, "state_key")
        group_key = _find_function(files, "_group_key")

        if state_key is not None:
            key_params = {arg.arg for arg in state_key.args.args}
            key_reads = _attribute_reads(state_key)
            covered = key_params | key_reads
            for class_name, derivation in (
                ("ArchSpec", "state_key()"),
                ("SimContext", "state_key()"),
            ):
                found = _find_class(files, class_name)
                if found is None:
                    continue
                source, node = found
                findings.extend(
                    self._missing(
                        source, class_name, _class_fields(node), covered, derivation,
                        consequence=(
                            "cached programmed states would alias across "
                            "configurations that differ only in this field"
                        ),
                    )
                )

        trial = _find_class(files, "TrialSpec")
        if trial is not None:
            source, node = trial
            fields = _class_fields(node)
            findings.extend(self._check_trial_key(source, node, fields))
            if group_key is not None:
                spec_param = (
                    group_key.args.args[0].arg if group_key.args.args else None
                )
                reads = _attribute_reads(group_key, of=spec_param)
                findings.extend(
                    self._missing(
                        source, "TrialSpec", fields, reads, "the sweep _group_key",
                        consequence=(
                            "trials differing only in this field would share "
                            "one programmed state"
                        ),
                    )
                )
            findings.extend(self._check_fault_model(files, node))
        return findings

    def _missing(
        self,
        source: SourceFile,
        class_name: str,
        fields: Sequence[_Field],
        covered: Set[str],
        derivation: str,
        consequence: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for field in fields:
            if field.compare_excluded:
                continue
            if (class_name, field.name) in ALLOWLIST:
                continue
            if field.name in covered:
                continue
            findings.append(
                Finding(
                    rule=self.name,
                    path=source.rel,
                    line=field.line,
                    col=field.col,
                    message=(
                        f"{class_name}.{field.name} is absent from "
                        f"{derivation} — {consequence}; add it to the key, "
                        f"mark it field(compare=False), or allowlist it "
                        f"with a reason in repro.analysis.rules.content_keys"
                    ),
                )
            )
        return findings

    def _check_trial_key(
        self, source: SourceFile, node: ast.ClassDef, fields: Sequence[_Field]
    ) -> List[Finding]:
        key = _method(node, "key")
        if key is None:
            return []
        body_calls = {
            leaf_name(sub.func)
            for sub in ast.walk(key)
            if isinstance(sub, ast.Call)
        }
        if "asdict" in body_calls:
            # asdict(self) serialises every field — structurally complete,
            # new fields are picked up automatically
            return []
        reads = _attribute_reads(key, of="self")
        return self._missing(
            source, "TrialSpec", fields, reads, "TrialSpec.key",
            consequence=(
                "the sweep store would treat trials differing only in this "
                "field as the same row"
            ),
        )

    def _check_fault_model(
        self, files: Sequence[SourceFile], trial_node: ast.ClassDef
    ) -> List[Finding]:
        fault = _find_class(files, "FaultModel")
        if fault is None:
            return []
        construction_kwargs: Set[str] = set()
        seen = False
        for sub in ast.walk(trial_node):
            if isinstance(sub, ast.Call) and leaf_name(sub.func) == "FaultModel":
                seen = True
                construction_kwargs |= {
                    kw.arg for kw in sub.keywords if kw.arg is not None
                }
        if not seen:
            return []
        source, node = fault
        return self._missing(
            source, "FaultModel", _class_fields(node), construction_kwargs,
            "the TrialSpec fault-model construction",
            consequence=(
                "sweeps could not key on this fault knob and rows would "
                "collide"
            ),
        )
