"""Rule ``kernel-dispatch``: hot paths reach kernels only through dispatch.

Contract (from the PR-10 kernel subsystem in ``repro.kernels``): the
implementation tiers — ``repro.kernels.numpy_impl``, ``repro.kernels.c_impl``,
``repro.kernels.numba_impl`` — are interchangeable backends behind one
dispatcher.  The dispatcher owns tier probing, availability caching, the
``REPRO_KERNEL``/``SimContext.kernel`` override order and the guarantee that
a missing compiler degrades to the numpy reference instead of raising.  A
module that imports an implementation directly bypasses all of that: it
hard-fails where dispatch would fall back, ignores the user's tier override,
and silently pins results to one backend.

So: outside the ``repro/kernels/`` package itself, only
``repro.kernels.dispatch`` (or the ``repro.kernels`` package re-exports) may
be imported.  Absolute imports are checked; the kernels package's own
modules are exempt (the dispatcher must import its tiers, and the tiers may
delegate to each other's reference paths).
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from repro.analysis.core import Finding, Rule, SourceFile

#: implementation modules private to the dispatcher
IMPL_MODULES: Set[str] = {"numpy_impl", "c_impl", "numba_impl"}

_PACKAGE = "repro.kernels"


def _impl_of(dotted: str) -> str:
    """The implementation module a dotted import path reaches, or ``""``."""
    if not dotted.startswith(_PACKAGE + "."):
        return ""
    leaf = dotted[len(_PACKAGE) + 1 :].split(".", 1)[0]
    return leaf if leaf in IMPL_MODULES else ""


def _is_kernels_module(rel: str) -> bool:
    parts = rel.replace("\\", "/").split("/")
    return "kernels" in parts[:-1]


class KernelDispatchRule(Rule):
    name = "kernel-dispatch"
    description = (
        "kernel implementation modules are imported only by the dispatcher; "
        "hot paths go through repro.kernels.dispatch"
    )

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for source in files:
            if _is_kernels_module(source.rel):
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        impl = _impl_of(alias.name)
                        if impl:
                            findings.append(self._finding(source, node, impl))
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    module = node.module or ""
                    impl = _impl_of(module)
                    if impl:
                        findings.append(self._finding(source, node, impl))
                        continue
                    if module == _PACKAGE:
                        for alias in node.names:
                            if alias.name in IMPL_MODULES:
                                findings.append(
                                    self._finding(source, node, alias.name)
                                )
        return findings

    def _finding(self, source: SourceFile, node: ast.stmt, impl: str) -> Finding:
        return Finding(
            rule=self.name,
            path=source.rel,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"direct import of kernel implementation "
                f"'repro.kernels.{impl}' — go through repro.kernels.dispatch "
                f"so tier probing, REPRO_KERNEL overrides and the numpy "
                f"fallback keep working"
            ),
        )
