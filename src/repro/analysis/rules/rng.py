"""Rule ``rng-discipline``: every Generator derives its entropy reproducibly.

Contract (from the PR-4 shared-mutable-RNG bug): randomness in ``src/`` must
be *stateless and seed-derived*.  A ``np.random.default_rng`` /
``np.random.Generator`` construction is clean only when its entropy comes
from an approved derivation:

* ``stable_seed(...)`` (SHA-256, process-stable — ``repro.circuits.noise``),
* a ``(seed, salt)`` tuple literal (numpy folds it through SeedSequence),
* ``np.random.SeedSequence(...)``, or a scoped helper such as
  ``ctx.rng(salt)`` / ``NoiseStream`` streams / ``cfg.derived_rng(...)``.

Findings:

* ``default_rng()`` with no argument — OS entropy, unreproducible;
* ``default_rng(0)`` / ``default_rng(seed_var)`` — bare entropy that
  collides with every other site using the same integer;
* any call into the *global* ``np.random.*`` state (``np.random.seed``,
  ``np.random.normal``, ...) — shared mutable state across the process.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from repro.analysis.core import Finding, ImportMap, Rule, SourceFile, dotted, leaf_name

#: constructors whose entropy argument is checked
GENERATOR_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
}

#: functions on the legacy *global* RNG state — always findings
GLOBAL_STATE_CALLS = {
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random_integers",
    "random", "random_sample", "ranf", "sample", "bytes",
    "normal", "standard_normal", "uniform", "choice",
    "shuffle", "permutation", "binomial", "poisson",
    "exponential", "gamma", "beta", "lognormal", "laplace",
}

#: call leaves accepted as entropy derivations anywhere inside the seed
#: expression (``stable_seed``, ``np.random.SeedSequence(entropy)``,
#: ``ctx.rng(salt)``, ``stream.spawn()``, ``cfg.derived_rng(...)``)
APPROVED_SEED_HELPERS = {
    "stable_seed",
    "SeedSequence",
    "derived_rng",
    "rng",
    "stream",
    "spawn",
}


def _seed_is_derived(arg: ast.AST) -> bool:
    """True when the entropy expression contains an approved derivation."""
    for node in ast.walk(arg):
        if isinstance(node, ast.Tuple):
            # (seed, salt) entropy pairs are the approved inline form
            return True
        if isinstance(node, ast.Call):
            leaf = leaf_name(node.func)
            if leaf in APPROVED_SEED_HELPERS:
                return True
    return False


class RngDisciplineRule(Rule):
    name = "rng-discipline"
    description = (
        "np.random generators must derive entropy via stable_seed/(seed, salt)/"
        "SeedSequence; global np.random state is forbidden"
    )

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        for source in files:
            imports = ImportMap(source.tree)
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = dotted(node.func, imports)
                if target in GENERATOR_FACTORIES:
                    finding = self._check_factory(source, node, target)
                    if finding is not None:
                        findings.append(finding)
                elif target is not None and self._is_global_state(target):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=source.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"call into the global numpy RNG state "
                                f"({target}) — shared mutable state made PR-4 "
                                f"noise draws order-dependent; use "
                                f"default_rng(stable_seed(...)) or a "
                                f"NoiseStream instead"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _is_global_state(target: str) -> bool:
        if not target.startswith("numpy.random."):
            return False
        return target.rsplit(".", 1)[1] in GLOBAL_STATE_CALLS

    def _check_factory(
        self, source: SourceFile, call: ast.Call, target: Optional[str]
    ) -> Optional[Finding]:
        short = (target or "default_rng").replace("numpy.", "np.")
        if not call.args:
            return Finding(
                rule=self.name,
                path=source.rel,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"{short}() without a seed draws OS entropy — the run "
                    f"cannot be reproduced; derive via stable_seed(...) or a "
                    f"(seed, salt) pair"
                ),
            )
        seed = call.args[0]
        if _seed_is_derived(seed):
            return None
        if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
            detail = f"a bare integer seed ({seed.value})"
        else:
            detail = f"an underived seed expression ({ast.unparse(seed)})"
        return Finding(
            rule=self.name,
            path=source.rel,
            line=call.lineno,
            col=call.col_offset,
            message=(
                f"{short} seeded with {detail} — bare entropy collides "
                f"across sites and salts nothing; derive via "
                f"stable_seed(...), a (seed, salt) tuple, or "
                f"SeedSequence (see repro.circuits.noise)"
            ),
        )
