"""Rule registry of the invariant checker.

Each rule module turns one historical bug class into a machine-checked
contract; :data:`ALL_RULES` is the default set run by
``python -m repro.analysis`` and :func:`repro.analysis.run_analysis`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import Rule
from repro.analysis.rules.content_keys import ContentKeyCompletenessRule
from repro.analysis.rules.kernel_dispatch import KernelDispatchRule
from repro.analysis.rules.layout import LayoutDisciplineRule
from repro.analysis.rules.pool import PoolPicklabilityRule
from repro.analysis.rules.rng import RngDisciplineRule

ALL_RULES: List[Rule] = [
    RngDisciplineRule(),
    ContentKeyCompletenessRule(),
    PoolPicklabilityRule(),
    LayoutDisciplineRule(),
    KernelDispatchRule(),
]

RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_NAME",
    "ContentKeyCompletenessRule",
    "KernelDispatchRule",
    "LayoutDisciplineRule",
    "PoolPicklabilityRule",
    "RngDisciplineRule",
]
