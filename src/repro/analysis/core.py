"""AST visitor core of the invariant checker: files, findings, baselines.

The checker exists because this repo's hardest bugs were *invariant
violations that type-check and pass unit tests*: the PR-4 shared-mutable-RNG
bug (noise draws depended on construction order), the PR-7 content-key
near-miss (``compute_dtype`` had to be threaded by hand into every key to
stop float32 campaigns aliasing cached float64 states) and the PR-7
``np.ascontiguousarray`` layout-discard bug.  Each rule in
:mod:`repro.analysis.rules` turns one of those bug classes into a
machine-checked contract.

This module is dependency-free (stdlib ``ast`` only) and deliberately knows
nothing about the individual rules.  It provides:

* :class:`SourceFile` — a parsed file plus its root-relative path (the
  stable coordinate findings and baselines key on),
* :class:`ImportMap` / :func:`dotted` — shared import/alias resolution, so
  every rule sees ``np.random.default_rng``, ``numpy.random.default_rng``
  and ``from numpy.random import default_rng as dr`` as the same target,
* :class:`Finding` with a line-independent fingerprint (rule + path +
  message), so a committed baseline survives unrelated edits that shift
  line numbers,
* :func:`run_analysis` — load files, run rules, apply inline
  ``# analysis: allow=<rule>`` suppressions and an optional baseline.

Inline suppression: a finding is dropped when its source line contains
``analysis: allow=<rule-name>`` (or ``analysis: allow=*``), normally in a
trailing comment together with the reason::

    rng = np.random.default_rng(0)  # analysis: allow=rng-discipline -- demo

Baselines are JSON documents ``{"version": 1, "suppress": [fingerprints]}``
written by ``python -m repro.analysis --baseline FILE --write-baseline``:
they grandfather existing findings while any *new* finding still fails.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

#: inline-suppression marker (see module docstring)
ALLOW_MARK = "analysis: allow="

#: the pseudo-rule unparseable files are reported under
PARSE_RULE = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a source location."""

    rule: str
    path: str  # root-relative posix path (stable across machines)
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable id of this finding for baselines.

        Line/column are deliberately excluded so a baseline entry survives
        unrelated edits that shift the finding around the file; the message
        carries the violating identifier, which keeps distinct violations
        distinct.
        """
        raw = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed Python source file plus its scan-root-relative path."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    lines: List[str]

    @classmethod
    def parse(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, rel=rel, text=text, tree=tree, lines=text.splitlines())


class ImportMap:
    """Local name -> fully-dotted module/object path, for one file.

    Function-local imports count too (this codebase imports heavyweight
    modules lazily inside functions), so the map is scope-insensitive — a
    deliberate over-approximation that is fine for invariant checking.
    """

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, name: str) -> Optional[str]:
        return self.aliases.get(name)


def dotted(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """The fully-resolved dotted path of a Name/Attribute chain, or None.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``"numpy.random.default_rng"``; a bare ``default_rng`` imported via
    ``from numpy.random import default_rng`` resolves to the same string.
    Unresolvable roots stay as written (e.g. a local variable name).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.resolve(node.id) or node.id)
    return ".".join(reversed(parts))


def leaf_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``a.b.c`` -> ``"c"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule:
    """Base class of one invariant rule (see :mod:`repro.analysis.rules`)."""

    #: stable rule id used in output, allow-comments and ``--rules``
    name: str = ""
    #: one-line contract statement shown by ``--list-rules``
    description: str = ""

    def check(self, files: Sequence[SourceFile]) -> List[Finding]:
        raise NotImplementedError


@dataclass
class AnalysisReport:
    """Everything one :func:`run_analysis` invocation produced."""

    findings: List[Finding]
    files: int
    rules: List[str]
    suppressed: int = 0
    baselined: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.to_dict() for finding in self.findings],
            "counts": self.counts,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def collect_sources(
    paths: Iterable[Union[str, Path]],
) -> Tuple[List[SourceFile], List[Finding]]:
    """Load every ``.py`` file under ``paths`` (files or directories).

    Relative paths of findings are taken against each scanned root, so a
    baseline written from ``python -m repro.analysis src`` is stable across
    checkouts.  Unparseable files become :data:`PARSE_RULE` findings instead
    of aborting the run — a syntax error must not hide every other finding.
    """
    discovered: List[Tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            discovered.append((root, root.name))
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                rel = path.relative_to(root)
                if any(part.startswith(".") for part in rel.parts):
                    continue
                discovered.append((path, rel.as_posix()))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    sources: List[SourceFile] = []
    failures: List[Finding] = []
    for path, rel in discovered:
        try:
            sources.append(SourceFile.parse(path, rel))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    rule=PARSE_RULE,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
    return sources, failures


def _suppressed(finding: Finding, by_rel: Dict[str, SourceFile]) -> bool:
    source = by_rel.get(finding.path)
    if source is None or not (1 <= finding.line <= len(source.lines)):
        return False
    line = source.lines[finding.line - 1]
    return (
        f"{ALLOW_MARK}{finding.rule}" in line or f"{ALLOW_MARK}*" in line
    )


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """The suppressed-fingerprint set of a baseline file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or not isinstance(doc.get("suppress"), list):
        raise ValueError(f"{path} is not a baseline ({{'version', 'suppress'}})")
    return {str(entry) for entry in doc["suppress"]}


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> int:
    """Write ``findings`` as a baseline; returns the entry count."""
    fingerprints = sorted({finding.fingerprint for finding in findings})
    doc = {"version": 1, "suppress": fingerprints}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)


def run_analysis(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run ``rules`` (default: all registered) over ``paths``.

    Findings are sorted by location; inline ``analysis: allow=`` comments
    and ``baseline`` fingerprints are applied here so every entry point
    (CLI, tests, CI) shares one suppression semantics.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    sources, findings = collect_sources(paths)
    for rule in rules:
        findings.extend(rule.check(sources))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))

    by_rel = {source.rel: source for source in sources}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if _suppressed(finding, by_rel):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = 0
    if baseline is not None:
        allowed = set(baseline)
        fresh = [f for f in kept if f.fingerprint not in allowed]
        baselined = len(kept) - len(fresh)
        kept = fresh

    return AnalysisReport(
        findings=kept,
        files=len(sources),
        rules=[rule.name for rule in rules],
        suppressed=suppressed,
        baselined=baselined,
    )
