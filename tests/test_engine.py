"""Functional-engine tests: end-to-end crossbar execution vs the float
reference, tile-level integer exactness, context threading and the
vectorized-kernel micro-benchmark required by the engine."""

import time

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import ArchSpec, SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    NetworkParams,
    TiledMatmul,
    reference_forward,
    reference_forward_batch,
    run_network,
    validate_sequential,
)
from repro.nn import functional as F
from repro.nn.models import build_model

RNG = np.random.default_rng(7)

#: the paper's ISAAC-comparison precision: 16-bit weights on four 4-bit
#: cell slices, 16-bit inputs — the configuration the accuracy claim targets
ISAAC_PRECISION = ArchSpec(weight_bits=16, input_bits=16)


# ---------------------------------------------------------------------------
# tile-level execution
# ---------------------------------------------------------------------------

def test_tiled_matmul_matches_integer_matmul_across_tiles():
    """A matrix spanning several row and column tiles recombines exactly."""
    arch = ArchSpec(rows=16, cols=16)  # 8 weights per col tile
    ctx = SimContext(arch=arch)
    q = RNG.integers(-127, 128, size=(40, 20))  # 3 row tiles x 3 col tiles
    codes = RNG.integers(0, 256, size=(5, 40))
    tiled = TiledMatmul(q, ctx, mode="analog")
    assert tiled.row_tiles == 3 and tiled.col_tiles == 3
    assert tiled.crossbars == 9
    result = tiled.matmul(codes)
    np.testing.assert_allclose(result, codes @ q, rtol=1e-9, atol=1e-6)


def test_tiled_matmul_ideal_mode_is_exact():
    ctx = SimContext(arch=ArchSpec(rows=32, cols=32))
    q = RNG.integers(-127, 128, size=(50, 10))
    codes = RNG.integers(0, 256, size=(4, 50))
    tiled = TiledMatmul(q, ctx, mode="ideal")
    np.testing.assert_array_equal(tiled.matmul(codes), codes @ q)


@pytest.mark.parametrize("weight_bits,cell_bits", [(4, 4), (8, 4), (16, 4), (16, 8)])
def test_tiled_matmul_supports_all_cell_splits(weight_bits, cell_bits):
    """1-, 2- and 4-column weight slicing all recover the signed matmul."""
    arch = ArchSpec(rows=32, cols=32, cell_bits=cell_bits, weight_bits=weight_bits)
    ctx = SimContext(arch=arch)
    qmax = 2 ** (weight_bits - 1) - 1
    q = RNG.integers(-qmax, qmax + 1, size=(20, 6))
    codes = RNG.integers(0, 2 ** arch.input_bits, size=(3, 20))
    tiled = TiledMatmul(q, ctx, mode="analog")
    np.testing.assert_allclose(tiled.matmul(codes), codes @ q, rtol=1e-9, atol=1e-5)


def test_tiled_matmul_rejects_out_of_range_weights_and_codes():
    ctx = SimContext()
    with pytest.raises(EngineError):
        TiledMatmul(np.full((4, 4), 128), ctx)  # > qmax for 8-bit
    tiled = TiledMatmul(np.zeros((4, 4), dtype=int), ctx)
    with pytest.raises(EngineError):
        tiled.matmul(np.full((2, 4), 256))  # > 8-bit input code
    with pytest.raises(EngineError):
        tiled.matmul(np.zeros((2, 5), dtype=int))  # wrong vector length


# ---------------------------------------------------------------------------
# whole-network execution
# ---------------------------------------------------------------------------

def test_engine_cnn1_matches_reference_within_quantization_tolerance():
    """The acceptance bar: cnn_1 through the analog chains, rel error < 1e-2."""
    network = build_model("cnn_1")
    ctx = SimContext(arch=ISAAC_PRECISION)
    result = NetworkExecutor(network, ctx, mode="analog").run()
    assert result.rel_error < 1e-2
    # per-layer errors stay at the quantisation floor too
    assert all(trace.rel_error < 1e-2 for trace in result.traces)


def test_engine_8bit_default_sits_at_its_quantization_floor():
    """The PRIME-comparison 8-bit config carries visible quantisation error
    (that is the point of quantisation), but stays bounded."""
    result = run_network(build_model("cnn_1"))
    assert 1e-4 < result.rel_error < 5e-2


def test_engine_analog_equals_ideal_when_noiseless():
    """With every noise source disabled the time-domain chains are exact, so
    the analog path must reproduce the ideal integer read-out bit-for-bit
    (up to float rounding)."""
    network = build_model("tiny_cnn")
    ctx = SimContext()
    x = NetworkExecutor(network, ctx).random_input()
    analog = NetworkExecutor(network, ctx, mode="analog").run(x)
    ideal = NetworkExecutor(network, ctx, mode="ideal").run(x)
    np.testing.assert_allclose(analog.output, ideal.output, rtol=1e-7)


def test_engine_crossbar_count_matches_mapping():
    """The executor programs exactly the tiles the analytic mapper counts —
    including when cols_per_weight does not divide the tile width (cell_bits=3
    gives 3 bit-columns per weight, 85 whole weights per 256-column tile)."""
    network = build_model("cnn_1")
    for arch in (ArchSpec(), ArchSpec(cell_bits=3, weight_bits=8)):
        executor = NetworkExecutor(network, SimContext(arch=arch))
        assert executor.crossbars == executor.mapping.total_crossbars


def test_engine_rejects_non_square_kernels():
    from repro.nn import TensorShape
    from repro.nn.layers import Conv2D
    from repro.nn.network import NetworkBuilder

    builder = NetworkBuilder("rect", TensorShape(1, 8, 8))
    builder.add_layer(
        Conv2D(name="c", in_channels=1, out_channels=2, kernel_h=3, kernel_w=1)
    )
    with pytest.raises(EngineError):
        NetworkExecutor(builder.build(), SimContext())


def test_engine_is_deterministic_per_seed():
    network = build_model("tiny_cnn")
    a = run_network(network, SimContext(seed=3))
    b = run_network(network, SimContext(seed=3))
    c = run_network(network, SimContext(seed=4))
    np.testing.assert_array_equal(a.output, b.output)
    assert not np.array_equal(a.output, c.output)


def test_engine_noise_injection_degrades_but_does_not_explode():
    network = build_model("tiny_cnn")
    noiseless = run_network(network, SimContext(arch=ISAAC_PRECISION))
    noisy = run_network(
        network,
        SimContext(arch=ISAAC_PRECISION, noise=HardwareNoiseConfig(seed=11)),
    )
    assert noisy.rel_error > noiseless.rel_error
    assert noisy.rel_error < 1.0


def test_engine_executes_branching_networks():
    """The graph executor runs residual topologies end to end (the full
    resnet_18/squeezenet runs are covered by the graph-IR test module and
    the CLI smoke; the truncated stem+block model keeps this fast)."""
    result = run_network(build_model("resnet_smoke"), SimContext(arch=ISAAC_PRECISION))
    assert result.rel_error < 1e-2


def test_engine_rejects_negative_inputs():
    network = build_model("tiny_mlp")
    executor = NetworkExecutor(network, SimContext())
    x = -np.ones((1, 8, 8))
    with pytest.raises(EngineError):
        executor.run(x)


def test_validate_sequential_accepts_the_mnist_models():
    for name in ("cnn_1", "mlp_l", "tiny_cnn", "tiny_mlp"):
        validate_sequential(build_model(name))


def test_reference_forward_resolves_every_layer_shape():
    network = build_model("cnn_1")
    params = NetworkParams(network, seed=0)
    x = RNG.uniform(0.0, 1.0, size=(1, 28, 28))
    out, activations = reference_forward(network, params, x)
    assert out.shape == (10,)
    assert len(activations) == len(network)


def test_batched_validation_equals_per_image_validation():
    """The batched reference pass must reproduce N per-image reference
    forwards — the executor's validation now runs it once per batch instead
    of once per image."""
    for name in ("cnn_1", "tiny_mlp"):
        network = build_model(name)
        executor = NetworkExecutor(network, SimContext())
        batch = executor.random_batch(3)
        out, acts = reference_forward_batch(network, executor.params, batch)
        for n in range(batch.shape[0]):
            single_out, single_acts = reference_forward(
                network, executor.params, batch[n]
            )
            np.testing.assert_allclose(out[n], single_out, rtol=1e-12, atol=1e-12)
            for layer_name, act in single_acts.items():
                np.testing.assert_allclose(
                    acts[layer_name][n], act, rtol=1e-12, atol=1e-12
                )


def test_batched_run_traces_match_per_image_runs():
    """End to end: a validated batch reports the same per-layer errors as
    running the images one by one (ideal mode keeps the matmuls exact)."""
    network = build_model("tiny_cnn")
    ctx = SimContext()
    executor = NetworkExecutor(network, ctx, mode="ideal")
    batch = executor.random_batch(2)
    batched = executor.run(batch)
    singles = [executor.run(image) for image in batch]
    assert batched.rel_error == pytest.approx(
        np.linalg.norm([r.rel_error * np.linalg.norm(r.reference) for r in singles])
        / np.linalg.norm([np.linalg.norm(r.reference) for r in singles]),
        rel=1e-6,
    )
    np.testing.assert_allclose(
        batched.output, np.stack([r.output for r in singles]), rtol=1e-12, atol=1e-12
    )


def test_reference_forward_batch_rejects_non_batches():
    network = build_model("tiny_mlp")
    params = NetworkParams(network, seed=0)
    with pytest.raises(EngineError):
        reference_forward_batch(network, params, np.zeros((1, 8, 8)))


def test_network_params_are_seed_deterministic_and_layer_local():
    network = build_model("tiny_cnn")
    a = NetworkParams(network, seed=5)
    b = NetworkParams(network, seed=5)
    c = NetworkParams(network, seed=6)
    np.testing.assert_array_equal(a["conv1"].weights, b["conv1"].weights)
    assert not np.array_equal(a["conv1"].weights, c["conv1"].weights)


# ---------------------------------------------------------------------------
# vectorized-kernel micro-benchmark (the engine's hot path)
# ---------------------------------------------------------------------------

def _best_of(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_im2col_matches_loop_bit_for_bit():
    for channels, size, kernel, stride, pad in [
        (3, 17, 3, 1, 1),
        (8, 12, 5, 2, 0),
        (1, 28, 5, 1, 2),
        (4, 15, 3, 2, 1),
        (2, 9, 4, 3, 0),
    ]:
        x = RNG.normal(size=(channels, size, size))
        fast, oh, ow = F.im2col(x, kernel, stride, pad)
        slow, oh2, ow2 = F._im2col_loop(x, kernel, stride, pad)
        assert (oh, ow) == (oh2, ow2)
        np.testing.assert_array_equal(fast, slow)


def test_vectorized_pool2d_matches_loop_bit_for_bit():
    for reducer, fill in [(np.max, -np.inf), (np.mean, 0.0)]:
        for channels, size, kernel, stride, pad in [
            (3, 17, 3, 2, 1),
            (8, 12, 2, 0, 0),
            (2, 9, 4, 3, 2),
        ]:
            x = RNG.normal(size=(channels, size, size))
            fast = F._pool2d(x, kernel, stride, reducer, pad, fill)
            slow = F._pool2d_loop(x, kernel, stride, reducer, pad, fill)
            np.testing.assert_array_equal(fast, slow)
    # integer inputs take the no-padding path without a float cast
    xi = RNG.integers(0, 10, size=(2, 8, 8))
    np.testing.assert_array_equal(
        F._pool2d(xi, 2, 0, np.max), F._pool2d_loop(xi, 2, 0, np.max)
    )


def test_vectorized_im2col_is_at_least_10x_faster_on_a_vgg_layer():
    """Acceptance bar: >= 10x over the seed loop on a vgg_d conv layer
    (conv1_1 geometry: 3x224x224 input, 3x3 kernel, stride 1, pad 1)."""
    x = RNG.normal(size=(3, 224, 224))
    loop_s = _best_of(lambda: F._im2col_loop(x, 3, 1, 1), repeats=2)
    vec_s = _best_of(lambda: F.im2col(x, 3, 1, 1), repeats=5)
    assert loop_s / vec_s >= 10.0, f"only {loop_s / vec_s:.1f}x"
