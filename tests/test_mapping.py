"""Crossbar-mapping and access-count invariants."""

from repro.mapping import (
    CrossbarConfig,
    input_read_amplification,
    map_layer,
    map_network,
    timely_access_counts,
    voltage_domain_access_counts,
)
from repro.nn import TensorShape
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerInstance
from repro.nn.models import build_model

CONFIG = CrossbarConfig()


def _conv_instance(in_ch=64, out_ch=64, kernel=3, size=56, groups=1):
    layer = Conv2D(
        name="conv",
        in_channels=in_ch,
        out_channels=out_ch,
        kernel_h=kernel,
        kernel_w=kernel,
        padding="same",
        groups=groups,
    )
    shape = TensorShape(in_ch, size, size)
    return LayerInstance(layer, shape, layer.output_shape(shape), 0)


def test_conv_layer_tiling_known_counts():
    mapping = map_layer(_conv_instance(), CONFIG)
    # 64*3*3 = 576 rows -> 3 row tiles; 64 weights * 2 cells = 128 cols -> 1 tile
    assert mapping.rows_needed == 576
    assert mapping.cols_needed == 128
    assert (mapping.row_tiles, mapping.col_tiles) == (3, 1)
    assert mapping.crossbars == 3
    assert 0 < mapping.utilization(CONFIG) <= 1.0


def test_fc_layer_tiling_known_counts():
    layer = FullyConnected(name="fc", in_features=4096, out_features=1000)
    shape = TensorShape(4096)
    mapping = map_layer(LayerInstance(layer, shape, layer.output_shape(shape), 0), CONFIG)
    # 4096 rows -> 16 tiles; 1000*2 = 2000 cols -> 8 tiles
    assert (mapping.row_tiles, mapping.col_tiles) == (16, 8)
    assert mapping.crossbars == 128
    assert mapping.output_positions == 1


def test_grouped_conv_replicates_tile_grid_per_group():
    dense = map_layer(_conv_instance(in_ch=64, out_ch=64), CONFIG)
    grouped = map_layer(_conv_instance(in_ch=64, out_ch=64, groups=4), CONFIG)
    assert grouped.groups == 4
    assert grouped.rows_needed == dense.rows_needed // 4
    assert grouped.input_vector_length == dense.input_vector_length
    assert grouped.crossbars == 4 * grouped.row_tiles * grouped.col_tiles


def test_network_mapping_totals_are_layer_sums():
    net = build_model("cnn_1")
    mapping = map_network(net, CONFIG)
    assert mapping.total_crossbars == sum(layer.crossbars for layer in mapping)
    assert mapping.total_macs == sum(
        inst.macs for inst in net.compute_instances
    )
    assert 0 < mapping.utilization() <= 1.0


def test_weights_fit_allocated_cells():
    net = build_model("vgg_d")
    mapping = map_network(net, CONFIG)
    for layer in mapping:
        cells = layer.crossbars * CONFIG.cells
        stored = layer.groups * layer.rows_needed * layer.cols_needed
        assert stored <= cells
        # every weight occupies cols_per_weight cells
        assert stored >= (layer.weight_count - layer.output_channels) * 0  # sanity
        assert layer.utilization(CONFIG) <= 1.0


def test_timely_reads_each_input_exactly_once():
    mapping = map_layer(_conv_instance(), CONFIG)
    counts = timely_access_counts(mapping, CONFIG)
    assert counts.input_reads == mapping.input_elements
    assert input_read_amplification(counts, mapping.input_elements) == 1.0
    assert counts.partial_sum_buffer_accesses == 0
    # one TDC conversion per MSB/LSB bit-cell column, per output position
    assert counts.output_conversions == (
        mapping.output_positions * mapping.output_channels * CONFIG.cols_per_weight
    )


def test_voltage_domain_amplifies_input_reads():
    mapping = map_layer(_conv_instance(), CONFIG)
    timely = timely_access_counts(mapping, CONFIG)
    isaac = voltage_domain_access_counts(mapping, CONFIG, dac_bits=1)
    amplification = input_read_amplification(isaac, mapping.input_elements)
    assert amplification > 1.0
    assert isaac.input_reads > timely.input_reads
    assert isaac.input_conversions == isaac.input_reads * 8  # 1-bit slices of 8-bit inputs
    assert isaac.output_conversions > timely.output_conversions


def test_bit_serial_needs_more_crossbar_ops():
    mapping = map_layer(_conv_instance(), CONFIG)
    prime = voltage_domain_access_counts(mapping, CONFIG, dac_bits=4)
    isaac = voltage_domain_access_counts(mapping, CONFIG, dac_bits=1)
    assert isaac.crossbar_ops == 4 * prime.crossbar_ops


def test_access_counts_addition():
    mapping = map_layer(_conv_instance(), CONFIG)
    counts = timely_access_counts(mapping, CONFIG)
    doubled = counts + counts
    assert doubled.input_reads == 2 * counts.input_reads
    assert doubled.total_conversions == 2 * counts.total_conversions
