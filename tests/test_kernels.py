"""Kernel-dispatch tests: the cross-implementation equivalence matrix.

Every available tier must reproduce the numpy reference bit-for-bit in
float64 (the reference *is* the historical read-out arithmetic, extracted
verbatim), stay within float rounding in float32, and the threaded chunk
walk must be byte-identical at any worker count.  Dispatch policy —
selection order, ``REPRO_KERNEL``, unknown-tier errors, graceful
degradation — is exercised through the same public entry points the
engine uses.
"""

import os

import numpy as np
import pytest

from repro.circuits.noise import stable_seed
from repro.circuits.timing import TimeDomainChainSpec
from repro.context import SimContext
from repro.engine import NetworkExecutor
from repro.kernels import dispatch
from repro.kernels.dispatch import (
    KERNEL_TIERS,
    KernelError,
    ReadoutScalars,
    available,
    im2col_pack,
    readout_fused,
    resolve,
    slice_recombine,
)
from repro.nn.models import build_model

TIERS = available()
COMPILED = [name for name in TIERS if name != "numpy"]

SCALARS = ReadoutScalars(
    offset_coeff=1.2 * 4e-6,
    capacitance_f=2.4e-12,
    v_threshold=0.6,
    phase2_scale=1.9e-7,
    full_scale_s=5.1e-7,
    lsb_s=2e-9,
    dot_max=4080.0,
)


def _chain_inputs(dtype, t=3, s=2, g=2, p=37, c=11, seed=("kernels", "chain")):
    rng = np.random.default_rng(stable_seed(*seed))
    charges = (rng.random((t, s, g, p, c)) * 2e-12).astype(dtype)
    delay_sums = (rng.random((t, 1, g, p, 1)) * 4e-7).astype(dtype)
    return charges, delay_sums


def _shifts(s=2):
    return np.asarray([2.0 ** (4 * i) for i in reversed(range(s))])


# -- float64: every tier must be bit-for-bit the numpy reference --------------


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("saturation", [None, 0.25])
@pytest.mark.parametrize("recombine", [False, True])
def test_tier_matches_numpy_bitwise_f64(tier, saturation, recombine):
    charges, delay_sums = _chain_inputs(np.float64)
    shifts = _shifts() if recombine else None
    rec_ref = np.empty(charges.shape[2:]) if recombine else None
    rec_got = np.empty(charges.shape[2:]) if recombine else None
    ref = readout_fused(
        charges,
        delay_sums,
        SCALARS,
        saturation=saturation,
        shifts=shifts,
        recombine_out=rec_ref,
        kernel="numpy",
    )
    got = readout_fused(
        charges,
        delay_sums,
        SCALARS,
        saturation=saturation,
        shifts=shifts,
        recombine_out=rec_got,
        kernel=tier,
    )
    np.testing.assert_array_equal(got, ref)
    if recombine:
        np.testing.assert_array_equal(rec_got, rec_ref)
    # the inputs were left untouched
    assert charges.flags.writeable and delay_sums.flags.writeable


@pytest.mark.parametrize("tier", COMPILED)
def test_tier_matches_numpy_on_partial_tile_views(tier):
    """Tail chunks are non-contiguous views: charges[:, :, :, :n]."""
    charges, delay_sums = _chain_inputs(np.float64, p=29)
    view_c = charges[:, :, :, :13]
    view_d = delay_sums[:, :, :, :13]
    assert not view_c.flags.c_contiguous
    ref = readout_fused(view_c, view_d, SCALARS, kernel="numpy")
    got = readout_fused(view_c, view_d, SCALARS, kernel=tier)
    np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("tier", COMPILED)
def test_tier_matches_numpy_in_place_strided(tier):
    """The chunked walk runs in place on a strided recombine slice."""
    charges, delay_sums = _chain_inputs(np.float64, g=1, p=24)
    shifts = _shifts()
    full_ref = np.empty((1, 29, 11))
    full_got = np.empty((1, 29, 11))
    work_ref = charges.copy()
    work_got = charges.copy()
    readout_fused(
        work_ref,
        delay_sums,
        SCALARS,
        out=work_ref,
        shifts=shifts,
        recombine_out=full_ref[:, 5:],
        kernel="numpy",
    )
    readout_fused(
        work_got,
        delay_sums,
        SCALARS,
        out=work_got,
        shifts=shifts,
        recombine_out=full_got[:, 5:],
        kernel=tier,
    )
    np.testing.assert_array_equal(work_got, work_ref)
    np.testing.assert_array_equal(full_got[:, 5:], full_ref[:, 5:])


@pytest.mark.parametrize("tier", TIERS)
def test_tier_handles_empty_blocks(tier):
    charges, delay_sums = _chain_inputs(np.float64, p=0)
    got = readout_fused(charges, delay_sums, SCALARS, kernel=tier)
    assert got.shape == charges.shape and got.size == 0


@pytest.mark.parametrize("tier", COMPILED)
def test_slice_recombine_matches_numpy(tier):
    rng = np.random.default_rng(stable_seed("kernels", "recombine"))
    estimates = rng.random((3, 2, 2, 19, 7))
    shifts = _shifts()
    ref = np.empty((2, 19, 7))
    got = np.empty((2, 19, 7))
    slice_recombine(shifts, estimates, ref, kernel="numpy")
    slice_recombine(shifts, estimates, got, kernel=tier)
    np.testing.assert_array_equal(got, ref)


# -- float32: within float rounding of the numpy float32 chain ----------------


@pytest.mark.parametrize("tier", COMPILED)
@pytest.mark.parametrize("saturation", [None, 0.25])
def test_tier_matches_numpy_f32(tier, saturation):
    charges, delay_sums = _chain_inputs(np.float32)
    ref = readout_fused(
        charges, delay_sums, SCALARS, saturation=saturation, kernel="numpy"
    )
    got = readout_fused(
        charges, delay_sums, SCALARS, saturation=saturation, kernel=tier
    )
    assert got.dtype == np.float32
    np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-4)


# -- im2col: bytes and strides ------------------------------------------------


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize(
    "shape,kernel,stride,pad",
    [
        ((2, 3, 8, 8), 3, 1, 1),
        ((1, 1, 7, 5), 3, 2, 0),
        ((1, 4, 6, 6), 1, 1, 0),
        ((2, 2, 5, 5), 5, 1, 2),
    ],
)
def test_im2col_matches_numpy(tier, shape, kernel, stride, pad):
    rng = np.random.default_rng(stable_seed("kernels", "im2col", kernel, stride))
    x = rng.normal(size=shape)
    ref, rh, rw = im2col_pack(x, kernel, stride=stride, pad=pad, kernel="numpy")
    got, gh, gw = im2col_pack(x, kernel, stride=stride, pad=pad, kernel=tier)
    assert (gh, gw) == (rh, rw)
    assert got.shape == ref.shape and got.strides == ref.strides
    np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("tier", TIERS)
def test_im2col_empty_output_raises_on_every_tier(tier):
    x = np.zeros((1, 1, 2, 2))
    with pytest.raises(ValueError, match="empty output"):
        im2col_pack(x, 5, stride=1, pad=0, kernel=tier)


# -- the spec facade ----------------------------------------------------------


def test_chain_spec_read_out_goes_through_dispatch():
    spec = TimeDomainChainSpec.from_context(SimContext())
    charges, delay_sums = _chain_inputs(np.float64, g=1)
    ref = readout_fused(charges, delay_sums, spec.scalars(), kernel="numpy")
    np.testing.assert_array_equal(spec.read_out(charges, delay_sums), ref)


# -- dispatch policy ----------------------------------------------------------


def test_numpy_tier_is_always_available():
    assert "numpy" in TIERS
    assert TIERS == tuple(t for t in KERNEL_TIERS if t in TIERS)  # order kept


def test_resolve_auto_picks_first_available(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve("auto")[0] == TIERS[0]
    assert resolve(None)[0] == TIERS[0]


def test_unknown_tier_raises_kernel_error():
    with pytest.raises(KernelError, match="unknown kernel tier"):
        resolve("fortran")
    with pytest.raises(KernelError):
        readout_fused(*_chain_inputs(np.float64), SCALARS, kernel="fortran")


def test_env_override_wins_for_auto(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert resolve("auto")[0] == "numpy"
    assert resolve(None)[0] == "numpy"
    # an explicit request still beats the environment
    assert resolve(TIERS[0])[0] == TIERS[0]


def test_env_unknown_tier_raises(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "fortran")
    with pytest.raises(KernelError):
        resolve(None)


def test_unavailable_tier_degrades_with_one_warning():
    if "numba" in TIERS:
        pytest.skip("numba installed here; no unavailable tier to exercise")
    dispatch.reset()
    try:
        with pytest.warns(RuntimeWarning, match="falling back"):
            name, _ = resolve("numba")
        assert name in TIERS and name != "numba"
        assert "numba" in dispatch.unavailable_reasons()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second request: no re-warn
            assert resolve("numba")[0] == name
    finally:
        dispatch.reset()


def test_context_validates_kernel_and_threads():
    assert SimContext(kernel="numpy").kernel == "numpy"
    with pytest.raises(ValueError):
        SimContext(kernel="fortran")
    with pytest.raises(ValueError):
        SimContext(threads=0)
    # tier and threads are metadata, not semantics: equal contexts, equal keys
    assert SimContext(kernel="numpy") == SimContext(kernel="auto", threads=4)


# -- end-to-end: the engine is tier-invariant ---------------------------------


def _run(model, ctx):
    executor = NetworkExecutor(model, ctx, mode="analog")
    result = executor.run(executor.random_batch(2))
    return executor.state.key, result


@pytest.mark.parametrize("tier", COMPILED)
@pytest.mark.parametrize("noisy", [False, True])
def test_engine_outputs_are_tier_invariant(tier, noisy):
    from repro.circuits.noise import HardwareNoiseConfig

    model = build_model("tiny_cnn")
    noise = HardwareNoiseConfig.scaled(1.0, seed=7) if noisy else None
    key_ref, ref = _run(model, SimContext(noise=noise, kernel="numpy"))
    key_got, got = _run(model, SimContext(noise=noise, kernel=tier))
    assert key_got == key_ref  # the tier is not a content-key dimension
    np.testing.assert_array_equal(got.output, ref.output)
    assert got.rel_error == ref.rel_error


@pytest.mark.parametrize("tier", COMPILED)
def test_engine_float32_outputs_are_tier_invariant(tier):
    model = build_model("tiny_cnn")
    _, ref = _run(model, SimContext(compute_dtype="float32", kernel="numpy"))
    _, got = _run(model, SimContext(compute_dtype="float32", kernel=tier))
    np.testing.assert_array_equal(got.output, ref.output)


# -- threaded chunk walk: byte-identical at any worker count ------------------


@pytest.mark.parametrize("tier", TIERS)
def test_threaded_chunk_walk_is_byte_identical(tier):
    model = build_model("tiny_cnn")
    outputs = {}
    for workers in (1, 2, 4):
        ctx = SimContext(chunk_bytes=4096, threads=workers, kernel=tier)
        _, result = _run(model, ctx)
        outputs[workers] = result.output
    np.testing.assert_array_equal(outputs[2], outputs[1])
    np.testing.assert_array_equal(outputs[4], outputs[1])
    # and the chunked threaded walk equals the unchunked serial pass
    _, whole = _run(model, SimContext(kernel=tier))
    np.testing.assert_array_equal(outputs[1], whole.output)


def test_threads_without_chunking_is_a_no_op():
    model = build_model("tiny_cnn")
    _, serial = _run(model, SimContext())
    _, threaded = _run(model, SimContext(threads=4))
    np.testing.assert_array_equal(threaded.output, serial.output)


# -- the environment this matrix actually covered -----------------------------


def test_compiled_tier_present_unless_explicitly_waived():
    """CI builds the compiled tier; a numpy-only box documents why."""
    if os.environ.get("REPRO_EXPECT_KERNEL") == "c":
        assert "c" in TIERS, dispatch.unavailable_reasons()
