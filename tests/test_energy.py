"""Energy-estimator invariants and the headline TIMELY-vs-baselines direction."""

import pytest

from repro.energy import (
    compare_accelerators,
    estimate_network,
    timely_config,
)
from repro.mapping import CrossbarConfig
from repro.nn.models import build_model
from repro.sim import format_comparison, format_per_layer, main

CONFIG = CrossbarConfig()


@pytest.fixture(scope="module")
def vgg_estimates():
    net = build_model("vgg_d")
    return {est.accelerator: est for est in compare_accelerators(net, config=CONFIG)}


def test_totals_are_layer_sums(vgg_estimates):
    for est in vgg_estimates.values():
        assert est.total_energy_pj == pytest.approx(
            sum(layer.energy_pj for layer in est.layers)
        )
        assert est.total_latency_ns == pytest.approx(
            sum(layer.latency_ns for layer in est.layers)
        )
        assert est.area_mm2 > 0
        assert est.total_macs == sum(
            inst.macs for inst in build_model("vgg_d").compute_instances
        )


def test_timely_energy_efficiency_beats_both_baselines(vgg_estimates):
    timely = vgg_estimates["TIMELY"]
    prime = vgg_estimates["PRIME-like"]
    isaac = vgg_estimates["ISAAC-like"]
    # the paper claims >10x energy-efficiency improvements; the model must at
    # least reproduce the direction, with a wide margin
    assert timely.tops_per_watt > 10 * prime.tops_per_watt
    assert timely.tops_per_watt > 10 * isaac.tops_per_watt
    assert timely.total_energy_pj < prime.total_energy_pj
    assert timely.total_energy_pj < isaac.total_energy_pj


def test_timely_direction_holds_across_models():
    for name in ("cnn_1", "mlp_l", "tiny_cnn"):
        net = build_model(name)
        timely, prime, isaac = compare_accelerators(net, config=CONFIG)
        assert timely.tops_per_watt > prime.tops_per_watt
        assert timely.tops_per_watt > isaac.tops_per_watt


def test_interface_energy_dominates_baselines(vgg_estimates):
    # Section III of the paper: DAC/ADC interfaces and data movement dominate
    # voltage-domain accelerators, while TIMELY's interfaces are minor.
    isaac = vgg_estimates["ISAAC-like"].energy_breakdown_pj()
    timely = vgg_estimates["TIMELY"].energy_breakdown_pj()
    isaac_total = sum(isaac.values())
    timely_total = sum(timely.values())
    assert (isaac.get("adc", 0) + isaac.get("dac", 0)) / isaac_total > 0.3
    assert (timely.get("tdc", 0) + timely.get("dtc", 0)) / timely_total < 0.2


def test_crossbar_counts_identical_across_accelerators(vgg_estimates):
    counts = {est.total_crossbars for est in vgg_estimates.values()}
    assert len(counts) == 1  # same mapping, different pricing


def test_estimate_network_single_config():
    net = build_model("tiny_mlp")
    est = estimate_network(net, timely_config(CONFIG), CONFIG)
    assert est.accelerator == "TIMELY"
    assert len(est.layers) == len(net.compute_instances)
    assert est.gops > 0


def test_formatters_render_tables(vgg_estimates):
    estimates = list(vgg_estimates.values())
    per_layer = format_per_layer(estimates[0])
    assert "conv1_1" in per_layer and "total" in per_layer
    comparison = format_comparison(estimates)
    for name in ("TIMELY", "PRIME-like", "ISAAC-like"):
        assert name in comparison


def test_cli_main_runs_and_prints(capsys):
    assert main(["--model", "tiny_cnn", "--no-per-layer"]) == 0
    out = capsys.readouterr().out
    assert "TIMELY" in out and "ISAAC-like" in out


def test_cli_rejects_unknown_model_and_config(capsys):
    assert main(["--model", "not_a_model"]) == 2
    assert main(["--model", "tiny_cnn", "--configs", "bogus"]) == 2


def test_cli_list_models(capsys):
    assert main(["--list-models"]) == 0
    assert "vgg_d" in capsys.readouterr().out
