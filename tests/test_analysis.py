"""Invariant-checker self-tests: per-rule fixtures (violating + conforming),
CLI text/JSON/exit codes, baseline suppress-then-regress, inline allows, the
live-src meta-test (the fixed tree is finding-free), and the self-updating
content-key test (a dummy field added to a copy of SimContext must be
reported)."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import load_baseline, run_analysis, write_baseline
from repro.analysis.__main__ import main
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def _findings(*paths, rules=None):
    return run_analysis([str(p) for p in paths], rules=rules).findings


def _rule(name):
    return [RULES_BY_NAME[name]]


# -- rule registry ------------------------------------------------------------


def test_registry_names_are_unique_and_described():
    names = [rule.name for rule in ALL_RULES]
    assert len(names) == len(set(names))
    assert all(rule.name and rule.description for rule in ALL_RULES)
    assert set(names) == {
        "rng-discipline",
        "content-key-completeness",
        "pool-picklability",
        "layout-discipline",
        "kernel-dispatch",
    }


# -- rng-discipline -----------------------------------------------------------


def test_rng_bad_fixture_flags_every_construction():
    findings = _findings(FIXTURES / "rng_bad.py", rules=_rule("rng-discipline"))
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 5
    assert all(f.rule == "rng-discipline" for f in findings)
    assert "bare integer seed (0)" in messages
    assert "without a seed draws OS entropy" in messages
    assert "numpy.random.seed" in messages
    assert "numpy.random.normal" in messages
    assert "underived seed expression (seed)" in messages


def test_rng_good_fixture_is_clean():
    assert _findings(FIXTURES / "rng_good.py", rules=_rule("rng-discipline")) == []


def test_rng_findings_carry_locations():
    findings = _findings(FIXTURES / "rng_bad.py", rules=_rule("rng-discipline"))
    text = (FIXTURES / "rng_bad.py").read_text().splitlines()
    for finding in findings:
        assert finding.path == "rng_bad.py"
        assert "random" in text[finding.line - 1]


# -- layout-discipline --------------------------------------------------------


def test_layout_bad_fixture_flags_copies_and_casts():
    findings = _findings(FIXTURES / "layout_bad.py", rules=_rule("layout-discipline"))
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 4
    assert "np.ascontiguousarray on packed payload 'encoded'" in messages
    assert "astype on packed payload '_encoded'" in messages
    assert "dtype-narrowing cast to float32 on 'products'" in messages
    assert 'order="C" forces a fixed layout' in messages


def test_layout_good_fixture_is_clean():
    assert _findings(FIXTURES / "layout_good.py", rules=_rule("layout-discipline")) == []


# -- pool-picklability --------------------------------------------------------


def test_pool_bad_fixture_flags_mutable_spec_lambda_and_closure():
    findings = _findings(FIXTURES / "pool_bad.py", rules=_rule("pool-picklability"))
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 3
    assert "MutableSpec" in messages and "not a frozen dataclass" in messages
    assert "lambda shipped across the process boundary" in messages
    assert "nested function 'closure'" in messages


def test_pool_good_fixture_is_clean():
    assert _findings(FIXTURES / "pool_good.py", rules=_rule("pool-picklability")) == []


# -- kernel-dispatch ----------------------------------------------------------


def test_kernel_dispatch_bad_fixture_flags_every_import_form():
    findings = _findings(
        FIXTURES / "kernel_dispatch_bad.py", rules=_rule("kernel-dispatch")
    )
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 3
    assert all(f.rule == "kernel-dispatch" for f in findings)
    assert "repro.kernels.c_impl" in messages
    assert "repro.kernels.numba_impl" in messages
    assert "repro.kernels.numpy_impl" in messages
    assert "repro.kernels.dispatch" in messages  # the remedy is named


def test_kernel_dispatch_good_fixture_is_clean():
    assert (
        _findings(
            FIXTURES / "kernel_dispatch_good.py", rules=_rule("kernel-dispatch")
        )
        == []
    )


def test_kernel_dispatch_exempts_the_kernels_package_itself():
    kernels = SRC / "repro" / "kernels"
    findings = run_analysis([str(SRC)], rules=_rule("kernel-dispatch")).findings
    assert findings == []
    # sanity: the dispatcher really does import its tiers, so the absence of
    # findings proves the exemption (not an accidentally-empty package)
    assert "numpy_impl" in (kernels / "dispatch.py").read_text()


# -- content-key-completeness -------------------------------------------------


def test_content_keys_bad_fixture_flags_missing_fields():
    findings = _findings(
        FIXTURES / "content_keys_bad.py", rules=_rule("content-key-completeness")
    )
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 2
    assert "ArchSpec.v_span is absent from state_key()" in messages
    assert "TrialSpec.gain is absent from the sweep _group_key" in messages
    # compare=False auto-exempts spare_rows
    assert "spare_rows" not in messages


def test_content_keys_good_fixture_is_clean():
    assert (
        _findings(
            FIXTURES / "content_keys_good.py", rules=_rule("content-key-completeness")
        )
        == []
    )


def test_content_key_rule_is_self_updating(tmp_path):
    """A dummy field added to a copy of SimContext must be reported.

    This is the PR-7 ``compute_dtype`` scenario replayed: a new numeric knob
    that nobody threads into ``state_key`` aliases cached states — the rule
    has to catch the *next* one automatically.
    """
    context_copy = tmp_path / "context.py"
    state_copy = tmp_path / "state.py"
    shutil.copy(SRC / "repro" / "context.py", context_copy)
    shutil.copy(SRC / "repro" / "engine" / "state.py", state_copy)

    # the unmodified copies are clean
    assert (
        _findings(context_copy, state_copy, rules=_rule("content-key-completeness"))
        == []
    )

    marker = "    seed: int = 0\n"
    text = context_copy.read_text()
    assert text.count(marker) == 1
    context_copy.write_text(
        text.replace(marker, marker + "    psi_gain: float = 1.0\n", 1)
    )
    findings = _findings(
        context_copy, state_copy, rules=_rule("content-key-completeness")
    )
    assert len(findings) == 1
    assert "SimContext.psi_gain is absent from state_key()" in findings[0].message


# -- live tree meta-test ------------------------------------------------------


def test_live_src_tree_is_finding_free():
    report = run_analysis([str(SRC)])
    assert report.findings == [], "\n".join(f.format() for f in report.findings)
    assert report.files > 40


def test_prefix_regression_would_be_caught(tmp_path):
    """The checker still catches this PR's own true positives if reintroduced."""
    bench = tmp_path / "bench.py"
    bench.write_text(
        "import numpy as np\n"
        "xi = np.random.default_rng(0).normal(size=(3, 224, 224))\n"
    )
    packed = tmp_path / "packed.py"
    packed.write_text(
        "import numpy as np\n"
        "def f(grouped, self):\n"
        "    return grouped @ self._encoded.astype(np.int64)\n"
    )
    findings = _findings(bench, packed)
    rules = {f.rule for f in findings}
    assert rules == {"rng-discipline", "layout-discipline"}


# -- suppression: inline allows and baselines ---------------------------------


def test_inline_allow_suppresses_with_reason(tmp_path):
    bad = tmp_path / "allowed.py"
    bad.write_text(
        "import numpy as np\n"
        "r = np.random.default_rng(0)  # analysis: allow=rng-discipline -- demo\n"
    )
    report = run_analysis([str(bad)])
    assert report.findings == []
    assert report.suppressed == 1


def test_inline_allow_is_rule_specific(tmp_path):
    bad = tmp_path / "allowed.py"
    bad.write_text(
        "import numpy as np\n"
        "r = np.random.default_rng(0)  # analysis: allow=layout-discipline\n"
    )
    report = run_analysis([str(bad)])
    assert len(report.findings) == 1


def test_baseline_suppress_then_regress(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    report = run_analysis([str(FIXTURES / "rng_bad.py")])
    assert report.findings
    write_baseline(baseline_path, report.findings)

    # all grandfathered findings are suppressed
    suppressed = run_analysis(
        [str(FIXTURES / "rng_bad.py")], baseline=load_baseline(baseline_path)
    )
    assert suppressed.findings == []
    assert suppressed.baselined == len(report.findings)

    # ...but a *new* violation still fails
    regressed = tmp_path / "rng_bad.py"
    regressed.write_text(
        (FIXTURES / "rng_bad.py").read_text()
        + "\n\ndef fresh():\n    return np.random.default_rng(123)\n"
    )
    report2 = run_analysis([str(regressed)], baseline=load_baseline(baseline_path))
    assert len(report2.findings) == 1
    assert "bare integer seed (123)" in report2.findings[0].message


def test_fingerprints_survive_line_shifts(tmp_path):
    original = FIXTURES / "rng_bad.py"
    shifted = tmp_path / "rng_bad.py"
    shifted.write_text("# a new leading comment\n\n" + original.read_text())
    fp = lambda path: {f.fingerprint for f in run_analysis([str(path)]).findings}
    assert fp(original) == fp(shifted)


# -- CLI ----------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert main([str(FIXTURES / "rng_bad.py")]) == 1
    assert main([str(tmp_path / "missing.py")]) == 2
    assert main([str(clean), "--rules", "no-such-rule"]) == 2
    assert main([str(clean), "--write-baseline"]) == 2
    capsys.readouterr()


def test_cli_text_output_names_rule_and_location(capsys):
    assert main([str(FIXTURES / "rng_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "[rng-discipline]" in out
    assert "rng_bad.py:" in out
    assert "finding(s)" in out


def test_cli_json_schema(capsys):
    assert main([str(FIXTURES / "rng_bad.py"), "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["files"] == 1
    assert doc["counts"] == {"rng-discipline": 5}
    assert set(doc["rules"]) == set(RULES_BY_NAME)
    for finding in doc["findings"]:
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "fingerprint",
        }
        assert finding["line"] >= 1


def test_cli_rules_subset(capsys):
    # layout rule alone sees no RNG violations
    assert main([str(FIXTURES / "rng_bad.py"), "--rules", "layout-discipline"]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in RULES_BY_NAME:
        assert name in out


def test_cli_write_then_check_baseline(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    assert (
        main([str(FIXTURES / "rng_bad.py"), "--baseline", str(baseline),
              "--write-baseline"])
        == 0
    )
    assert baseline.is_file()
    assert (
        main([str(FIXTURES / "rng_bad.py"), "--baseline", str(baseline)]) == 0
    )
    capsys.readouterr()


def test_module_entrypoint_runs_clean_on_src():
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC)],
        cwd=str(REPO),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout


# -- mypy satellite (runs where mypy is installed, e.g. the CI lint job) ------


def test_mypy_strict_core_modules():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=str(REPO),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
