"""Builder shape-inference tests for every model in the zoo."""

import pytest

from repro.nn import TensorShape, network_stats
from repro.nn.models import MODEL_ZOO, PAPER_BENCHMARKS, build_model, list_models

#: expected final output features per model
EXPECTED_OUTPUTS = {
    "vgg_d": 1000,
    "vgg_1": 1000,
    "vgg_2": 1000,
    "vgg_3": 1000,
    "vgg_4": 1000,
    "msra_1": 1000,
    "msra_2": 1000,
    "msra_3": 1000,
    "resnet_18": 1000,
    "resnet_50": 1000,
    "resnet_101": 1000,
    "resnet_152": 1000,
    "squeezenet": 1000,
    "cnn_1": 10,
    "mlp_l": 10,
    "tiny_cnn": 4,
    "tiny_mlp": 4,
    "resnet_smoke": 10,
    "bottleneck_smoke": 10,
}


@pytest.mark.parametrize("name", sorted(MODEL_ZOO))
def test_model_builds_with_consistent_shapes(name):
    net = build_model(name)
    assert net.output_shape == TensorShape(EXPECTED_OUTPUTS[name])
    assert net.total_macs > 0
    assert net.total_weights > 0
    # every instance's output shape feeds plausibly into the layer record
    for inst in net:
        assert inst.output_shape.elements > 0


def test_vgg_d_mac_and_weight_counts_match_vgg16():
    net = build_model("vgg_d")
    # VGG-16: ~15.3 GMACs of conv + ~124 MMACs of FC, ~138 M parameters
    assert 1.5e10 < net.total_macs < 1.6e10
    assert 1.3e8 < net.total_weights < 1.45e8


def test_paper_benchmarks_subset_of_zoo():
    assert len(PAPER_BENCHMARKS) == 15
    assert set(PAPER_BENCHMARKS) <= set(MODEL_ZOO)
    assert list_models(paper_only=True) == PAPER_BENCHMARKS


def test_unknown_model_raises_helpful_error():
    with pytest.raises(KeyError, match="available models"):
        build_model("nope")


def test_network_summary_mentions_totals():
    net = build_model("tiny_cnn")
    summary = net.summary()
    assert "total MACs" in summary
    assert "conv1" in summary


def test_network_stats_aggregates_match_network():
    net = build_model("cnn_1")
    stats = network_stats(net, compute_only=True)
    assert stats.total_macs == sum(inst.macs for inst in net.compute_instances)
    assert {layer.kind for layer in stats.layers} == {"conv", "fc"}
    assert all(layer.input_reuse >= 1.0 for layer in stats.layers)
