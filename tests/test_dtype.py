"""Float32 compute-path tests: packed dtype parity against the float64
reference across modes and cell splits, the ideal-mode exactness fallback
(requested float32 silently reverts to float64 per layer when the
worst-case product sum would overflow the 24-bit mantissa), layout
preservation of the ideal pack, chunk-fused read-out equivalence and the
end-to-end accuracy-at-the-quantisation-floor bars."""

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import COMPUTE_DTYPES, ArchSpec, SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    PackedMatmul,
    TiledMatmul,
    relative_error,
)
from repro.engine.packed import _EXACT_FLOAT_BOUNDS, _worst_product_sum, pack_weights

RNG = np.random.default_rng(17)


def _codes_and_weights(arch: ArchSpec, rows: int, cols: int, positions: int = 5):
    qmax = 2 ** (arch.weight_bits - 1) - 1
    q = RNG.integers(-qmax, qmax + 1, size=(rows, cols))
    codes = RNG.integers(0, 2 ** arch.input_bits, size=(positions, rows))
    return q, codes


# ---------------------------------------------------------------------------
# context plumbing
# ---------------------------------------------------------------------------

def test_context_validates_compute_dtype_and_chunk_bytes():
    assert COMPUTE_DTYPES == ("float64", "float32")
    ctx = SimContext(compute_dtype="float32", chunk_bytes=4096)
    assert ctx.np_compute_dtype == np.float32
    with pytest.raises(ValueError):
        SimContext(compute_dtype="float16")
    with pytest.raises(ValueError):
        SimContext(chunk_bytes=0)
    with pytest.raises(ValueError):
        SimContext(chunk_bytes=-1)


def test_tiled_backend_is_the_float64_reference_regardless_of_request():
    """The legacy backend deliberately ignores ``compute_dtype``."""
    arch = ArchSpec(rows=16, cols=16)
    q, codes = _codes_and_weights(arch, 20, 9)
    f64 = TiledMatmul(q, SimContext(arch=arch), "analog")
    f32 = TiledMatmul(q, SimContext(arch=arch, compute_dtype="float32"), "analog")
    assert f64.compute_dtype == np.float64
    assert f32.compute_dtype == np.float64
    assert np.array_equal(f64.matmul(codes), f32.matmul(codes))


# ---------------------------------------------------------------------------
# matmul-level parity: float32 vs the float64 reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "weight_bits,cell_bits",
    [(4, 4), (8, 4), (16, 4)],  # cols_per_weight = 1, 2, 4
)
@pytest.mark.parametrize("mode", ["analog", "ideal"])
def test_packed_float32_tracks_float64_within_1e4(weight_bits, cell_bits, mode):
    """Single-layer float32 read-out stays within 1e-4 of float64.

    (Observed ~1e-5 at up to 2048 rows; the pinned bar leaves headroom.)
    The result dtype stays float64 either way: only the gemm and the
    time-domain chain run in single precision, digital recombination of
    the slice cascade does not.
    """
    arch = ArchSpec(rows=16, cols=16, weight_bits=weight_bits, cell_bits=cell_bits)
    q, codes = _codes_and_weights(arch, 40, 21)
    ref = PackedMatmul(q, SimContext(arch=arch), mode).matmul(codes)
    packed32 = PackedMatmul(q, SimContext(arch=arch, compute_dtype="float32"), mode)
    out = packed32.matmul(codes)
    assert out.dtype == np.float64
    assert relative_error(out, ref) <= 1e-4


def test_packed_float32_grouped_tracks_float64():
    arch = ArchSpec(rows=16, cols=16)
    qmax = 2 ** (arch.weight_bits - 1) - 1
    q = RNG.integers(-qmax, qmax + 1, size=(3, 20, 7))  # 3 groups
    codes = RNG.integers(0, 2 ** arch.input_bits, size=(4, 3 * 20))
    ref = PackedMatmul(q, SimContext(arch=arch), "analog").matmul(codes)
    out = PackedMatmul(
        q, SimContext(arch=arch, compute_dtype="float32"), "analog"
    ).matmul(codes)
    assert relative_error(out, ref) <= 1e-4


# ---------------------------------------------------------------------------
# ideal-mode exactness: honoured request vs per-layer fallback
# ---------------------------------------------------------------------------

def test_ideal_float32_is_exact_below_the_mantissa_bound():
    """A small-rows ideal layer honours float32 and still matches bit-exact."""
    arch = ArchSpec()
    q, codes = _codes_and_weights(arch, 40, 21, positions=3)
    assert _worst_product_sum(arch, 40) < _EXACT_FLOAT_BOUNDS[np.dtype(np.float32)]
    small = PackedMatmul(q, SimContext(compute_dtype="float32"), "ideal")
    assert small.compute_dtype == np.float32
    ref = PackedMatmul(q, SimContext(), "ideal")
    assert ref.compute_dtype == np.float64
    assert np.array_equal(small.matmul(codes), ref.matmul(codes))


def test_ideal_float32_falls_back_to_float64_above_the_bound():
    """A deep-rows ideal layer ignores the float32 request, staying exact."""
    arch = ArchSpec()
    # 8-bit codes x 8-bit weights: worst product sum is 65280 per row, so
    # anything past ~257 rows overflows float32's 24-bit mantissa
    q, codes = _codes_and_weights(arch, 400, 21, positions=3)
    assert _worst_product_sum(arch, 400) >= _EXACT_FLOAT_BOUNDS[np.dtype(np.float32)]
    big = PackedMatmul(q, SimContext(compute_dtype="float32"), "ideal")
    assert big.compute_dtype == np.float64
    ref = PackedMatmul(q, SimContext(), "ideal")
    assert np.array_equal(big.matmul(codes), ref.matmul(codes))


def test_network_fallback_is_per_layer():
    """In one ideal float32 network, only the deep-rows layers fall back."""
    from repro.nn.models import build_model

    network = build_model("cnn_1")
    ctx = SimContext(compute_dtype="float32")
    executor = NetworkExecutor(network, ctx, mode="ideal")
    dtypes = {
        name: layer._packed.compute_dtype
        for name, layer in executor._compute.items()
    }
    assert set(dtypes.values()) == {np.dtype(np.float32), np.dtype(np.float64)}
    for name, layer in executor._compute.items():
        bound = _EXACT_FLOAT_BOUNDS[np.dtype(np.float32)]
        expected = (
            np.float64
            if _worst_product_sum(ctx.arch, layer._packed.rows_needed) >= bound
            else np.float32
        )
        assert dtypes[name] == np.dtype(expected), name


def test_pack_weights_rejects_unsupported_dtypes():
    arch = ArchSpec(rows=16, cols=16)
    q, _ = _codes_and_weights(arch, 20, 9)
    with pytest.raises(EngineError):
        pack_weights(q, arch, "ideal", "float16")


# ---------------------------------------------------------------------------
# layout pinning: the ideal pack must keep the im2col stack's memory order
# ---------------------------------------------------------------------------

def test_ideal_pack_preserves_fortran_layout():
    """The ideal branch keeps q's F-order (it used to force C-contiguity).

    Layout matters downstream: BLAS picks summation paths by operand
    memory order, so discarding the layout silently changed performance.
    """
    arch = ArchSpec(rows=16, cols=16)
    qmax = 2 ** (arch.weight_bits - 1) - 1
    q = np.asfortranarray(RNG.integers(-qmax, qmax + 1, size=(40, 21)))
    for dtype in COMPUTE_DTYPES:
        encoded, conductances = pack_weights(q, arch, "ideal", dtype)
        assert conductances == []
        assert encoded.flags.f_contiguous and not encoded.flags.c_contiguous
        assert encoded.dtype == np.dtype(dtype)  # 40 rows: float32 honoured
        assert np.array_equal(encoded, q + 2 ** (arch.weight_bits - 1))


# ---------------------------------------------------------------------------
# chunk-fused read-out
# ---------------------------------------------------------------------------

def test_chunked_readout_matches_unchunked_within_1e12():
    """Bounded-chunk analog read-out agrees with the single-pass path.

    Not pinned bit-identical — BLAS may pick different summation orders
    for the blocked gemm — but the float-rounding bar is 1e-12 (observed
    0.0 on cnn_1 at 64 KB chunks)."""
    arch = ArchSpec(rows=32, cols=32)
    q, codes = _codes_and_weights(arch, 70, 40, positions=50)
    ref = PackedMatmul(q, SimContext(arch=arch), "analog").matmul(codes)
    chunked = PackedMatmul(
        q, SimContext(arch=arch, chunk_bytes=4096), "analog"
    ).matmul(codes)
    assert relative_error(chunked, ref) <= 1e-12


def test_chunking_does_not_change_noisy_results():
    """Noise draws (DTC jitter included) are independent of the chunking:
    the full delay tensor is drawn before the chunk walk."""
    arch = ArchSpec(rows=32, cols=32)
    q, codes = _codes_and_weights(arch, 70, 40, positions=50)
    noise = HardwareNoiseConfig.scaled(1.0, seed=3)
    whole = PackedMatmul(
        q, SimContext(arch=arch, noise=noise), "analog", salt=4
    ).matmul(codes)
    chunked = PackedMatmul(
        q, SimContext(arch=arch, noise=noise, chunk_bytes=4096), "analog", salt=4
    ).matmul(codes)
    assert relative_error(chunked, whole) <= 1e-12


def test_chunked_network_run_matches_unchunked():
    from repro.nn.models import build_model

    network = build_model("tiny_cnn")
    ref = NetworkExecutor(network, SimContext(), mode="analog").run(validate=False)
    chunked = NetworkExecutor(
        network, SimContext(chunk_bytes=8192), mode="analog"
    ).run(validate=False)
    assert relative_error(chunked.output, ref.output) <= 1e-12


# ---------------------------------------------------------------------------
# end-to-end: float32 must not leave the 8-bit quantisation floor
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model", ["tiny_cnn", "cnn_1"])
def test_float32_accuracy_stays_at_the_quantisation_floor(model):
    """End-to-end float32 error vs the float reference stays comparable to
    float64's (within 1.5x).  Per-layer requantisation amplifies *any*
    arithmetic perturbation toward the 8-bit floor, so the honest
    end-to-end bar is the floor itself, not the 1e-4 single-layer parity
    (measured ratios float32/float64: tiny_cnn 0.63, cnn_1 1.18)."""
    from repro.nn.models import build_model

    network = build_model(model)
    rel64 = NetworkExecutor(network, SimContext(), mode="analog").run().rel_error
    rel32 = (
        NetworkExecutor(network, SimContext(compute_dtype="float32"), mode="analog")
        .run()
        .rel_error
    )
    assert rel32 <= 1.5 * rel64
