"""Time-domain dot-product chain tests (Eq. 2 and sub-ranging)."""

import numpy as np

from repro.circuits import (
    HardwareNoiseConfig,
    ReRAMCrossbar,
    SubRangingDotProduct,
    TimeDomainDotProduct,
)

RNG = np.random.default_rng(99)


def _chain(rows=24, cols=12):
    xb = ReRAMCrossbar(rows, cols)
    xb.program(RNG.integers(0, xb.cell.levels, size=(rows, cols)))
    return TimeDomainDotProduct(xb)


def test_ideal_chain_recovers_exact_dot_product():
    chain = _chain()
    codes = RNG.integers(0, 256, size=chain.crossbar.rows)
    np.testing.assert_allclose(
        chain.compute(codes), chain.crossbar.ideal_dot_product(codes), atol=1e-6
    )


def test_ideal_chain_batched_inputs():
    chain = _chain()
    batch = RNG.integers(0, 256, size=(6, chain.crossbar.rows))
    np.testing.assert_allclose(
        chain.compute(batch), chain.crossbar.ideal_dot_product(batch), atol=1e-6
    )


def test_phase1_voltage_stays_below_threshold():
    chain = _chain()
    # full-scale inputs on a full-scale array must not exceed the comparator
    # threshold (the capacitor is sized for the dynamic range)
    full = np.full(chain.crossbar.rows, chain.dtc.levels - 1)
    chain.crossbar.program(
        np.full(
            (chain.crossbar.rows, chain.crossbar.cols),
            chain.crossbar.cell.levels - 1,
        )
    )
    times = chain.output_times(full)
    assert np.all(times >= 0)
    assert np.all(times <= chain.dtc.full_scale_s + 1e-18)


def test_noisy_chain_stays_close_to_ideal():
    chain = _chain(rows=64, cols=8)
    codes = RNG.integers(0, 256, size=64)
    noise = HardwareNoiseConfig(seed=3)
    ideal = chain.crossbar.ideal_dot_product(codes).astype(float)
    est = chain.compute(codes, noise)
    scale = max(float(np.max(np.abs(ideal))), 1.0)
    assert np.all(np.abs(est - ideal) / scale < 0.15)


def test_subranging_recovers_wide_weights():
    weights = RNG.integers(0, 256, size=(24, 10))
    sr = SubRangingDotProduct(weights, rows=24, cols=10)
    batch = RNG.integers(0, 256, size=(4, 24))
    np.testing.assert_allclose(sr.compute(batch), sr.ideal(batch), atol=1e-5)
    # the ideal reference itself must equal a plain integer matmul
    np.testing.assert_array_equal(
        sr.ideal(batch), batch.astype(np.int64) @ weights.astype(np.int64)
    )


def test_cascaded_hops_preserve_ideal_result():
    xb = ReRAMCrossbar(16, 4)
    xb.program(RNG.integers(0, 16, size=(16, 4)))
    chain = TimeDomainDotProduct(xb, cascade_hops=12)
    codes = RNG.integers(0, 256, size=16)
    np.testing.assert_allclose(
        chain.compute(codes), xb.ideal_dot_product(codes), atol=1e-6
    )
