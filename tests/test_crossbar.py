"""Crossbar behavioural-model tests: analog paths vs the ideal dot product."""

import numpy as np
import pytest

from repro.circuits import HardwareNoiseConfig, ReRAMCellSpec, ReRAMCrossbar

RNG = np.random.default_rng(1234)


def _programmed_crossbar(rows=32, cols=16):
    xb = ReRAMCrossbar(rows, cols)
    weights = RNG.integers(0, xb.cell.levels, size=(rows, cols))
    xb.program(weights)
    return xb, weights


def test_voltage_mode_matches_ideal_dot_product():
    xb, _ = _programmed_crossbar()
    levels = RNG.integers(0, 256, size=xb.rows)
    v_lsb = 1.2 / 255.0
    currents = xb.column_currents(levels * v_lsb)
    # subtract the g_min offset column and rescale to integer units
    offset = levels.sum() * v_lsb * xb.cell.g_min_s
    dots = (currents - offset) / (v_lsb * xb.cell.g_step_s)
    np.testing.assert_allclose(dots, xb.ideal_dot_product(levels), rtol=1e-9)


def test_time_mode_matches_ideal_dot_product():
    xb, _ = _programmed_crossbar()
    levels = RNG.integers(0, 256, size=xb.rows)
    t_del = 50e-12
    charges = xb.column_charges(levels * t_del, v_dd=1.2)
    offset = levels.sum() * t_del * 1.2 * xb.cell.g_min_s
    dots = (charges - offset) / (1.2 * t_del * xb.cell.g_step_s)
    np.testing.assert_allclose(dots, xb.ideal_dot_product(levels), rtol=1e-9)


def test_batched_inputs_match_per_vector_results():
    xb, _ = _programmed_crossbar()
    batch = RNG.integers(0, 256, size=(8, xb.rows))
    t_del = 50e-12
    batched = xb.column_charges(batch * t_del)
    for i, vector in enumerate(batch):
        np.testing.assert_allclose(batched[i], xb.column_charges(vector * t_del))
    assert xb.ideal_dot_product(batch).shape == (8, xb.cols)


def test_program_rejects_oversized_and_bad_rank():
    xb = ReRAMCrossbar(8, 8)
    with pytest.raises(ValueError):
        xb.program(np.zeros((9, 8), dtype=int))
    with pytest.raises(ValueError):
        xb.program(np.zeros(8, dtype=int))


def test_partial_program_utilization():
    xb = ReRAMCrossbar(8, 8)
    xb.program(np.full((4, 4), 3, dtype=int))
    assert xb.utilization() == pytest.approx(16 / 64)


def test_input_shape_validation():
    xb = ReRAMCrossbar(8, 8)
    with pytest.raises(ValueError):
        xb.column_currents(np.zeros(7))
    with pytest.raises(ValueError):
        xb.column_charges(np.zeros((2, 7)))


def test_cell_weight_conductance_roundtrip():
    cell = ReRAMCellSpec()
    weights = np.arange(cell.levels)
    recovered = cell.conductance_to_weight(cell.weight_to_conductance(weights))
    np.testing.assert_array_equal(recovered, weights)


def test_programming_noise_perturbs_conductances():
    noise = HardwareNoiseConfig(seed=7)
    xb = ReRAMCrossbar(16, 16, noise=noise)
    weights = RNG.integers(0, 16, size=(16, 16))
    xb.program(weights)
    clean = xb.cell.weight_to_conductance(weights)
    assert not np.allclose(xb.conductances, clean)
    assert np.all(xb.conductances >= 0)
