"""DTC/TDC and DAC/ADC interface tests, including the full-scale regression."""

import numpy as np
import pytest

from repro.circuits import ADC, DAC, DTC, TDC, HardwareNoiseConfig
from repro.circuits.converters import roundtrip_error_lsb


def test_dtc_tdc_roundtrip_is_lossless():
    dtc, tdc = DTC(), TDC()
    codes = np.arange(dtc.levels)
    errors = roundtrip_error_lsb(dtc, tdc, codes)
    assert np.all(errors == 0)


def test_full_scale_is_largest_representable_delay():
    # Regression: full scale used to be levels * t_del, one unit delay above
    # the largest code (levels - 1).
    for conv in (DTC(), TDC()):
        assert conv.full_scale_s == pytest.approx((conv.levels - 1) * conv.t_del_s)
        assert conv.full_scale_s < conv.levels * conv.t_del_s


def test_jittered_delay_clips_to_max_code():
    # Regression: with the old ceiling (levels * t_del) a heavily jittered
    # max-code delay could round to a code above the representable range's
    # intent; the clipped delay must digitise back to exactly levels - 1.
    dtc, tdc = DTC(), TDC()
    noise = HardwareNoiseConfig(dtc_sigma=1e6, seed=0)  # enormous jitter
    delays = np.asarray(dtc.convert(np.full(64, dtc.levels - 1), noise))
    assert np.all(delays <= (dtc.levels - 1) * dtc.t_del_s + 1e-18)
    codes = np.asarray(tdc.convert(delays))
    # positively-jittered samples clip to the ceiling and must digitise back
    # to exactly the max code, never above it
    assert np.max(codes) == dtc.levels - 1
    assert np.all((codes == 0) | (codes == dtc.levels - 1))


def test_dtc_clips_out_of_range_codes():
    dtc = DTC()
    assert dtc.convert(dtc.levels + 50) == pytest.approx(dtc.full_scale_s)
    assert dtc.convert(-3) == 0.0


def test_dac_adc_roundtrip_is_lossless():
    dac, adc = DAC(), ADC()
    codes = np.arange(dac.levels)
    recovered = adc.convert(dac.convert(codes))
    np.testing.assert_array_equal(recovered, codes)


def test_scalar_conversions_return_python_types():
    dtc, tdc = DTC(), TDC()
    delay = dtc.convert(17)
    assert isinstance(delay, float)
    assert isinstance(tdc.convert(delay), int)
    assert tdc.convert(delay) == 17
