"""CLI tests: subcommand dispatch, argument parsing, JSON schemas and exit
codes of ``python -m repro.sim`` (estimate / run / bench)."""

import json

import pytest

from repro.sim import cli


# ---------------------------------------------------------------------------
# estimate: dispatch, exit codes, back-compat
# ---------------------------------------------------------------------------

def test_bare_flags_dispatch_to_estimate(capsys):
    """The historical `python -m repro.sim --model ...` invocation still works."""
    assert cli.main(["--model", "cnn_1", "--no-per-layer"]) == 0
    out = capsys.readouterr().out
    assert "Comparison — cnn_1" in out
    assert "TIMELY" in out and "PRIME-like" in out and "ISAAC-like" in out


def test_estimate_subcommand_dispatch(capsys):
    assert cli.main(["estimate", "--model", "cnn_1", "--no-per-layer"]) == 0
    assert "Comparison — cnn_1" in capsys.readouterr().out


def test_unknown_model_exits_2_with_message(capsys):
    assert cli.main(["--model", "not_a_model"]) == 2
    err = capsys.readouterr().err
    assert "unknown model" in err and "not_a_model" in err


def test_unknown_configs_exit_2_with_message(capsys):
    assert cli.main(["--model", "cnn_1", "--configs", "timely,bogus"]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "choose from" in err


def test_empty_configs_exit_2(capsys):
    assert cli.main(["--model", "cnn_1", "--configs", " , "]) == 2
    assert "choose from" in capsys.readouterr().err


def test_invalid_crossbar_geometry_exits_2(capsys):
    assert cli.main(["--model", "cnn_1", "--rows", "0"]) == 2
    assert "invalid" in capsys.readouterr().err


def test_list_models_exits_0(capsys):
    assert cli.main(["--list-models"]) == 0
    out = capsys.readouterr().out
    assert "cnn_1" in out and "vgg_d" in out


# ---------------------------------------------------------------------------
# estimate --json schema
# ---------------------------------------------------------------------------

def test_estimate_json_schema(capsys):
    assert cli.main(
        ["estimate", "--model", "cnn_1", "--json", "--pipelined", "--configs", "timely,prime"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["model"] == "cnn_1"
    assert doc["pipelined"] is True
    assert doc["config"]["rows"] == 256
    assert [e["accelerator"] for e in doc["estimates"]] == ["TIMELY", "PRIME-like"]
    for est in doc["estimates"]:
        for key in (
            "energy_uj",
            "latency_ms",
            "pipelined_latency_ms",
            "area_mm2",
            "tops_per_watt",
            "gops",
            "pipelined_gops",
            "crossbars",
            "layers",
        ):
            assert key in est
        assert est["pipelined_latency_ms"] <= est["latency_ms"]
        assert est["layers"][0].keys() >= {"name", "kind", "crossbars", "energy_pj"}


def test_estimate_json_no_per_layer_omits_layers(capsys):
    assert cli.main(["estimate", "--model", "cnn_1", "--json", "--no-per-layer"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert all("layers" not in est for est in doc["estimates"])


# ---------------------------------------------------------------------------
# run
# ---------------------------------------------------------------------------

def test_run_json_schema(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["model"] == "tiny_cnn"
    assert doc["mode"] == "analog"
    assert doc["backend"] == "packed"
    assert doc["batch"] == 0
    assert doc["validate"] is True
    assert doc["noise_scale"] == 0.0
    assert doc["crossbars"] > 0
    assert 0.0 <= doc["rel_error"] < 0.1
    assert {trace["kind"] for trace in doc["layers"]} >= {"conv", "fc"}
    for trace in doc["layers"]:
        assert trace.keys() >= {"name", "kind", "crossbars", "rel_error"}


def test_run_backends_agree_noiselessly(capsys):
    """Both CLI backends report the same rel error to float tolerance."""
    assert cli.main(["run", "--model", "tiny_cnn", "--json"]) == 0
    packed = json.loads(capsys.readouterr().out)
    assert cli.main(["run", "--model", "tiny_cnn", "--json", "--backend", "tiled"]) == 0
    tiled = json.loads(capsys.readouterr().out)
    assert tiled["backend"] == "tiled"
    assert packed["rel_error"] == pytest.approx(tiled["rel_error"], rel=1e-9)


def test_run_no_validate_omits_errors(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--json", "--no-validate"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["validate"] is False
    assert doc["rel_error"] is None
    assert all(trace["rel_error"] is None for trace in doc["layers"])


def test_run_no_validate_table_output(capsys):
    assert cli.main(["run", "--model", "tiny_mlp", "--no-validate"]) == 0
    out = capsys.readouterr().out
    assert "validation skipped" in out


def test_run_batched(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--json", "--batch", "2"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["batch"] == 2
    assert doc["rel_error"] < 0.1


@pytest.mark.parametrize("value", ["-1", "0"])
def test_run_non_positive_batch_is_a_usage_error(capsys, value):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["run", "--model", "tiny_cnn", "--batch", value])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "--batch" in err and "must be a positive integer" in err


@pytest.mark.parametrize("value", ["-5", "0"])
def test_run_non_positive_chunk_bytes_is_a_usage_error(capsys, value):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["run", "--model", "tiny_cnn", "--chunk-bytes", value])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "--chunk-bytes" in err and "must be a positive integer" in err


@pytest.mark.parametrize("value", ["-1", "0"])
def test_sweep_non_positive_trials_is_a_usage_error(capsys, value):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["sweep", "--trials", value])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "--trials" in err and "must be a positive integer" in err


def test_run_non_integer_chunk_bytes_is_a_usage_error(capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "--model", "tiny_cnn", "--chunk-bytes", "lots"])
    assert "invalid int value" in capsys.readouterr().err


def test_run_kernel_and_threads_reported_in_json(capsys):
    assert cli.main(
        ["run", "--model", "tiny_cnn", "--json", "--kernel", "numpy",
         "--chunk-bytes", "65536", "--threads", "2"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kernel"] == "numpy"
    assert doc["threads"] == 2
    assert doc["chunk_bytes"] == 65536


def test_run_kernel_tiers_agree_bitwise(capsys):
    from repro.kernels.dispatch import available

    docs = {}
    for tier in available():
        assert cli.main(
            ["run", "--model", "tiny_cnn", "--json", "--kernel", tier]
        ) == 0
        docs[tier] = json.loads(capsys.readouterr().out)
    reference = docs["numpy"]
    for tier, doc in docs.items():
        assert doc["kernel"] == tier
        assert doc["rel_error"] == reference["rel_error"]


def test_run_rejects_unknown_kernel(capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "--model", "tiny_cnn", "--kernel", "fortran"])
    assert "--kernel" in capsys.readouterr().err


def test_run_table_output(capsys):
    assert cli.main(["run", "--model", "tiny_mlp", "--mode", "ideal"]) == 0
    out = capsys.readouterr().out
    assert "Engine run — tiny_mlp" in out
    assert "rel. error vs float reference" in out


def test_run_with_noise_reports_higher_error(capsys):
    assert cli.main(["run", "--model", "tiny_mlp", "--json"]) == 0
    clean = json.loads(capsys.readouterr().out)
    assert cli.main(
        ["run", "--model", "tiny_mlp", "--json", "--noise", "1.0", "--noise-seed", "3"]
    ) == 0
    noisy = json.loads(capsys.readouterr().out)
    assert noisy["rel_error"] > clean["rel_error"]


def test_run_unknown_model_exits_2(capsys):
    assert cli.main(["run", "--model", "nope"]) == 2
    assert "unknown model" in capsys.readouterr().err


def test_run_branching_model_succeeds(capsys):
    """Branching topologies execute through the CLI (graph-IR engine)."""
    assert cli.main(["run", "--model", "resnet_smoke", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["rel_error"] < 5e-2
    names = [layer["name"] for layer in doc["layers"]]
    assert "block1_add" in names and "block1_proj" in names


def test_run_negative_noise_exits_2(capsys):
    assert cli.main(["run", "--model", "tiny_mlp", "--noise", "-1"]) == 2
    assert "invalid configuration" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# program + --state-cache (program once, run many)
# ---------------------------------------------------------------------------

def test_program_json_schema_and_cache_hit(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["program", "--model", "tiny_cnn", "--state-cache", cache, "--json"]
    assert cli.main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["model"] == "tiny_cnn"
    assert first["mode"] == "analog" and first["backend"] == "packed"
    assert first["source"] == "programmed"
    assert len(first["key"]) == 16
    assert first["layers"] > 0 and first["state_mb"] > 0
    assert first["program_s"] > 0
    assert (tmp_path / "cache" / first["key"] / "meta.json").is_file()
    # the second invocation is a disk hit on the same content key
    assert cli.main(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["source"] == "disk"
    assert second["key"] == first["key"]


def test_program_text_output(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert cli.main(["program", "--model", "tiny_mlp", "--state-cache", cache]) == 0
    assert "programmed: tiny_mlp" in capsys.readouterr().out
    assert cli.main(["program", "--model", "tiny_mlp", "--state-cache", cache]) == 0
    assert "cache hit (disk)" in capsys.readouterr().out


def test_program_unknown_model_exits_2(tmp_path, capsys):
    assert cli.main(
        ["program", "--model", "nope", "--state-cache", str(tmp_path / "c")]
    ) == 2
    assert "unknown model" in capsys.readouterr().err


def test_run_state_cache_hit_skips_programming(tmp_path, capsys):
    """The acceptance smoke: a cache-hit run reports the hit, programs
    (nearly) nothing, and lands on the identical rel_error."""
    base = ["run", "--model", "tiny_cnn", "--json"]
    cached = base + ["--state-cache", str(tmp_path / "cache")]
    assert cli.main(base) == 0
    plain = json.loads(capsys.readouterr().out)
    assert plain["programming"]["cache"] == "off"
    assert cli.main(cached) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["programming"]["cache"] == "programmed"
    assert cli.main(cached) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["programming"]["cache"] == "disk"
    assert warm["programming"]["key"] == cold["programming"]["key"]
    # identical numbers whether programmed fresh, cold-cached or cache-hit
    assert plain["rel_error"] == cold["rel_error"] == warm["rel_error"]
    assert plain["layers"] == cold["layers"] == warm["layers"]
    assert warm["program_s"] > 0 and warm["run_s"] > 0


def test_run_state_cache_mmap(tmp_path, capsys):
    cached = [
        "run", "--model", "tiny_cnn", "--json",
        "--state-cache", str(tmp_path / "cache"), "--mmap",
    ]
    assert cli.main(cached) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cli.main(cached) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["programming"]["cache"] == "disk"
    assert warm["rel_error"] == cold["rel_error"]


def test_run_state_cache_table_reports_source(tmp_path, capsys):
    cached = ["run", "--model", "tiny_mlp", "--state-cache", str(tmp_path / "cache")]
    assert cli.main(cached) == 0
    assert ": programmed" in capsys.readouterr().out
    assert cli.main(cached) == 0
    assert ": disk" in capsys.readouterr().out


def test_run_compute_dtype_and_chunking(capsys):
    base = ["run", "--model", "tiny_cnn", "--json"]
    assert cli.main(base) == 0
    f64 = json.loads(capsys.readouterr().out)
    assert f64["compute_dtype"] == "float64" and f64["chunk_bytes"] is None
    assert cli.main(base + ["--compute-dtype", "float32"]) == 0
    f32 = json.loads(capsys.readouterr().out)
    assert f32["compute_dtype"] == "float32"
    # float32 stays at the same 8-bit quantisation floor
    assert f32["rel_error"] <= 1.5 * f64["rel_error"]
    assert cli.main(base + ["--chunk-bytes", "8192"]) == 0
    chunked = json.loads(capsys.readouterr().out)
    assert chunked["chunk_bytes"] == 8192
    # chunk-fused read-out agrees to float rounding; at this size exactly
    assert abs(chunked["rel_error"] - f64["rel_error"]) < 1e-9
    with pytest.raises(SystemExit):  # rejected at parse time since PR-10
        cli.main(base + ["--chunk-bytes", "-1"])
    capsys.readouterr()


def test_run_stream_matches_resident_and_bounds_wired_peak(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    base = ["run", "--model", "tiny_cnn", "--json", "--state-cache", cache]
    assert cli.main(base) == 0
    resident = json.loads(capsys.readouterr().out)
    assert cli.main(base + ["--stream"]) == 0
    streamed = json.loads(capsys.readouterr().out)
    assert streamed["stream"] and not resident["stream"]
    assert streamed["rel_error"] == resident["rel_error"]
    assert streamed["layers"] == resident["layers"]
    assert 0 < streamed["peak_wired_mb"] < resident["peak_wired_mb"]
    assert streamed["peak_rss_mb"] is None or streamed["peak_rss_mb"] > 0


def test_run_stream_streams_even_when_it_programs_cold(tmp_path, capsys):
    """--stream on a cold cache re-opens the just-written snapshot."""
    args = [
        "run", "--model", "tiny_mlp", "--json",
        "--state-cache", str(tmp_path / "cache"), "--stream",
    ]
    assert cli.main(args) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["programming"]["cache"] == "programmed"
    assert doc["stream"] is True and doc["peak_wired_mb"] > 0


def test_run_stream_without_state_cache_exits_2(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--stream"]) == 2
    assert "--state-cache" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------

def _sweep_args(tmp_path, *extra):
    return [
        "sweep",
        "--model",
        "tiny_cnn",
        "--noise-grid",
        "0,1",
        "--trials",
        "2",
        "--output",
        str(tmp_path / "rows.jsonl"),
        *extra,
    ]


def test_sweep_json_schema_and_monotone_errors(tmp_path, capsys):
    assert cli.main(_sweep_args(tmp_path, "--json")) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["grid"]["models"] == ["tiny_cnn"]
    assert doc["grid"]["noise_scales"] == [0.0, 1.0]
    assert doc["trials"] == 4
    assert doc["computed"] == 4 and doc["skipped"] == 0
    assert doc["executed"] == 3  # the two noiseless trials share one run
    assert doc["trials_per_sec"] > 0
    scales = [entry["noise_scale"] for entry in doc["summary"]]
    errors = [entry["mean_rel_error"] for entry in doc["summary"]]
    assert scales == [0.0, 1.0]
    assert errors[0] < errors[1]
    for entry in doc["summary"]:
        assert entry.keys() >= {
            "model",
            "cell_bits",
            "backend",
            "trials",
            "mean_rel_error",
            "p95_rel_error",
            "max_rel_error",
            "layers",
        }
    assert (tmp_path / "rows.jsonl").is_file()


def test_sweep_resume_computes_zero(tmp_path, capsys):
    assert cli.main(_sweep_args(tmp_path, "--json")) == 0
    capsys.readouterr()
    assert cli.main(_sweep_args(tmp_path, "--resume", "--json")) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["computed"] == 0
    assert doc["skipped"] == 4


def test_sweep_table_output(tmp_path, capsys):
    assert cli.main(_sweep_args(tmp_path, "--per-layer")) == 0
    out = capsys.readouterr().out
    assert "Sweep — tiny_cnn" in out
    assert "mean err" in out and "p95 err" in out


def test_sweep_unknown_model_exits_2(tmp_path, capsys):
    assert cli.main(["sweep", "--model", "nope", "--output", str(tmp_path / "x")]) == 2
    assert "unknown model" in capsys.readouterr().err


def test_sweep_invalid_noise_grid_exits_2(tmp_path, capsys):
    args = _sweep_args(tmp_path)
    args[args.index("0,1")] = "0,abc"
    assert cli.main(args) == 2
    assert "invalid sweep configuration" in capsys.readouterr().err
    args[args.index("0,abc")] = "-1"
    assert cli.main(args) == 2
    assert "invalid sweep configuration" in capsys.readouterr().err


def test_sweep_state_cache_and_timing_fields(tmp_path, capsys):
    """`sweep --state-cache` persists the programmed snapshot and the JSON
    carries the programming / pool-startup split."""
    cache = str(tmp_path / "cache")
    assert cli.main(_sweep_args(tmp_path, "--json", "--state-cache", cache)) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["program_s"] > 0
    assert doc["pool_startup_s"] == 0  # single-worker sweeps run inline
    entries = list((tmp_path / "cache").iterdir())
    assert len(entries) == 1 and (entries[0] / "meta.json").is_file()


def test_sweep_unknown_backend_exits_2(tmp_path, capsys):
    assert cli.main(_sweep_args(tmp_path, "--backend", "bogus")) == 2
    assert "invalid sweep configuration" in capsys.readouterr().err


def test_sweep_compute_dtype_axis(tmp_path, capsys):
    args = _sweep_args(tmp_path, "--compute-dtype", "float64,float32", "--json")
    assert cli.main(args) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["grid"]["compute_dtypes"] == ["float64", "float32"]
    assert doc["trials"] == doc["computed"] == 8  # 2 dtypes x 2 scales x 2
    assert cli.main(_sweep_args(tmp_path, "--compute-dtype", "float16")) == 2
    assert "invalid sweep configuration" in capsys.readouterr().err


def test_program_compute_dtype_gets_its_own_key(tmp_path, capsys):
    base = [
        "program", "--model", "tiny_mlp", "--json",
        "--state-cache", str(tmp_path / "cache"),
    ]
    assert cli.main(base) == 0
    f64 = json.loads(capsys.readouterr().out)
    assert cli.main(base + ["--compute-dtype", "float32"]) == 0
    f32 = json.loads(capsys.readouterr().out)
    assert f32["compute_dtype"] == "float32"
    assert f32["source"] == "programmed"  # no aliasing with the f64 entry
    assert f32["key"] != f64["key"]
    assert f32["state_mb"] < f64["state_mb"]  # half-width payload


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

def test_bench_writes_artifact(tmp_path, capsys):
    out_path = tmp_path / "BENCH_engine.json"
    assert cli.main(
        [
            "bench",
            "--output",
            str(out_path),
            "--estimator-model",
            "cnn_1",
            "--engine-model",
            "tiny_cnn",
            "--sweep-model",
            "tiny_cnn",
            "--sweep-trials",
            "2",
            "--stream-model",
            "tiny_cnn",
        ]
    ) == 0
    doc = json.loads(out_path.read_text())
    assert doc["estimator"]["model"] == "cnn_1"
    assert len(doc["estimator"]["accelerators"]) == 3
    assert doc["estimator"]["accelerators"][0]["tops_per_watt"] > 0
    assert doc["engine"]["model"] == "tiny_cnn"
    assert doc["engine"]["elapsed_s"] > 0
    assert doc["engine"]["rel_error"] < 0.1
    # both engine backends are timed with peak- and resident-memory figures
    for backend in ("packed", "tiled"):
        assert doc["engine"]["backends"][backend]["elapsed_s"] > 0
        assert doc["engine"]["backends"][backend]["peak_mb"] > 0
        assert doc["engine"]["backends"][backend]["programmed_mb"] > 0
    # the packed layout must hold less programmed state than padded tiles
    assert (
        doc["engine"]["backends"]["packed"]["programmed_mb"]
        < doc["engine"]["backends"]["tiled"]["programmed_mb"]
    )
    assert doc["engine"]["speedup"] > 1.0
    assert doc["im2col"]["speedup"] > 1.0
    # sweep smoke: legacy-serial vs shared-state vs warm-pool legs
    assert doc["sweep"]["model"] == "tiny_cnn"
    assert doc["sweep"]["trials"] == 4
    assert doc["sweep"]["engine_runs"] == 3  # noiseless pair shares one run
    assert doc["sweep"]["workers"] == 2
    assert doc["sweep"]["serial_trials_per_sec"] > 0
    assert doc["sweep"]["serial_s"] > 0 and doc["sweep"]["parallel_s"] > 0
    assert doc["sweep"]["shared_serial_s"] > 0
    assert doc["sweep"]["program_s"] > 0
    assert doc["sweep"]["pool_startup_s"] > 0  # reported apart from the trials
    assert doc["sweep"]["parallel_speedup"] > 0
    assert doc["sweep"]["steady_state_speedup"] > 0
    # program-once cache smoke: cold programming, then disk + memory hits
    cache = doc["programming_cache"]
    assert cache["model"] == "tiny_cnn"
    assert cache["sources"] == ["programmed", "disk", "memory"]
    assert cache["program_s"] > cache["memory_hit_s"]
    assert cache["state_mb"] > 0 and len(cache["key"]) == 16
    # streaming section: dtype timing, chunked peak, subprocess memory legs
    streaming = doc["streaming"]
    assert streaming["model"] == "tiny_cnn"
    assert streaming["dtype"]["float64_s"] > 0
    assert streaming["dtype"]["float32_s"] > 0
    assert streaming["dtype"]["float32_speedup"] > 0
    assert streaming["chunked"]["peak_mb"] > 0
    assert streaming["chunked"]["unchunked_peak_mb"] > 0
    stream = streaming["stream"]
    assert stream["streamed_peak_wired_mb"] < stream["resident_peak_wired_mb"]
    assert stream["resident_peak_rss_mb"] > 0
    assert stream["streamed_peak_rss_mb"] > 0
    assert doc["deep_engine"] is None  # no --deep-model given


def test_bench_default_output_is_repo_root():
    path = cli._default_bench_output()
    assert path.endswith("BENCH_engine.json")
    import pathlib

    parent = pathlib.Path(path).parent
    assert (parent / "pyproject.toml").is_file()


def test_bench_unknown_model_exits_2(tmp_path, capsys):
    assert cli.main(["bench", "--output", str(tmp_path / "b.json"), "--engine-model", "x"]) == 2
    assert "unknown model" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# fault injection + robustness flags
# ---------------------------------------------------------------------------

def test_peak_rss_degrades_to_none_without_any_source(tmp_path, monkeypatch):
    """No procfs and no getrusage → peak_rss_mb reports None, never raises."""
    import builtins

    real_import = builtins.__import__

    def no_resource(name, *args, **kwargs):
        if name == "resource":
            raise ImportError("simulated platform without resource")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_resource)
    assert cli._peak_rss_mb(status_path=str(tmp_path / "missing")) is None


def test_peak_rss_tolerates_malformed_procfs(tmp_path):
    status = tmp_path / "status"
    status.write_text("VmHWM: not-a-number\n")
    value = cli._peak_rss_mb(status_path=str(status))
    assert value is None or value > 0  # getrusage fallback where available


def test_peak_rss_parses_vmhwm(tmp_path):
    status = tmp_path / "status"
    status.write_text("VmPeak:  999 kB\nVmHWM:  2048 kB\n")
    assert cli._peak_rss_mb(status_path=str(status)) == 2048 * 1024 / 1e6


def test_run_fault_flags_report_counts(capsys):
    assert cli.main([
        "run", "--model", "tiny_cnn", "--stuck-on", "0.01", "--stuck-off",
        "0.01", "--spare-rows", "8", "--remap-threshold", "0", "--json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["faults"]["stuck_cells"] > 0
    assert doc["faults"]["remapped_rows"] > 0
    assert doc["faults"]["spare_rows"] == 8
    assert all("stuck_cells" in layer for layer in doc["layers"])


def test_run_without_fault_flags_reports_null_faults(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["faults"] is None
    assert "stuck_cells" not in doc["layers"][0]


def test_run_faults_degrade_accuracy(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--json"]) == 0
    clean = json.loads(capsys.readouterr().out)
    assert cli.main([
        "run", "--model", "tiny_cnn", "--stuck-on", "0.02", "--json",
    ]) == 0
    faulted = json.loads(capsys.readouterr().out)
    assert faulted["rel_error"] > clean["rel_error"]


def test_run_invalid_fault_fraction_exits_2(capsys):
    assert cli.main(["run", "--model", "tiny_cnn", "--stuck-on", "1.5"]) == 2
    assert "stuck_on_fraction" in capsys.readouterr().err


def test_run_faults_in_ideal_mode_exit_2(capsys):
    assert cli.main([
        "run", "--model", "tiny_cnn", "--mode", "ideal", "--stuck-on", "0.01",
    ]) == 2
    assert "analog" in capsys.readouterr().err


def test_sweep_stuck_grid_and_retry_flags(tmp_path, capsys):
    assert cli.main(_sweep_args(
        tmp_path, "--noise-grid", "0", "--stuck-grid", "0,0.05",
        "--max-retries", "1", "--trial-timeout", "0", "--keep-going",
        "--rows", "64", "--cols", "64", "--json",
    )) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["failed"] == 0
    assert doc["grid"]["stuck_fractions"] == [0.0, 0.05]
    by_stuck = {entry["stuck_fraction"]: entry for entry in doc["summary"]}
    assert by_stuck[0.05]["mean_rel_error"] > by_stuck[0.0]["mean_rel_error"]


def test_sweep_invalid_stuck_grid_exits_2(tmp_path, capsys):
    assert cli.main(_sweep_args(tmp_path, "--stuck-grid", "2")) == 2
    assert "stuck fractions" in capsys.readouterr().err
