"""ProgrammedState tests: program/from_state compose identity, save/load
round-trips (eager and mmap) that stay byte-identical through execution,
state/request mismatch rejection, content keys and the LRU + disk cache."""

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import ArchSpec, SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    ProgrammedState,
    ProgrammedStateCache,
    program,
    state_key,
)
from repro.engine.state import STATE_FORMAT
from repro.nn.models import build_model

#: cell splits exercised by the round-trip matrix: 8-bit weights over
#: 8-bit cells (1 slice), 4-bit cells (2 slices) and 2-bit cells (4 slices)
CELL_SPLITS = (8, 4, 2)


def _run_pair(fresh, rebuilt, x):
    """Run both executors on ``x`` and return their results."""
    return fresh.run(x), rebuilt.run(x)


def _assert_identical(fresh_result, rebuilt_result):
    np.testing.assert_array_equal(fresh_result.output, rebuilt_result.output)
    assert fresh_result.rel_error == rebuilt_result.rel_error
    for a, b in zip(fresh_result.traces, rebuilt_result.traces):
        assert a.name == b.name and a.rel_error == b.rel_error


# ---------------------------------------------------------------------------
# program / from_state compose identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["packed", "tiled"])
@pytest.mark.parametrize("mode", ["analog", "ideal"])
def test_legacy_constructor_equals_program_plus_from_state(backend, mode):
    """The historical one-shot constructor is exactly program + wire."""
    network = build_model("tiny_cnn")
    ctx = SimContext(backend=backend)
    legacy = NetworkExecutor(network, ctx, mode=mode)
    state = program(network, ctx, mode)
    rebuilt = NetworkExecutor.from_state(state, network=network, ctx=ctx)
    x = legacy.random_input()
    _assert_identical(*_run_pair(legacy, rebuilt, x))


def test_from_state_defaults_rebuild_model_and_context():
    """from_state with no network/ctx reconstructs both from the state."""
    network = build_model("tiny_mlp")
    ctx = SimContext(seed=5, backend="packed")
    state = program(network, ctx, "analog")
    rebuilt = NetworkExecutor.from_state(state)
    assert rebuilt.ctx.seed == 5
    assert rebuilt.backend == "packed"
    fresh = NetworkExecutor(network, ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


def test_executor_records_its_state():
    network = build_model("tiny_mlp")
    executor = NetworkExecutor(network, SimContext())
    assert isinstance(executor.state, ProgrammedState)
    assert executor.state.model == "tiny_mlp"
    assert executor.state.key == state_key(
        "tiny_mlp", executor.ctx.arch, "analog", executor.backend, 0
    )


# ---------------------------------------------------------------------------
# save -> load -> execute round-trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["packed", "tiled"])
@pytest.mark.parametrize("cell_bits", CELL_SPLITS)
@pytest.mark.parametrize("mmap", [False, True])
def test_round_trip_is_byte_identical_across_cell_splits(
    tmp_path, backend, cell_bits, mmap
):
    """save -> load (eager and mmap) -> from_state reproduces a freshly
    programmed executor bit-for-bit, for every bit-cell slicing."""
    network = build_model("tiny_cnn")
    ctx = SimContext(arch=ArchSpec(cell_bits=cell_bits), backend=backend)
    fresh = NetworkExecutor(network, ctx)
    fresh.state.save(tmp_path / "state")
    loaded = ProgrammedState.load(tmp_path / "state", mmap=mmap)
    rebuilt = NetworkExecutor.from_state(loaded, network=network, ctx=ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_round_trip_branching_model(tmp_path, backend):
    """A branching DAG (residual adds + projection) survives the round trip."""
    network = build_model("resnet_smoke")
    ctx = SimContext(backend=backend)
    fresh = NetworkExecutor(network, ctx)
    fresh.state.save(tmp_path / "state")
    loaded = ProgrammedState.load(tmp_path / "state")
    rebuilt = NetworkExecutor.from_state(loaded, network=network, ctx=ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_round_trip_with_noise_is_bit_identical(tmp_path, backend):
    """Per-trial programming variation applies identically on top of a
    loaded snapshot — the property the sweep pool's byte-identity rests on."""
    network = build_model("tiny_cnn")
    ctx = SimContext(noise=HardwareNoiseConfig(), seed=3, backend=backend)
    fresh = NetworkExecutor(network, ctx)
    fresh.state.save(tmp_path / "state")
    loaded = ProgrammedState.load(tmp_path / "state")
    rebuilt = NetworkExecutor.from_state(loaded, network=network, ctx=ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


def test_saved_meta_and_payload_round_trip_fields(tmp_path):
    network = build_model("tiny_cnn")
    ctx = SimContext(arch=ArchSpec(cell_bits=4), seed=9)
    state = program(network, ctx, "analog")
    state.save(tmp_path / "state")
    loaded = ProgrammedState.load(tmp_path / "state")
    assert loaded.model == state.model
    assert loaded.mode == state.mode
    assert loaded.backend == state.backend
    assert loaded.seed == state.seed
    assert loaded.arch == state.arch
    assert loaded.key == state.key
    assert [l.name for l in loaded.layers] == [l.name for l in state.layers]
    for a, b in zip(state.layers, loaded.layers):
        assert len(a.conductances) == len(b.conductances)
        for ca, cb in zip(a.conductances, b.conductances):
            np.testing.assert_array_equal(ca, cb)
            # BLAS results depend on operand memory layout, so the saved
            # tensors must come back with the layout they were packed in
            assert ca.flags["F_CONTIGUOUS"] == cb.flags["F_CONTIGUOUS"]


def test_save_is_idempotent_and_existing_entry_wins(tmp_path):
    network = build_model("tiny_mlp")
    state = program(network, SimContext())
    first = state.save(tmp_path / "state")
    marker = first / "marker"
    marker.write_text("existing entry")
    second = state.save(tmp_path / "state")
    assert second == first
    assert marker.read_text() == "existing entry"  # rename did not clobber
    # no tmp droppings left behind
    assert [p.name for p in tmp_path.iterdir()] == ["state"]


def test_load_rejects_missing_and_wrong_format(tmp_path):
    with pytest.raises(EngineError, match="no programmed state"):
        ProgrammedState.load(tmp_path / "nope")
    state = program(build_model("tiny_mlp"), SimContext())
    path = state.save(tmp_path / "state")
    meta = path / "meta.json"
    meta.write_text(
        meta.read_text().replace(f'"format": {STATE_FORMAT}', '"format": 999')
    )
    with pytest.raises(EngineError, match="format"):
        ProgrammedState.load(path)


# ---------------------------------------------------------------------------
# state / request mismatch rejection
# ---------------------------------------------------------------------------

def test_mismatched_state_is_rejected():
    network = build_model("tiny_cnn")
    other = build_model("tiny_mlp")
    ctx = SimContext()
    state = program(network, ctx)
    with pytest.raises(EngineError, match="model"):
        NetworkExecutor(other, ctx, state=state)
    with pytest.raises(EngineError, match="mode"):
        NetworkExecutor(network, ctx, mode="ideal", state=state)
    with pytest.raises(EngineError, match="backend"):
        NetworkExecutor(network, ctx, backend="tiled", state=state)
    with pytest.raises(EngineError, match="seed"):
        NetworkExecutor(network, SimContext(seed=1), state=state)
    with pytest.raises(EngineError, match="arch"):
        NetworkExecutor(network, SimContext(arch=ArchSpec(cell_bits=2)), state=state)


def test_noise_difference_is_not_a_mismatch():
    """The state is noise-free; a noisy context may execute it directly."""
    network = build_model("tiny_mlp")
    state = program(network, SimContext())
    noisy_ctx = SimContext(noise=HardwareNoiseConfig())
    rebuilt = NetworkExecutor(network, noisy_ctx, state=state)
    fresh = NetworkExecutor(network, noisy_ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------

def test_state_key_is_stable_and_sensitive():
    arch = ArchSpec()
    base = state_key("cnn_1", arch, "analog", "packed", 0)
    assert base == state_key("cnn_1", arch, "analog", "packed", 0)
    assert len(base) == 16 and int(base, 16) >= 0
    assert base != state_key("mlp_l", arch, "analog", "packed", 0)
    assert base != state_key("cnn_1", arch, "ideal", "packed", 0)
    assert base != state_key("cnn_1", arch, "analog", "tiled", 0)
    assert base != state_key("cnn_1", arch, "analog", "packed", 1)
    assert base != state_key("cnn_1", ArchSpec(cell_bits=2), "analog", "packed", 0)


# ---------------------------------------------------------------------------
# ProgrammedStateCache
# ---------------------------------------------------------------------------

def test_cache_sources_programmed_then_disk_then_memory(tmp_path):
    cache = ProgrammedStateCache(root=tmp_path / "cache")
    network = build_model("tiny_mlp")
    ctx = SimContext()
    state1, source1 = cache.get_or_program(network, ctx)
    assert source1 == "programmed"
    assert (cache.path_for(state1.key) / "meta.json").is_file()
    # a fresh cache over the same root must hit disk, not re-program
    cold = ProgrammedStateCache(root=tmp_path / "cache")
    state2, source2 = cold.get_or_program(network, ctx)
    assert source2 == "disk"
    state3, source3 = cold.get_or_program(network, ctx)
    assert source3 == "memory"
    assert state3 is state2
    assert cold.counts == {"memory": 1, "disk": 1, "programmed": 0}
    # all three states execute identically
    a = NetworkExecutor.from_state(state1, network=network).run()
    b = NetworkExecutor.from_state(state2, network=network).run()
    np.testing.assert_array_equal(a.output, b.output)


def test_cache_memory_only_reprograms_after_eviction():
    cache = ProgrammedStateCache(memory_entries=1)
    network_a = build_model("tiny_mlp")
    network_b = build_model("tiny_cnn")
    ctx = SimContext()
    assert cache.get_or_program(network_a, ctx)[1] == "programmed"
    assert cache.get_or_program(network_a, ctx)[1] == "memory"
    # programming B evicts A from the single-entry LRU...
    assert cache.get_or_program(network_b, ctx)[1] == "programmed"
    # ...and with no disk root, A must be programmed again
    assert cache.get_or_program(network_a, ctx)[1] == "programmed"


def test_cache_disk_backstops_lru_eviction(tmp_path):
    cache = ProgrammedStateCache(root=tmp_path / "cache", memory_entries=1)
    network_a = build_model("tiny_mlp")
    network_b = build_model("tiny_cnn")
    ctx = SimContext()
    cache.get_or_program(network_a, ctx)
    cache.get_or_program(network_b, ctx)  # evicts A from memory
    assert cache.get_or_program(network_a, ctx)[1] == "disk"


def test_cache_ignores_noise_in_lookup():
    """One snapshot serves every noise scale of a Monte-Carlo sweep."""
    cache = ProgrammedStateCache()
    network = build_model("tiny_mlp")
    clean, s1 = cache.get_or_program(network, SimContext())
    noisy, s2 = cache.get_or_program(
        network, SimContext(noise=HardwareNoiseConfig())
    )
    assert (s1, s2) == ("programmed", "memory")
    assert noisy is clean


def test_cache_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ProgrammedStateCache(memory_entries=-1)
    with pytest.raises(EngineError, match="backend"):
        ProgrammedStateCache().get_or_program(
            build_model("tiny_mlp"), SimContext(), backend="bogus"
        )


def test_cache_mmap_loads_from_disk(tmp_path):
    cache = ProgrammedStateCache(root=tmp_path / "cache", mmap=True)
    network = build_model("tiny_cnn")
    ctx = SimContext()
    state, _ = cache.get_or_program(network, ctx)
    cold = ProgrammedStateCache(root=tmp_path / "cache", mmap=True)
    mapped, source = cold.get_or_program(network, ctx)
    assert source == "disk"
    assert isinstance(mapped.layers[0].w_scales, np.memmap)
    fresh = NetworkExecutor(network, ctx)
    rebuilt = NetworkExecutor.from_state(mapped, network=network, ctx=ctx)
    x = fresh.random_input()
    _assert_identical(*_run_pair(fresh, rebuilt, x))


# ---------------------------------------------------------------------------
# corrupt snapshots
# ---------------------------------------------------------------------------

def _saved_state(tmp_path, model="tiny_mlp"):
    network = build_model(model)
    ctx = SimContext()
    state = program(network, ctx, "analog")
    return state.save(tmp_path / "state"), network, ctx


def test_load_corrupt_meta_raises_engine_error_naming_the_path(tmp_path):
    path, _, _ = _saved_state(tmp_path)
    (path / "meta.json").write_text("{ not json")
    with pytest.raises(EngineError, match=str(path)):
        ProgrammedState.load(path)


def test_load_truncated_meta_raises_engine_error(tmp_path):
    path, _, _ = _saved_state(tmp_path)
    meta = (path / "meta.json").read_text()
    (path / "meta.json").write_text(meta[: len(meta) // 2])
    with pytest.raises(EngineError, match="corrupt programmed state"):
        ProgrammedState.load(path)


def test_load_with_missing_payload_file_raises_engine_error(tmp_path):
    path, _, _ = _saved_state(tmp_path)
    victim = next(path.glob("*.npy"))
    victim.unlink()
    with pytest.raises(EngineError, match=str(path)):
        ProgrammedState.load(path)


def test_load_with_meta_missing_keys_raises_engine_error(tmp_path):
    import json as _json

    path, _, _ = _saved_state(tmp_path)
    meta = _json.loads((path / "meta.json").read_text())
    del meta["layers"]
    (path / "meta.json").write_text(_json.dumps(meta))
    with pytest.raises(EngineError, match="corrupt programmed state"):
        ProgrammedState.load(path)


def test_cache_evicts_a_corrupt_disk_entry_and_reprograms(tmp_path):
    """A torn snapshot (crash mid-save, disk rot) must not wedge the cache:
    the corrupt entry is evicted, the state re-programs and re-persists."""
    network = build_model("tiny_mlp")
    ctx = SimContext()
    warm = ProgrammedStateCache(root=tmp_path / "cache")
    state, _ = warm.get_or_program(network, ctx)
    entry = warm.path_for(state.key)
    (entry / "meta.json").write_text("{ torn")

    cold = ProgrammedStateCache(root=tmp_path / "cache")
    healed, source = cold.get_or_program(network, ctx)
    assert source == "programmed"
    assert cold.evicted == 1
    assert sorted(cold.counts) == ["disk", "memory", "programmed"]
    assert healed.key == state.key
    # the entry was re-persisted and now round-trips cleanly
    again = ProgrammedStateCache(root=tmp_path / "cache")
    _, source2 = again.get_or_program(network, ctx)
    assert source2 == "disk"
