"""Streaming-executor tests: layer-by-layer execution against a disk-backed
programmed state is bit-identical to the resident path (noise included),
bounds peak wired weight bytes by the largest single layer, reports
unchanged crossbar counts, and serves each layer from fresh memory-mapped
file handles that die with the layer."""

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    ProgrammedState,
    program,
    state_key,
)
from repro.nn.models import build_model


def _disk_state(tmp_path, model="tiny_cnn", ctx=None, mode="analog"):
    """Program ``model``, save it, and reload memory-mapped from disk."""
    network = build_model(model)
    ctx = ctx or SimContext()
    state = program(network, ctx, mode)
    path = state.save(tmp_path / "state")
    return ProgrammedState.load(path, mmap=True), network, ctx


def test_streamed_run_is_bit_identical_to_resident(tmp_path):
    state, network, ctx = _disk_state(tmp_path)
    resident = NetworkExecutor.from_state(state, network, ctx)
    streamed = NetworkExecutor.from_state(state, network, ctx, stream=True)
    x = resident.random_input()
    a = resident.run(x, validate=False)
    b = streamed.run(x, validate=False)
    assert np.array_equal(a.output, b.output)
    # the resident peak is the whole programmed payload; the streamed peak
    # is the largest single layer — strictly smaller on any multi-layer net
    assert a.peak_wired_bytes == resident.programmed_bytes
    assert 0 < b.peak_wired_bytes < a.peak_wired_bytes


def test_streamed_noisy_run_matches_resident(tmp_path):
    """Noise draws derive from (seed, layer salt), never from wiring order,
    so per-trial variation on a streamed executor reproduces the resident
    bytes exactly."""
    noise = HardwareNoiseConfig.scaled(1.0, seed=11)
    ctx = SimContext(noise=noise)
    state, network, _ = _disk_state(tmp_path, ctx=ctx)
    resident = NetworkExecutor.from_state(state, network, ctx)
    streamed = NetworkExecutor.from_state(state, network, ctx, stream=True)
    x = resident.random_input()
    assert np.array_equal(
        resident.run(x, validate=False).output,
        streamed.run(x, validate=False).output,
    )


def test_streamed_crossbars_and_bytes_match_resident(tmp_path):
    state, network, ctx = _disk_state(tmp_path)
    resident = NetworkExecutor.from_state(state, network, ctx)
    streamed = NetworkExecutor.from_state(state, network, ctx, stream=True)
    assert streamed.crossbars == resident.crossbars
    # a streaming executor wires nothing up front, so it reports the whole
    # backing payload (weights plus scales/bias); the resident figure counts
    # just the wired matmul tensors and can only be smaller
    assert streamed.programmed_bytes == state.nbytes
    assert resident.programmed_bytes <= streamed.programmed_bytes


def test_stream_layer_opens_fresh_mmap_handles(tmp_path):
    state, _, _ = _disk_state(tmp_path)
    first = state.stream_layer(0)
    second = state.stream_layer(0)
    payload = first.conductances[0]
    assert isinstance(payload, np.memmap)
    # fresh handles per call: dropping one streamed layer cannot invalidate
    # another, and nothing aliases the arrays the loaded state holds
    assert payload is not second.conductances[0]
    assert payload is not state.layers[0].conductances[0]
    assert np.array_equal(np.asarray(payload), np.asarray(second.conductances[0]))


def test_stream_layer_without_backing_files_serves_resident_layers():
    network = build_model("tiny_mlp")
    state = program(network, SimContext(), "analog")
    assert state.source_path is None
    assert state.stream_layer(0) is state.layers[0]


def test_executor_rejects_compute_dtype_mismatch():
    """A float32-programmed state must not wire under a float64 context."""
    network = build_model("tiny_mlp")
    ctx32 = SimContext(compute_dtype="float32")
    state = program(network, ctx32, "analog")
    with pytest.raises(EngineError, match="compute_dtype"):
        NetworkExecutor(network, SimContext(), mode="analog", state=state)


def test_float32_state_roundtrip_and_distinct_key(tmp_path):
    """compute_dtype survives save/load and participates in the content key."""
    network = build_model("tiny_mlp")
    ctx32 = SimContext(compute_dtype="float32")
    state = program(network, ctx32, "analog")
    assert state.compute_dtype == "float32"
    loaded = ProgrammedState.load(state.save(tmp_path / "s32"))
    assert loaded.compute_dtype == "float32"
    assert loaded.key == state.key
    arch = ctx32.arch
    assert state_key(network.name, arch, "analog", "packed", 0, "float32") != (
        state_key(network.name, arch, "analog", "packed", 0, "float64")
    )
    # and the payload really is single precision
    assert loaded.layers[0].conductances[0].dtype == np.float32


def test_streamed_float32_matches_resident_float32(tmp_path):
    ctx = SimContext(compute_dtype="float32")
    state, network, _ = _disk_state(tmp_path, ctx=ctx)
    resident = NetworkExecutor.from_state(state, network, ctx)
    streamed = NetworkExecutor.from_state(state, network, ctx, stream=True)
    x = resident.random_input()
    assert np.array_equal(
        resident.run(x, validate=False).output,
        streamed.run(x, validate=False).output,
    )
