"""Quantisation helper tests: round trips and the MSB/LSB split."""

import numpy as np
import pytest

from repro.nn.quantization import (
    combine_msb_lsb,
    quantization_error,
    quantize_symmetric,
    quantize_unsigned,
    split_msb_lsb,
)

RNG = np.random.default_rng(5)


def test_symmetric_quantization_roundtrip_error_bound():
    x = RNG.normal(size=1000)
    quant = quantize_symmetric(x, bits=8)
    assert quant.signed and quant.bits == 8
    assert np.max(np.abs(quant.dequantize() - x)) <= quant.scale / 2 + 1e-12


def test_unsigned_quantization_roundtrip_error_bound():
    x = np.abs(RNG.normal(size=1000))
    quant = quantize_unsigned(x, bits=8)
    assert not quant.signed
    assert np.all(quant.values >= 0)
    assert np.max(np.abs(quant.dequantize() - x)) <= quant.scale / 2 + 1e-12


def test_unsigned_quantization_rejects_negative_inputs():
    with pytest.raises(ValueError):
        quantize_unsigned(np.array([-1.0, 1.0]), bits=8)


def test_quantization_error_decreases_with_bits():
    x = RNG.normal(size=2000)
    assert quantization_error(x, 8) < quantization_error(x, 4)


def test_split_combine_roundtrip_unsigned():
    values = RNG.integers(0, 256, size=(32, 32))
    msb, lsb = split_msb_lsb(values, bits=8, low_bits=4)
    assert np.all((lsb >= 0) & (lsb < 16))
    assert np.all((msb >= 0) & (msb < 16))
    np.testing.assert_array_equal(combine_msb_lsb(msb, lsb, 4), values)


def test_split_combine_roundtrip_signed():
    values = RNG.integers(-128, 128, size=(32, 32))
    msb, lsb = split_msb_lsb(values, bits=8, low_bits=4)
    assert np.all((lsb >= 0) & (lsb < 16))
    np.testing.assert_array_equal(combine_msb_lsb(msb, lsb, 4), values)


def test_split_rejects_bad_low_bits():
    values = np.arange(4)
    with pytest.raises(ValueError):
        split_msb_lsb(values, bits=8, low_bits=0)
    with pytest.raises(ValueError):
        split_msb_lsb(values, bits=8, low_bits=8)
