"""Known-bad fixture: every RNG construction here violates rng-discipline."""

import numpy as np


def bench_input():
    # bare integer seed: collides with every other default_rng(0) site
    return np.random.default_rng(0).normal(size=(3,))


def os_entropy():
    # no seed at all: draws OS entropy, unreproducible
    return np.random.default_rng()


def global_state():
    # the legacy global RNG: shared mutable state across the process
    np.random.seed(42)
    return np.random.normal(size=2)


def underived(seed):
    # a bare variable is entropy nobody salted
    return np.random.default_rng(seed)
