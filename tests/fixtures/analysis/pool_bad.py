"""Known-bad fixture: unpicklable/mutable payloads at pool submission sites."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass


@dataclass
class MutableSpec:
    # not frozen: worker-side mutation diverges silently from the parent
    x: int = 0


def worker(spec: MutableSpec) -> int:
    return spec.x


def run():
    with ProcessPoolExecutor() as pool:
        fut = pool.submit(worker, MutableSpec())
        pool.submit(lambda: 1)

        def closure():
            return 2

        pool.submit(closure)
    return fut
