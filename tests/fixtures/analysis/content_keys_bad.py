"""Known-bad fixture: dataclass fields that never reach their content keys.

Self-contained miniature of the real spec classes: the class and function
names match what the rule cross-references, so this file exercises every
check without importing the engine.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArchSpec:
    rows: int = 256
    # numeric-affecting but absent from state_key below: finding
    v_span: float = 1.2
    # compare=False declares the field equality-irrelevant: auto-exempt
    spare_rows: int = field(default=0, compare=False)


def state_key(model: str, arch: ArchSpec, seed: int) -> str:
    return f"{model}:{arch.rows}:{seed}"


@dataclass(frozen=True)
class TrialSpec:
    model: str
    # covered by .key but absent from _group_key below: finding
    gain: float = 1.0

    @property
    def key(self) -> str:
        return f"{self.model}:{self.gain}"


def _group_key(spec: TrialSpec) -> str:
    return str(spec.model)
