"""Known-bad fixture: layout-discarding and narrowing casts on payloads."""

import numpy as np


def discards_layout(encoded):
    # re-copies into C order, throwing away the arranged F-order layout
    return np.ascontiguousarray(encoded)


def unordered_cast(self):
    # astype without order="K" defaults to a C-order copy
    return self._encoded.astype(np.int64)


def narrowing_cast(products):
    # recombination is pinned to float64
    return products.astype(np.float32)


def forced_order(conductances):
    # an explicit non-K order is just as layout-destroying
    return conductances.astype(np.float64, order="C")
