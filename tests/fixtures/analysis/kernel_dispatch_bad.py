"""Known-bad fixture: hot path imports kernel implementations directly."""

import repro.kernels.c_impl
from repro.kernels import numba_impl
from repro.kernels.numpy_impl import readout_fused


def run(charges, delay_sums, scalars):
    # pins the backend: no tier probing, no REPRO_KERNEL override, and a
    # missing compiler raises here instead of degrading to numpy
    repro.kernels.c_impl.load()
    numba_impl.readout_fused(charges, delay_sums, scalars)
    return readout_fused(charges, delay_sums, scalars)
