"""Known-good fixture: kernels reached only through the dispatcher."""

from repro.kernels import dispatch
from repro.kernels import im2col_pack, readout_fused
from repro.kernels.dispatch import ReadoutScalars, slice_recombine


def run(charges, delay_sums, scalars: ReadoutScalars):
    out = readout_fused(charges, delay_sums, scalars)
    cols, _, _ = im2col_pack(charges[0, 0], 3, stride=1, pad=1)
    assert dispatch.slice_recombine is slice_recombine
    return out, cols
