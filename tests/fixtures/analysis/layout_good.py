"""Known-good fixture: layout-preserving casts and out-of-scope receivers."""

import numpy as np


def preserving_cast(encoded, dtype):
    return encoded.astype(dtype, order="K")


def payload_cast(self):
    return self._encoded.astype(np.int64, order="K")


def fresh_temporary(grouped, weights):
    # a freshly computed temporary carries no layout contract
    return np.ascontiguousarray(grouped.transpose(1, 0, 2)) @ weights


def unrelated_names(delays, dtype):
    # names outside the payload/recombination sets are out of scope
    return delays.astype(dtype, copy=False)
