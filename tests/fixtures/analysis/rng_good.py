"""Known-good fixture: every RNG construction derives its entropy."""

import numpy as np
from numpy.random import default_rng

from repro.circuits.noise import stable_seed


def derived(seed, salt):
    a = np.random.default_rng(stable_seed("bench", "im2col"))
    b = np.random.default_rng((seed, salt))
    c = default_rng(np.random.SeedSequence(7))
    return a, b, c


def scoped(ctx, stream):
    # context/stream helpers own the (seed, salt) derivation
    return ctx.rng("programming"), stream.spawn()


def local_generator_draws(seed, salt):
    # draws on a *derived* Generator instance are fine — only the global
    # numpy.random state is forbidden
    rng = np.random.default_rng((seed, salt))
    return rng.normal(size=3), rng.uniform()
