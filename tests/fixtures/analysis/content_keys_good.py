"""Known-good fixture: every field reaches its key (or is compare=False)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArchSpec:
    rows: int = 256
    v_span: float = 1.2
    spare_rows: int = field(default=0, compare=False)


def state_key(model: str, arch: ArchSpec, seed: int) -> str:
    return f"{model}:{arch.rows}:{arch.v_span}:{seed}"


@dataclass(frozen=True)
class TrialSpec:
    model: str
    gain: float = 1.0

    @property
    def key(self) -> str:
        return f"{self.model}:{self.gain}"


def _group_key(spec: TrialSpec) -> str:
    return f"{spec.model}:{spec.gain}"
