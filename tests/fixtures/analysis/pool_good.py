"""Known-good fixture: frozen dataclasses and module-level workers."""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class FrozenSpec:
    x: int = 0


def worker(spec: FrozenSpec, retries: int = 0) -> int:
    return spec.x + retries


def chunk_worker(specs: Sequence[FrozenSpec], snapshot_path: str) -> int:
    return len(specs)


def _initializer(paths: Sequence[str]) -> None:
    del paths


def run(extra: Optional[FrozenSpec] = None):
    with ProcessPoolExecutor(initializer=_initializer, initargs=(["a"],)) as pool:
        fut = pool.submit(worker, extra or FrozenSpec())
        list(pool.map(chunk_worker, [[FrozenSpec()]], ["snap"]))
    return fut
