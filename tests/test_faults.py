"""Fault-injection subsystem: model validation, seed-stable + nested masks,
drift direction, redundancy remap, read-out saturation (including the
saturation=1 no-op), both backends, resident-vs-streamed bit-identity,
per-trial decorrelation and the ideal-mode no-op."""

import numpy as np
import pytest

from repro.context import ArchSpec, SimContext
from repro.engine import NetworkExecutor, program
from repro.engine.state import ProgrammedState
from repro.faults import FaultModel, FaultReport, apply_tile_faults
from repro.nn.models import build_model

STUCK = FaultModel(stuck_on_fraction=0.01, stuck_off_fraction=0.01, seed=0)


def _cell():
    return ArchSpec().cell_spec()


def _slices(shape=(32, 16), n=2, seed=0):
    cell = _cell()
    rng = np.random.default_rng(seed)
    return [
        rng.uniform(cell.g_min_s, cell.g_max_s, size=shape).astype(np.float64)
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# FaultModel
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"stuck_on_fraction": -0.1},
        {"stuck_off_fraction": 1.5},
        {"stuck_on_fraction": 0.7, "stuck_off_fraction": 0.7},
        {"stuck_on_fraction": float("nan")},
        {"drift_nu": -1.0},
        {"drift_time_s": -1.0},
        {"drift_t0_s": 0.0},
        {"readout_saturation": 0.0},
        {"readout_saturation": 1.5},
        {"remap_threshold": -0.1},
    ],
)
def test_fault_model_rejects_bad_configuration(kwargs):
    with pytest.raises(ValueError):
        FaultModel(**kwargs)


def test_fault_model_activity_switches():
    assert not FaultModel().active
    assert FaultModel(stuck_on_fraction=0.01).cell_active
    assert FaultModel(drift_nu=0.1, drift_time_s=100.0).cell_active
    # drift needs both a non-zero exponent and elapsed time
    assert not FaultModel(drift_nu=0.1).cell_active
    sat = FaultModel(readout_saturation=0.9)
    assert sat.active and not sat.cell_active


def test_drift_factor_decays_with_time():
    model = FaultModel(drift_nu=0.1, drift_time_s=1e5)
    assert 0.0 < model.drift_factor() < 1.0
    sooner = FaultModel(drift_nu=0.1, drift_time_s=1e3)
    assert model.drift_factor() < sooner.drift_factor() < 1.0
    assert FaultModel().drift_factor() == 1.0


def test_for_trial_derives_distinct_reproducible_seeds():
    a, b = STUCK.for_trial(0), STUCK.for_trial(1)
    assert a.seed != b.seed
    assert a == STUCK.for_trial(0)


# ---------------------------------------------------------------------------
# apply_tile_faults
# ---------------------------------------------------------------------------

def test_masks_are_seed_stable_across_calls():
    first, second = _slices(), _slices()
    ra = apply_tile_faults(first, _cell(), STUCK, 0, ("t", 0))
    rb = apply_tile_faults(second, _cell(), STUCK, 0, ("t", 0))
    assert ra == rb
    for x, y in zip(first, second):
        np.testing.assert_array_equal(x, y)
    # a different salt picks different cells
    other = _slices()
    apply_tile_faults(other, _cell(), STUCK, 0, ("t", 1))
    assert any(not np.array_equal(x, y) for x, y in zip(first, other))


def test_masks_nest_across_severities():
    """Every cell stuck at a low fraction is also stuck at a higher one."""
    cell = _cell()
    mild_arrays, severe_arrays = _slices(), _slices()
    mild = FaultModel(stuck_on_fraction=0.01, stuck_off_fraction=0.01)
    severe = FaultModel(stuck_on_fraction=0.05, stuck_off_fraction=0.05)
    apply_tile_faults(mild_arrays, cell, mild, 0, ("t",))
    apply_tile_faults(severe_arrays, cell, severe, 0, ("t",))
    clean = _slices()
    for m, s, c in zip(mild_arrays, severe_arrays, clean):
        changed_mild = m != c
        changed_severe = s != c
        assert np.all(changed_severe[changed_mild])


def test_stuck_cells_pin_to_rail_conductances():
    cell = _cell()
    arrays = _slices()
    # shift the payload strictly inside the rails so pinned cells stand out
    for a in arrays:
        np.clip(a, cell.g_min_s * 1.01, cell.g_max_s * 0.99, out=a)
    report = apply_tile_faults(arrays, cell, STUCK, 0, ("t",))
    pinned = sum(
        int(np.sum((a == cell.g_max_s) | (a == cell.g_min_s))) for a in arrays
    )
    assert pinned == report.stuck_cells > 0
    assert report.cells == sum(a.size for a in arrays)
    assert report.remapped_rows == report.healed_cells == 0


def test_remap_heals_the_worst_rows():
    cell = _cell()
    arrays = _slices()
    clean = _slices()
    faults = FaultModel(
        stuck_on_fraction=0.02, stuck_off_fraction=0.02, remap_threshold=0.0
    )
    report = apply_tile_faults(arrays, cell, faults, 4, ("t",))
    assert report.remapped_rows == 4
    assert report.healed_cells > 0
    # remapped rows keep their programmed (unpinned) values
    unpinned = apply_tile_faults(clean, cell, faults, 0, ("t",))
    assert unpinned.stuck_cells == report.stuck_cells + report.healed_cells
    # below-threshold tiles never engage their spares
    spared = _slices()
    lenient = FaultModel(
        stuck_on_fraction=0.02, stuck_off_fraction=0.02, remap_threshold=0.5
    )
    assert apply_tile_faults(spared, cell, lenient, 4, ("t",)).remapped_rows == 0


def test_fault_report_merges_counts():
    merged = FaultReport(cells=10, stuck_cells=2, remapped_rows=1, healed_cells=3)
    merged.merge(FaultReport(cells=5, stuck_cells=1))
    assert merged == FaultReport(
        cells=15, stuck_cells=3, remapped_rows=1, healed_cells=3
    )
    assert merged.stuck_fraction == 3 / 15
    assert FaultReport().stuck_fraction == 0.0


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

def _run(model="tiny_cnn", ctx=None, mode="analog"):
    network = build_model(model)
    ctx = ctx or SimContext()
    executor = NetworkExecutor(network, ctx, mode=mode)
    return executor.run()


@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_faults_degrade_accuracy_and_are_reported(backend):
    clean = _run(ctx=SimContext(backend=backend))
    faulted = _run(ctx=SimContext(backend=backend, faults=STUCK))
    assert faulted.rel_error > clean.rel_error
    assert faulted.stuck_cells > 0
    assert clean.stuck_cells == clean.remapped_rows == 0
    assert sum(t.stuck_cells for t in faulted.traces) == faulted.stuck_cells


@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_faulted_run_is_bit_identical_across_executors(backend):
    ctx = SimContext(backend=backend, faults=STUCK)
    a, b = _run(ctx=ctx), _run(ctx=ctx)
    assert a.rel_error == b.rel_error
    assert a.stuck_cells == b.stuck_cells


def test_remap_recovers_part_of_the_fault_error():
    faults = FaultModel(
        stuck_on_fraction=0.01, stuck_off_fraction=0.01, remap_threshold=0.0
    )
    faulted = _run(ctx=SimContext(faults=faults))
    remapped = _run(ctx=SimContext(arch=ArchSpec(spare_rows=16), faults=faults))
    assert remapped.remapped_rows > 0
    assert remapped.stuck_cells < faulted.stuck_cells
    assert remapped.rel_error < faulted.rel_error


def test_saturation_one_is_a_bit_exact_noop():
    clean = _run()
    saturated = _run(ctx=SimContext(faults=FaultModel(readout_saturation=1.0)))
    assert saturated.rel_error == clean.rel_error


def test_saturation_clipping_degrades_accuracy():
    clean = _run()
    saturated = _run(ctx=SimContext(faults=FaultModel(readout_saturation=0.05)))
    assert saturated.rel_error > clean.rel_error
    assert saturated.stuck_cells == 0  # saturation corrupts read-out, not cells


def test_ideal_mode_ignores_faults():
    clean = _run(mode="ideal")
    faulted = _run(mode="ideal", ctx=SimContext(faults=STUCK))
    assert faulted.rel_error == clean.rel_error
    assert faulted.stuck_cells == 0


def test_drift_alone_degrades_accuracy():
    drifted = _run(
        ctx=SimContext(faults=FaultModel(drift_nu=0.1, drift_time_s=1e6))
    )
    assert drifted.rel_error > _run().rel_error
    assert drifted.stuck_cells == 0  # drift shifts cells, none are pinned


def test_fault_seeds_decorrelate_realisations():
    a = _run(ctx=SimContext(faults=STUCK))
    b = _run(ctx=SimContext(faults=STUCK.for_trial(1)))
    assert a.rel_error != b.rel_error


def test_programmed_state_stays_fault_free(tmp_path):
    """Faults are wiring-time: the cached artifact serves faulty and clean
    executors alike, and a faulty run does not poison a later clean one."""
    network = build_model("tiny_cnn")
    ctx = SimContext()
    state = program(network, ctx, "analog")
    before = [[c.copy() for c in layer.conductances] for layer in state.layers]
    faulted = NetworkExecutor(
        network, SimContext(faults=STUCK), mode="analog", state=state
    ).run()
    assert faulted.stuck_cells > 0
    for layer, saved in zip(state.layers, before):
        for conductances, copy in zip(layer.conductances, saved):
            np.testing.assert_array_equal(conductances, copy)
    clean = NetworkExecutor(network, ctx, mode="analog", state=state).run()
    assert clean.rel_error == NetworkExecutor(network, ctx, mode="analog").run().rel_error


def test_streamed_faulted_run_matches_resident(tmp_path):
    network = build_model("tiny_cnn")
    ctx = SimContext(faults=STUCK)
    state = program(network, ctx, "analog")
    path = state.save(tmp_path / "state")
    disk = ProgrammedState.load(path, mmap=True)
    resident = NetworkExecutor.from_state(disk, network, ctx)
    streamed = NetworkExecutor.from_state(disk, network, ctx, stream=True)
    x = resident.random_input()
    a, b = resident.run(x), streamed.run(x)
    assert a.rel_error == b.rel_error
    assert a.stuck_cells == b.stuck_cells > 0


def test_context_for_trial_decorrelates_faults():
    ctx = SimContext(faults=STUCK)
    t0, t1 = ctx.for_trial(0), ctx.for_trial(1)
    assert t0.faults.seed != t1.faults.seed
    assert ctx.for_trial(0).faults == t0.faults


def test_spare_rows_do_not_change_state_identity():
    """spare_rows is a redundancy provision, not a content-key field: a
    cached state programs once and serves remapping and plain executors."""
    plain, spared = ArchSpec(), ArchSpec(spare_rows=16)
    assert plain == spared
    with pytest.raises(ValueError):
        ArchSpec(spare_rows=-1)
