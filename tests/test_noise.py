"""Monte-Carlo reproducibility of the hardware noise models: equal seeds
give identical draws, reseeding replays a run, different seeds differ, and
the scaled() constructor preserves the Section-V sigma ratios."""

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig


def test_same_seed_gives_identical_draws():
    a = HardwareNoiseConfig(seed=123)
    b = HardwareNoiseConfig(seed=123)
    for _ in range(5):
        np.testing.assert_array_equal(a.sample(0.1, (4, 4)), b.sample(0.1, (4, 4)))


def test_reseed_replays_the_stream():
    cfg = HardwareNoiseConfig(seed=9)
    first = [cfg.sample(0.05, (8,)) for _ in range(3)]
    cfg.reseed(9)
    replay = [cfg.sample(0.05, (8,)) for _ in range(3)]
    for a, b in zip(first, replay):
        np.testing.assert_array_equal(a, b)


def test_reseed_updates_the_recorded_seed():
    cfg = HardwareNoiseConfig(seed=1)
    cfg.reseed(2)
    assert cfg.seed == 2


def test_different_seeds_differ():
    a = HardwareNoiseConfig(seed=1)
    b = HardwareNoiseConfig(seed=2)
    assert not np.array_equal(a.sample(0.1, (16,)), b.sample(0.1, (16,)))


def test_zero_sigma_is_deterministically_zero_and_consumes_no_entropy():
    """sigma == 0 short-circuits: the stream is untouched, so a zero-sigma
    draw between two real draws must not perturb reproducibility."""
    a = HardwareNoiseConfig(seed=5)
    b = HardwareNoiseConfig(seed=5)
    first_a = a.sample(0.1, (4,))
    np.testing.assert_array_equal(a.sample(0.0, (1000,)), np.zeros(1000))
    first_b = b.sample(0.1, (4,))
    np.testing.assert_array_equal(first_a, first_b)
    np.testing.assert_array_equal(a.sample(0.1, (4,)), b.sample(0.1, (4,)))


def test_monte_carlo_sweep_reproduces_per_trial():
    """The MC pattern used by accuracy sweeps: reseeding with the trial index
    makes every trial independently reproducible."""
    def trial_draws(trial):
        cfg = HardwareNoiseConfig(seed=0)
        cfg.reseed(trial)
        return cfg.sample(0.02, (32,))

    for trial in range(4):
        np.testing.assert_array_equal(trial_draws(trial), trial_draws(trial))
    assert not np.array_equal(trial_draws(0), trial_draws(1))


def test_scaled_preserves_sigma_ratios():
    base = HardwareNoiseConfig()
    half = HardwareNoiseConfig.scaled(0.5, seed=3)
    assert half.x_subbuf_sigma == pytest.approx(base.x_subbuf_sigma * 0.5)
    assert half.dtc_sigma == pytest.approx(base.dtc_sigma * 0.5)
    assert half.reram_conductance_sigma == pytest.approx(
        base.reram_conductance_sigma * 0.5
    )
    assert half.seed == 3


def test_scaled_zero_equals_ideal():
    zero = HardwareNoiseConfig.scaled(0.0)
    ideal = HardwareNoiseConfig.ideal()
    for name in (
        "x_subbuf_sigma",
        "p_subbuf_sigma",
        "i_adder_sigma",
        "comparator_sigma",
        "dtc_sigma",
        "tdc_sigma",
        "reram_conductance_sigma",
    ):
        assert getattr(zero, name) == 0.0
        assert getattr(ideal, name) == 0.0


def test_scaled_rejects_negative_scale():
    with pytest.raises(ValueError):
        HardwareNoiseConfig.scaled(-0.1)
