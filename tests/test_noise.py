"""Stateless noise seeding: every draw derives from (seed, salt), so equal
seeds give identical draws, distinct salts decorrelate, streams replay, the
config pickles across process boundaries, and the Section-V error budget is
pinned at the paper's design point."""

import math
import pickle

import numpy as np
import pytest

from repro.circuits.noise import (
    HardwareNoiseConfig,
    NoiseBudget,
    NoiseStream,
    stable_seed,
)
from repro.context import SimContext


# ---------------------------------------------------------------------------
# stateless config draws
# ---------------------------------------------------------------------------

def test_same_seed_gives_identical_draws():
    a = HardwareNoiseConfig(seed=123)
    b = HardwareNoiseConfig(seed=123)
    for _ in range(3):
        np.testing.assert_array_equal(a.sample(0.1, (4, 4)), b.sample(0.1, (4, 4)))


def test_unsalted_draws_are_sequential_but_replayable():
    """Circuit blocks handed the bare config (legacy path) must see
    decorrelated successive draws — a 12-hop cascade may not repeat one
    jitter vector 12 times — while equal-seed configs still replay the same
    sequence."""
    a = HardwareNoiseConfig(seed=3)
    b = HardwareNoiseConfig(seed=3)
    first, second = a.sample(0.1, (8,)), a.sample(0.1, (8,))
    assert not np.array_equal(first, second)
    np.testing.assert_array_equal(b.sample(0.1, (8,)), first)
    np.testing.assert_array_equal(b.sample(0.1, (8,)), second)


def test_cascade_hops_accumulate_independent_errors():
    """Regression for the stateless redesign: each X-subBuf hop must draw
    fresh jitter (sqrt(n) accumulation), not re-apply one identical draw."""
    from repro.circuits.analog_buffers import XSubBuf

    buf = XSubBuf()
    noise = HardwareNoiseConfig(x_subbuf_sigma=0.5, seed=2)
    delays = np.full(64, 100.0 * buf.unit_delay_s)
    one_hop = np.asarray(buf.latch(delays, noise)) - delays
    two_hop_step = np.asarray(buf.latch(delays, noise)) - delays
    assert not np.array_equal(one_hop, two_hop_step)


def test_config_draws_are_pure_functions_of_seed_and_salt():
    """No hidden generator state: interleaving other draws cannot perturb a
    call, which is what makes results construction-order independent."""
    cfg = HardwareNoiseConfig(seed=7)
    first = cfg.sample(0.1, (8,), salt="site-a")
    for _ in range(5):
        cfg.sample(0.1, (16,), salt="site-b")  # unrelated consumption
    np.testing.assert_array_equal(cfg.sample(0.1, (8,), salt="site-a"), first)


def test_distinct_salts_decorrelate():
    cfg = HardwareNoiseConfig(seed=1)
    assert not np.array_equal(
        cfg.sample(0.1, (16,), salt="a"), cfg.sample(0.1, (16,), salt="b")
    )
    assert not np.array_equal(
        cfg.sample(0.1, (16,), salt=(1, 2)), cfg.sample(0.1, (16,), salt=(2, 1))
    )


def test_different_seeds_differ():
    a = HardwareNoiseConfig(seed=1)
    b = HardwareNoiseConfig(seed=2)
    assert not np.array_equal(a.sample(0.1, (16,)), b.sample(0.1, (16,)))


def test_reseed_updates_the_recorded_seed_and_the_draws():
    cfg = HardwareNoiseConfig(seed=1)
    before = cfg.sample(0.1, (8,))
    cfg.reseed(2)
    assert cfg.seed == 2
    assert not np.array_equal(cfg.sample(0.1, (8,)), before)
    cfg.reseed(1)
    np.testing.assert_array_equal(cfg.sample(0.1, (8,)), before)


def test_none_seed_normalises_to_default():
    assert HardwareNoiseConfig(seed=None).seed == 0
    np.testing.assert_array_equal(
        HardwareNoiseConfig(seed=None).sample(0.1, (4,)),
        HardwareNoiseConfig(seed=0).sample(0.1, (4,)),
    )


def test_zero_sigma_is_deterministically_zero():
    cfg = HardwareNoiseConfig(seed=5)
    np.testing.assert_array_equal(cfg.sample(0.0, (1000,)), np.zeros(1000))
    stream = cfg.stream("x")
    # zero-sigma draws consume no stream entropy
    first = cfg.stream("x").sample(0.1, (4,))
    np.testing.assert_array_equal(stream.sample(0.0, (1000,)), np.zeros(1000))
    np.testing.assert_array_equal(stream.sample(0.1, (4,)), first)


# ---------------------------------------------------------------------------
# streams
# ---------------------------------------------------------------------------

def test_equal_salt_streams_replay_identical_sequences():
    cfg = HardwareNoiseConfig(seed=9)
    a = cfg.stream("tile", 0, 1)
    b = cfg.stream("tile", 0, 1)
    for _ in range(4):
        np.testing.assert_array_equal(a.sample(0.05, (8,)), b.sample(0.05, (8,)))


def test_stream_draws_are_sequential_and_salted():
    cfg = HardwareNoiseConfig(seed=9)
    stream = cfg.stream("tile", 0, 0)
    assert not np.array_equal(stream.sample(0.05, (8,)), stream.sample(0.05, (8,)))
    assert not np.array_equal(
        cfg.stream("tile", 0, 0).sample(0.05, (8,)),
        cfg.stream("tile", 0, 1).sample(0.05, (8,)),
    )


def test_stream_exposes_config_sigmas():
    cfg = HardwareNoiseConfig(seed=3, dtc_sigma=0.25)
    stream = cfg.stream("s")
    assert stream.dtc_sigma == 0.25
    assert stream.reram_conductance_sigma == cfg.reram_conductance_sigma
    sub = stream.stream("deeper")
    assert isinstance(sub, NoiseStream)
    assert sub.salt == ("s", "deeper")


def test_monte_carlo_trials_are_independently_reproducible():
    """The MC pattern the sweep uses: per-trial seeds derived from the base
    seed make every trial reproducible in isolation."""

    def trial_draws(trial):
        cfg = HardwareNoiseConfig(seed=stable_seed(0, "trial", trial))
        return cfg.stream("layer", 0).sample(0.02, (32,))

    for trial in range(4):
        np.testing.assert_array_equal(trial_draws(trial), trial_draws(trial))
    assert not np.array_equal(trial_draws(0), trial_draws(1))


# ---------------------------------------------------------------------------
# stable_seed
# ---------------------------------------------------------------------------

def test_stable_seed_is_deterministic_and_salt_sensitive():
    assert stable_seed(0, "noise", 3) == stable_seed(0, "noise", 3)
    assert stable_seed(0, "noise", 3) != stable_seed(0, "noise", 4)
    assert stable_seed(0, "noise", 3) != stable_seed(1, "noise", 3)
    assert stable_seed(-1, "x") == stable_seed(-1, "x")  # negative ints allowed


def test_stable_seed_rejects_unhashable_salt_kinds():
    with pytest.raises(TypeError):
        stable_seed(0, 1.5)


# ---------------------------------------------------------------------------
# pickling (the sweep pool ships configs across processes)
# ---------------------------------------------------------------------------

def test_noise_config_pickle_roundtrip_preserves_draws():
    cfg = HardwareNoiseConfig.scaled(0.5, seed=11)
    clone = pickle.loads(pickle.dumps(cfg))
    assert clone == cfg
    np.testing.assert_array_equal(
        clone.sample(0.1, (8,), salt="s"), cfg.sample(0.1, (8,), salt="s")
    )
    np.testing.assert_array_equal(
        clone.stream("t").sample(0.1, (8,)), cfg.stream("t").sample(0.1, (8,))
    )


def test_sim_context_pickle_roundtrip():
    ctx = SimContext(noise=HardwareNoiseConfig.scaled(1.0, seed=4), seed=2)
    clone = pickle.loads(pickle.dumps(ctx))
    assert clone == ctx
    assert clone.noise is not None
    np.testing.assert_array_equal(
        clone.noise.sample(0.1, (4,)), ctx.noise.sample(0.1, (4,))
    )


def test_noise_stream_pickle_roundtrip_preserves_state():
    stream = HardwareNoiseConfig(seed=8).stream("tile", 2)
    stream.sample(0.1, (4,))  # advance the state
    clone = pickle.loads(pickle.dumps(stream))
    np.testing.assert_array_equal(clone.sample(0.1, (4,)), stream.sample(0.1, (4,)))


# ---------------------------------------------------------------------------
# scaled() / ideal()
# ---------------------------------------------------------------------------

def test_scaled_preserves_sigma_ratios():
    base = HardwareNoiseConfig()
    half = HardwareNoiseConfig.scaled(0.5, seed=3)
    assert half.x_subbuf_sigma == pytest.approx(base.x_subbuf_sigma * 0.5)
    assert half.dtc_sigma == pytest.approx(base.dtc_sigma * 0.5)
    assert half.reram_conductance_sigma == pytest.approx(
        base.reram_conductance_sigma * 0.5
    )
    assert half.seed == 3


def test_scaled_zero_equals_ideal():
    zero = HardwareNoiseConfig.scaled(0.0)
    ideal = HardwareNoiseConfig.ideal()
    for name in (
        "x_subbuf_sigma",
        "p_subbuf_sigma",
        "i_adder_sigma",
        "comparator_sigma",
        "dtc_sigma",
        "tdc_sigma",
        "reram_conductance_sigma",
    ):
        assert getattr(zero, name) == 0.0
        assert getattr(ideal, name) == 0.0


def test_scaled_rejects_negative_scale():
    with pytest.raises(ValueError):
        HardwareNoiseConfig.scaled(-0.1)


# ---------------------------------------------------------------------------
# NoiseBudget: Section-V design point
# ---------------------------------------------------------------------------

def test_noise_budget_pins_the_paper_design_point():
    """Section V: a 40 ps margin per 50 ps unit delay over a 2^8 dynamic
    range, 12 cascaded X-subBufs — sqrt(12) * eps must stay inside 40 ps per
    unit, both sides scaled by 2^8."""
    budget = NoiseBudget()
    assert budget.total_margin_ps == pytest.approx(40.0 * 2 ** 8)
    assert budget.accumulated_error_ps == pytest.approx(
        math.sqrt(12) * 5.0 * 2 ** 8
    )
    assert budget.within_margin()


def test_noise_budget_margin_boundary():
    """The largest admissible per-buffer error is margin / sqrt(12)."""
    eps_max = 40.0 / math.sqrt(12)
    assert NoiseBudget(epsilon_ps=eps_max).within_margin()
    assert not NoiseBudget(epsilon_ps=eps_max * 1.01).within_margin()
