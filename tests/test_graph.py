"""Graph-IR tests: topological determinism, malformed-graph rejection with
named layers, merge shape validation, bit-for-bit linear parity of the graph
executor, liveness-based activation freeing, and end-to-end branching-model
engine runs (residual block + fire module) against the float reference."""

import numpy as np
import pytest

from repro.context import ArchSpec, SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    reference_forward,
    validate_sequential,
)
from repro.nn import (
    NETWORK_INPUT,
    ElementwiseAdd,
    GraphError,
    LayerInstance,
    Network,
    NetworkBuilder,
    ReLU,
    TensorShape,
)
from repro.nn.models import build_model

ISAAC_PRECISION = ArchSpec(weight_bits=16, input_bits=16)


def _inst(layer, input_shape, index, inputs, input_shapes=None):
    shapes = input_shapes if input_shapes is not None else (input_shape,) * len(inputs)
    return LayerInstance(
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.resolve_shape(shapes),
        index=index,
        inputs=inputs,
        input_shapes=tuple(shapes),
    )


# ---------------------------------------------------------------------------
# topological order
# ---------------------------------------------------------------------------

def test_topological_order_is_declaration_order_for_builder_graphs():
    """The builder declares producers before consumers, so Kahn with
    lowest-index-first tie-breaking reproduces declaration order exactly."""
    for name in ("cnn_1", "resnet_18", "squeezenet"):
        net = build_model(name)
        assert [i.name for i in net.topological_order()] == [i.name for i in net]


def test_topological_order_is_deterministic_across_builds():
    a = [i.name for i in build_model("resnet_50").topological_order()]
    b = [i.name for i in build_model("resnet_50").topological_order()]
    assert a == b


def test_topological_order_sorts_shuffled_declarations():
    """A hand-built instance list whose declaration order is not topological
    still sorts producers before consumers, deterministically."""
    shape = TensorShape(4, 8, 8)
    r1 = ReLU(name="r1")
    r2 = ReLU(name="r2")
    join = ElementwiseAdd(name="join")
    instances = [
        _inst(join, shape, 0, ("r1", "r2")),
        _inst(r2, shape, 1, ("r1",)),
        _inst(r1, shape, 2, (NETWORK_INPUT,)),
    ]
    # the output node must be declared last for Network.output; reorder so
    # join stays last but r2/r1 are still declared consumer-first
    net = Network("shuffled", shape, [instances[2], instances[1], instances[0]])
    order = [i.name for i in net.topological_order()]
    assert order == ["r1", "r2", "join"]
    shuffled = Network("shuffled2", shape, [instances[1], instances[2], instances[0]])
    assert [i.name for i in shuffled.topological_order()] == ["r1", "r2", "join"]


def test_consumers_map_covers_every_edge():
    net = build_model("resnet_smoke")
    consumers = net.consumers()
    assert consumers[NETWORK_INPUT] == ("conv1",)
    # the block entry (pool1) feeds both the main path and the projection
    assert set(consumers["pool1"]) == {"block1_conv1", "block1_proj"}
    assert consumers[net.output.name] == ()


# ---------------------------------------------------------------------------
# malformed graphs are rejected with named layers
# ---------------------------------------------------------------------------

def test_cycle_is_rejected_naming_the_layers():
    shape = TensorShape(4, 8, 8)
    a = _inst(ReLU(name="a"), shape, 0, ("b",))
    b = _inst(ReLU(name="b"), shape, 1, ("a",))
    with pytest.raises(GraphError, match="cycle.*'a'.*'b'"):
        Network("cyclic", shape, [a, b])


def test_self_loop_is_rejected():
    shape = TensorShape(4, 8, 8)
    a = _inst(ReLU(name="a"), shape, 0, ("a",))
    with pytest.raises(GraphError, match="'a' consumes itself"):
        Network("self", shape, [a])


def test_dangling_producer_is_rejected_naming_both_ends():
    shape = TensorShape(4, 8, 8)
    a = _inst(ReLU(name="a"), shape, 0, ("ghost",))
    with pytest.raises(GraphError, match="'a' consumes 'ghost'"):
        Network("dangling", shape, [a])


def test_duplicate_layer_names_are_rejected():
    shape = TensorShape(4, 8, 8)
    a = _inst(ReLU(name="dup"), shape, 0, (NETWORK_INPUT,))
    b = _inst(ReLU(name="dup"), shape, 1, ("dup",))
    with pytest.raises(GraphError, match="duplicate layer name 'dup'"):
        Network("dup", shape, [a, b])
    builder = NetworkBuilder("dup2", shape)
    builder.relu(name="x")
    with pytest.raises(GraphError, match="duplicate layer name 'x'"):
        builder.relu(name="x")


def test_builder_rejects_resume_to_unknown_node():
    builder = NetworkBuilder("b", TensorShape(4, 8, 8))
    with pytest.raises(GraphError, match="cannot resume from 'nope'"):
        builder.resume("nope")


# ---------------------------------------------------------------------------
# merge shape validation
# ---------------------------------------------------------------------------

def test_add_merge_rejects_mismatched_shapes():
    builder = NetworkBuilder("badadd", TensorShape(3, 8, 8))
    entry = builder.branch()
    builder.conv(8, 3, stride=2, name="c1")
    with pytest.raises(GraphError, match="'j1' \\(add\\) merges mismatched shapes"):
        builder.add(entry, name="j1")


def test_concat_merge_rejects_mismatched_spatial_extents():
    builder = NetworkBuilder("badcat", TensorShape(3, 8, 8))
    entry = builder.branch()
    builder.conv(8, 3, stride=2, name="c1")
    strided = builder.branch()
    with pytest.raises(GraphError, match="'j1' \\(concat\\) requires equal spatial"):
        builder.concat([entry, strided], name="j1")


def test_merge_arity_is_enforced():
    shape = TensorShape(4, 8, 8)
    with pytest.raises(GraphError, match="'solo' \\(add\\) expects at least 2"):
        Network(
            "solo", shape, [_inst2(ElementwiseAdd(name="solo"), (NETWORK_INPUT,), shape)]
        )


def _inst2(layer, inputs, shape):
    # arity failures surface from resolve_shape at Network construction, so
    # build the instance record without resolving here
    return LayerInstance(
        layer=layer,
        input_shape=shape,
        output_shape=shape,
        index=0,
        inputs=inputs,
        input_shapes=(shape,) * len(inputs),
    )


def test_concat_shape_and_mac_accounting():
    """The fire-module concat is a real node: summed channels, zero MACs."""
    net = build_model("squeezenet")
    concat = net.find("fire2_concat")
    assert concat.inputs == ("fire2_expand1x1_relu", "fire2_expand3x3_relu")
    assert concat.output_shape == TensorShape(128, 55, 55)
    assert concat.macs == 0 and concat.weights == 0
    # every fire module contributes one concat node
    assert sum(1 for inst in net if inst.kind == "concat") == 8


# ---------------------------------------------------------------------------
# linear parity: the graph path is the flat chain, bit for bit
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["cnn_1", "tiny_mlp"])
def test_linear_models_stay_sequential_and_bit_for_bit(name):
    """Linear zoo models remain plain chains, and the graph executor's
    output is bit-identical to executing the same mapped layers as a flat
    list (the pre-graph numeric path)."""
    network = build_model(name)
    validate_sequential(network)  # still a chain
    ctx = SimContext()
    executor = NetworkExecutor(network, ctx, mode="analog")
    x = executor.random_input()
    result = executor.run(x)

    # replay the flat chain by hand with the executor's own programmed
    # layers and shared aux kernels
    from repro.engine.reference import apply_aux_batched

    acts = x[None]
    for inst in network:
        if inst.name in executor._compute:
            acts = executor._compute[inst.name].forward(acts, ctx.arch.input_bits)
        else:
            acts = apply_aux_batched(inst, [acts], executor.params)
    np.testing.assert_array_equal(result.output, acts[0])


def test_liveness_freeing_is_numerically_invisible():
    network = build_model("resnet_smoke")
    executor = NetworkExecutor(network, SimContext(), mode="ideal")
    x = executor.random_input()
    freed = executor.run(x, validate=False, free_activations=True)
    kept = executor.run(x, validate=False, free_activations=False)
    np.testing.assert_array_equal(freed.output, kept.output)


def test_liveness_freeing_reduces_peak_activation_memory():
    """On a chain of bottleneck blocks the freed peak is a fraction of the
    keep-everything peak — the memory win that keeps ResNet-152 batch runs
    on a laptop."""
    network = build_model("bottleneck_smoke")
    executor = NetworkExecutor(network, SimContext(), mode="ideal")
    x = executor.random_batch(2)
    freed = executor.run(x, validate=False, free_activations=True)
    kept = executor.run(x, validate=False, free_activations=False)
    assert freed.peak_activation_bytes < kept.peak_activation_bytes / 2
    # without freeing, the peak is the sum of everything ever produced
    total = x.nbytes + sum(
        2 * inst.output_shape.elements * 8 for inst in network
    )
    assert kept.peak_activation_bytes == total


def test_peak_accounting_counts_view_buffers_once():
    """A flatten output is a reshape *view* of its producer: the peak must
    charge the shared buffer once, not per live reference."""
    network = build_model("tiny_cnn")  # fc() auto-inserts a flatten node
    executor = NetworkExecutor(network, SimContext(), mode="ideal")
    x = executor.random_input()
    kept = executor.run(x, validate=False, free_activations=False)
    flats = [inst for inst in network if inst.kind == "flatten"]
    assert flats
    total = x.nbytes + sum(inst.output_shape.elements * 8 for inst in network)
    shared = sum(inst.output_shape.elements * 8 for inst in flats)
    assert kept.peak_activation_bytes == total - shared


# ---------------------------------------------------------------------------
# end-to-end branching engine runs vs the float reference
# ---------------------------------------------------------------------------

def test_resnet_block_engine_matches_reference_at_isaac_precision():
    """Truncated ResNet stem + one residual block through the analog chains:
    rel error stays at the 16-bit quantisation floor."""
    result = NetworkExecutor(
        build_model("resnet_smoke"), SimContext(arch=ISAAC_PRECISION), mode="analog"
    ).run()
    assert result.rel_error < 1e-2
    assert all(np.isfinite(trace.rel_error) for trace in result.traces)


def test_fire_module_engine_matches_reference():
    """A squeezenet-style fire module (squeeze -> parallel expands -> concat)
    through the analog chains."""
    builder = NetworkBuilder("fire_smoke", TensorShape(8, 16, 16))
    builder.conv(4, 1, name="squeeze").relu(name="squeeze_relu")
    squeezed = builder.branch()
    builder.conv(8, 1, name="e1").relu(name="e1_relu")
    left = builder.branch()
    builder.resume(squeezed)
    builder.conv(8, 3, name="e3").relu(name="e3_relu")
    builder.concat([left, builder.branch()], name="cat")
    builder.global_avg_pool(name="gap").fc(4, name="fc")
    network = builder.build()
    result = NetworkExecutor(
        network, SimContext(arch=ISAAC_PRECISION), mode="analog"
    ).run()
    assert result.rel_error < 1e-2

    # the concat output really is the channel stack of its two producers
    traces = result.trace_by_name()
    assert traces["cat"].crossbars == 0
    params = NetworkExecutor(network, SimContext()).params
    _, acts = reference_forward(network, params, np.zeros((8, 16, 16)) + 0.5)
    np.testing.assert_array_equal(
        acts["cat"], np.concatenate([acts["e1_relu"], acts["e3_relu"]], axis=0)
    )


def test_branching_reference_forward_single_and_batch_agree():
    network = build_model("resnet_smoke")
    executor = NetworkExecutor(network, SimContext())
    batch = executor.random_batch(2)
    from repro.engine import reference_forward_batch

    out, _ = reference_forward_batch(network, executor.params, batch)
    for n in range(2):
        single, _ = reference_forward(network, executor.params, batch[n])
        np.testing.assert_allclose(out[n], single, rtol=1e-12, atol=1e-12)


def test_engine_error_names_unsupported_layer():
    class Mystery(ReLU):
        kind = "mystery"

    shape = TensorShape(2, 4, 4)
    inst = _inst(Mystery(name="whodunnit"), shape, 0, (NETWORK_INPUT,))
    with pytest.raises(EngineError, match="'whodunnit' of kind 'mystery'"):
        NetworkExecutor(Network("m", shape, [inst]), SimContext())
