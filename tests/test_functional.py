"""Functional-kernel tests: im2col kernels vs naive loops, incl. regressions
for grouped convolution and padded pooling."""

import numpy as np
import pytest

from repro.nn import functional as F

RNG = np.random.default_rng(42)


def naive_conv2d(x, weights, bias, stride, pad, groups):
    out_channels, group_channels, kernel, _ = weights.shape
    in_channels = x.shape[0]
    padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    out_h = (x.shape[1] + 2 * pad - kernel) // stride + 1
    out_w = (x.shape[2] + 2 * pad - kernel) // stride + 1
    group_out = out_channels // groups
    out = np.zeros((out_channels, out_h, out_w))
    for d in range(out_channels):
        g = d // group_out
        x_g = padded[g * group_channels : (g + 1) * group_channels]
        for i in range(out_h):
            for j in range(out_w):
                patch = x_g[:, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
                out[d, i, j] = np.sum(patch * weights[d])
        if bias is not None:
            out[d] += bias[d]
    return out


def naive_pool2d(x, kernel, stride, pad, mode):
    fill = -np.inf if mode == "max" else 0.0
    padded = np.pad(x, ((0, 0), (pad, pad), (pad, pad)), constant_values=fill)
    out_h = (x.shape[1] + 2 * pad - kernel) // stride + 1
    out_w = (x.shape[2] + 2 * pad - kernel) // stride + 1
    out = np.zeros((x.shape[0], out_h, out_w))
    reduce = np.max if mode == "max" else np.mean
    for c in range(x.shape[0]):
        for i in range(out_h):
            for j in range(out_w):
                window = padded[c, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
                out[c, i, j] = reduce(window)
    return out


def test_conv2d_matches_naive_dense():
    x = RNG.normal(size=(3, 9, 9))
    w = RNG.normal(size=(5, 3, 3, 3))
    b = RNG.normal(size=5)
    out = F.conv2d(x, w, b, stride=2, pad=1)
    np.testing.assert_allclose(out, naive_conv2d(x, w, b, 2, 1, 1), atol=1e-12)


def test_conv2d_grouped_matches_naive():
    # Regression: groups used to be silently ignored, computing a dense
    # matmul with mismatched weight shapes.
    x = RNG.normal(size=(6, 8, 8))
    w = RNG.normal(size=(4, 3, 3, 3))  # 2 groups: 6 in / 4 out
    out = F.conv2d(x, w, stride=1, pad=1, groups=2)
    np.testing.assert_allclose(out, naive_conv2d(x, w, None, 1, 1, 2), atol=1e-12)


def test_conv2d_depthwise_matches_naive():
    x = RNG.normal(size=(4, 6, 6))
    w = RNG.normal(size=(4, 1, 3, 3))
    out = F.conv2d(x, w, groups=4, pad=1)
    np.testing.assert_allclose(out, naive_conv2d(x, w, None, 1, 1, 4), atol=1e-12)


def test_conv2d_validates_group_divisibility():
    x = RNG.normal(size=(6, 8, 8))
    with pytest.raises(ValueError):
        F.conv2d(x, RNG.normal(size=(5, 3, 3, 3)), groups=2)  # 5 outputs % 2 != 0
    with pytest.raises(ValueError):
        F.conv2d(x, RNG.normal(size=(4, 2, 3, 3)), groups=4)  # 6 inputs % 4 != 0
    with pytest.raises(ValueError):
        F.conv2d(x, RNG.normal(size=(4, 6, 3, 3)), groups=2)  # wrong per-group C


def test_max_pool_padding_uses_neg_inf_fill():
    # Regression: zero-fill padding corrupts all-negative windows.
    x = np.full((1, 4, 4), -5.0)
    out = F.max_pool2d(x, kernel=3, stride=2, pad=1)
    assert np.all(out == -5.0)
    np.testing.assert_allclose(out, naive_pool2d(x, 3, 2, 1, "max"))


def test_avg_pool_padding_counts_padded_zeros():
    x = np.ones((1, 4, 4))
    out = F.avg_pool2d(x, kernel=3, stride=2, pad=1)
    np.testing.assert_allclose(out, naive_pool2d(x, 3, 2, 1, "avg"))
    # corner window holds 4 real pixels out of 9 positions
    assert out[0, 0, 0] == pytest.approx(4 / 9)


def test_pool_matches_naive_random():
    x = RNG.normal(size=(3, 7, 7))
    for mode, fn in (("max", F.max_pool2d), ("avg", F.avg_pool2d)):
        out = fn(x, kernel=3, stride=2, pad=1)
        np.testing.assert_allclose(out, naive_pool2d(x, 3, 2, 1, mode), atol=1e-12)


def test_max_pool_padding_handles_integer_inputs():
    # Regression: the -inf fill must not be forced into an integer array.
    x = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
    out = F.max_pool2d(x, kernel=2, stride=2, pad=1)
    np.testing.assert_allclose(out, naive_pool2d(x.astype(float), 2, 2, 1, "max"))


def test_pool_rejects_padding_larger_than_half_kernel():
    x = RNG.normal(size=(1, 4, 4))
    with pytest.raises(ValueError, match="half the kernel"):
        F.max_pool2d(x, kernel=2, pad=2)
    with pytest.raises(ValueError, match="half the kernel"):
        F.avg_pool2d(x, kernel=3, pad=2)


def test_pool_shape_matches_descriptor_inference():
    from repro.nn.layers import Pool2D, TensorShape

    x = RNG.normal(size=(2, 7, 7))
    desc = Pool2D(name="p", kernel=3, stride=2, padding=1)
    expected = desc.output_shape(TensorShape(2, 7, 7))
    out = F.max_pool2d(x, kernel=3, stride=2, pad=1)
    assert out.shape == (expected.channels, expected.height, expected.width)


def test_fully_connected_matches_matmul():
    x = RNG.normal(size=(4, 3, 3))
    w = RNG.normal(size=(10, 36))
    b = RNG.normal(size=10)
    np.testing.assert_allclose(
        F.fully_connected(x, w, b), w @ x.reshape(-1) + b, atol=1e-12
    )


def test_relu_softmax_batch_norm():
    x = RNG.normal(size=(3, 4, 4))
    assert np.all(F.relu(x) >= 0)
    probs = F.softmax(RNG.normal(size=10))
    assert probs.sum() == pytest.approx(1.0)
    scale, shift = RNG.normal(size=3), RNG.normal(size=3)
    out = F.batch_norm(x, scale, shift)
    np.testing.assert_allclose(out[1], x[1] * scale[1] + shift[1], atol=1e-12)
