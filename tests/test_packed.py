"""Packed-backend tests: equivalence of the packed vectorized execution
path against the legacy tiled path (noiseless, across cell splits, grouped
convolutions, partial edge tiles and batches), the batch-dimension
semantics, validation gating and the >=10x cnn_1 speedup bar."""

import time

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import ArchSpec, SimContext
from repro.engine import (
    EngineError,
    NetworkExecutor,
    PackedMatmul,
    TiledMatmul,
    relative_error,
    run_network,
)
from repro.nn import functional as F
from repro.nn.layers import TensorShape
from repro.nn.models import build_model
from repro.nn.network import NetworkBuilder
from repro.nn.quantization import quantize_unsigned, quantize_unsigned_batch

RNG = np.random.default_rng(31)


def _grouped_conv_net() -> "NetworkBuilder":
    """A small net with a grouped conv (2 groups) and partial edge tiles."""
    builder = NetworkBuilder("grouped", TensorShape(4, 10, 10))
    builder.conv(8, 3, padding=1, name="conv1").relu()
    builder.conv(12, 3, padding=1, groups=2, name="conv2").relu()
    builder.pool(2, name="pool")
    builder.fc(7, name="fc")
    return builder.build()


# ---------------------------------------------------------------------------
# matmul-level equivalence: packed vs tiled
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "weight_bits,cell_bits",
    [(4, 4), (8, 4), (16, 4)],  # cols_per_weight = 1, 2, 4
)
@pytest.mark.parametrize("mode", ["analog", "ideal"])
def test_packed_matches_tiled_across_cell_splits(weight_bits, cell_bits, mode):
    """All slice counts agree with the legacy path on partial edge tiles."""
    arch = ArchSpec(rows=16, cols=16, weight_bits=weight_bits, cell_bits=cell_bits)
    ctx = SimContext(arch=arch)
    qmax = 2 ** (weight_bits - 1) - 1
    # 40 rows -> 2.5 row tiles, 21 cols -> partial column tile too
    q = RNG.integers(-qmax, qmax + 1, size=(40, 21))
    codes = RNG.integers(0, 2 ** arch.input_bits, size=(5, 40))
    tiled = TiledMatmul(q, ctx, mode)
    packed = PackedMatmul(q, ctx, mode)
    assert packed.crossbars == tiled.crossbars
    a, b = tiled.matmul(codes), packed.matmul(codes)
    assert relative_error(b, a) <= 1e-9
    # and both recover the exact integer product noiselessly
    assert relative_error(b, codes @ q) <= 1e-9


def test_packed_grouped_matches_per_group_tiled():
    """A (groups, rows, cols) stack equals per-group tiled matmuls, concatenated."""
    ctx = SimContext(arch=ArchSpec(rows=16, cols=16))
    groups, rows, cols = 3, 30, 8
    q = RNG.integers(-127, 128, size=(groups, rows, cols))
    codes = RNG.integers(0, 256, size=(4, groups * rows))
    packed = PackedMatmul(q, ctx, "analog")
    reference = np.concatenate(
        [
            TiledMatmul(q[g], ctx, "analog").matmul(
                codes[:, g * rows : (g + 1) * rows]
            )
            for g in range(groups)
        ],
        axis=1,
    )
    assert packed.crossbars == groups * TiledMatmul(q[0], ctx, "analog").crossbars
    assert relative_error(packed.matmul(codes), reference) <= 1e-9


def test_packed_rejects_bad_weights_and_codes():
    ctx = SimContext()
    with pytest.raises(EngineError):
        PackedMatmul(np.full((4, 4), 128), ctx)  # > qmax for 8-bit
    with pytest.raises(EngineError):
        PackedMatmul(np.zeros((2, 2, 2, 2), dtype=int), ctx)  # 4-D
    packed = PackedMatmul(np.zeros((4, 4), dtype=int), ctx)
    with pytest.raises(EngineError):
        packed.matmul(np.full((2, 4), 256))  # > 8-bit input code
    with pytest.raises(EngineError):
        packed.matmul(np.zeros((2, 5), dtype=int))  # wrong row count


def test_packed_stores_true_size_not_padded_tiles():
    """Partial tiles live at their true height x width in the packed tensors."""
    arch = ArchSpec()  # 256x256, 2 slices per 8-bit weight
    packed = PackedMatmul(RNG.integers(-10, 10, size=(30, 5)), SimContext(arch=arch))
    # two float64 slice tensors of the true 30x5 shape — not 256x256 padding
    assert packed.packed_bytes == 2 * 30 * 5 * 8


# ---------------------------------------------------------------------------
# executor-level equivalence and batch semantics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["analog", "ideal"])
def test_cnn1_packed_run_matches_tiled_run_noiseless(mode):
    """The acceptance bar: cnn_1 agrees across backends to <= 1e-9."""
    network = build_model("cnn_1")
    ctx = SimContext()
    x = NetworkExecutor(network, ctx).random_input()
    packed = NetworkExecutor(network, ctx, mode, backend="packed").run(x)
    tiled = NetworkExecutor(network, ctx, mode, backend="tiled").run(x)
    assert relative_error(packed.output, tiled.output) <= 1e-9
    assert packed.backend == "packed" and tiled.backend == "tiled"


def test_grouped_conv_network_matches_across_backends():
    network = _grouped_conv_net()
    ctx = SimContext(seed=2)
    x = NetworkExecutor(network, ctx).random_input()
    packed = NetworkExecutor(network, ctx, backend="packed").run(x)
    tiled = NetworkExecutor(network, ctx, backend="tiled").run(x)
    assert relative_error(packed.output, tiled.output) <= 1e-9
    assert packed.rel_error < 5e-2  # still at the quantisation floor


@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_batched_run_equals_stacked_single_runs(backend):
    """Per-image quantisation makes a batch N independent runs.

    The integer codes are identical, so the ideal (exact integer) mode is
    bit-for-bit equal; the analog mode agrees to float tolerance (BLAS may
    re-block the larger batched matmul, reordering float accumulation).
    """
    network = _grouped_conv_net()
    ctx = SimContext()
    exact = NetworkExecutor(network, ctx, mode="ideal", backend=backend)
    batch = exact.random_batch(3)
    batched = exact.run(batch)
    assert batched.output.shape[0] == 3
    singles = np.stack([exact.run(batch[i]).output for i in range(3)])
    np.testing.assert_array_equal(batched.output, singles)
    # the reference is batched too and the traces aggregate over the batch
    assert batched.reference.shape == batched.output.shape
    assert all(np.isfinite(trace.rel_error) for trace in batched.traces)

    analog = NetworkExecutor(network, ctx, mode="analog", backend=backend)
    batched = analog.run(batch, validate=False)
    singles = np.stack(
        [analog.run(batch[i], validate=False).output for i in range(3)]
    )
    np.testing.assert_allclose(batched.output, singles, rtol=1e-10, atol=1e-12)


def test_batch_of_one_matches_single_image_run():
    network = build_model("tiny_cnn")
    ctx = SimContext()
    executor = NetworkExecutor(network, ctx)
    x = executor.random_input()
    single = executor.run(x)
    batched = executor.run(x[None])
    assert single.output.shape == batched.output.shape[1:]
    np.testing.assert_array_equal(single.output, batched.output[0])


def test_run_rejects_wrong_rank_inputs():
    executor = NetworkExecutor(build_model("tiny_mlp"), SimContext())
    with pytest.raises(EngineError):
        executor.run(np.zeros((2, 2, 1, 8, 8)))
    with pytest.raises(EngineError):
        executor.random_batch(0)


def test_validate_false_skips_reference_but_keeps_output():
    network = build_model("tiny_cnn")
    ctx = SimContext()
    executor = NetworkExecutor(network, ctx)
    x = executor.random_input()
    checked = executor.run(x)
    unchecked = executor.run(x, validate=False)
    np.testing.assert_array_equal(checked.output, unchecked.output)
    assert unchecked.reference is None
    assert np.isnan(unchecked.rel_error)
    assert len(unchecked.traces) == len(checked.traces)
    assert all(np.isnan(trace.rel_error) for trace in unchecked.traces)


def test_packed_noise_is_reproducible_and_bounded():
    """Noise draws differ from the tiled backend (documented), but packed
    runs are exactly reproducible from the noise seed and stay bounded."""
    network = build_model("tiny_cnn")

    def noisy_run():
        ctx = SimContext(noise=HardwareNoiseConfig(seed=11))
        return run_network(network, ctx, backend="packed")

    a, b = noisy_run(), noisy_run()
    np.testing.assert_array_equal(a.output, b.output)
    noiseless = run_network(network, SimContext(), backend="packed")
    assert a.rel_error > noiseless.rel_error
    assert a.rel_error < 1.0


def test_packed_executor_crossbars_match_mapping():
    """Including the awkward cell_bits=3 split (85 weights per 256-col tile)."""
    network = build_model("cnn_1")
    for arch in (ArchSpec(), ArchSpec(cell_bits=3, weight_bits=8)):
        executor = NetworkExecutor(network, SimContext(arch=arch), backend="packed")
        assert executor.crossbars == executor.mapping.total_crossbars


# ---------------------------------------------------------------------------
# batched kernel helpers
# ---------------------------------------------------------------------------

def test_im2col_batch_matches_per_image_im2col():
    for n, channels, size, kernel, stride, pad in [
        (3, 4, 11, 3, 1, 1),
        (2, 2, 9, 4, 2, 0),
        (1, 5, 8, 3, 2, 1),
    ]:
        x = RNG.normal(size=(n, channels, size, size))
        cols, oh, ow = F.im2col_batch(x, kernel, stride, pad)
        for i in range(n):
            ref, oh2, ow2 = F.im2col(x[i], kernel, stride, pad)
            assert (oh, ow) == (oh2, ow2)
            np.testing.assert_array_equal(cols[i], ref)


def test_quantize_unsigned_batch_matches_per_image():
    x = RNG.uniform(0.0, 3.0, size=(4, 2, 5, 5))
    x[2] = 0.0  # all-zero image takes the scale-1.0 path
    values, scales = quantize_unsigned_batch(x, 8)
    for i in range(4):
        single = quantize_unsigned(x[i], 8)
        np.testing.assert_array_equal(values[i], single.values)
        assert scales[i] == single.scale
    with pytest.raises(ValueError):
        quantize_unsigned_batch(-x, 8)
    with pytest.raises(ValueError):
        quantize_unsigned_batch(x[0, 0, 0], 8)  # no batch axis


# ---------------------------------------------------------------------------
# the performance bar
# ---------------------------------------------------------------------------

def _best_of(func, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_packed_cnn1_analog_run_is_at_least_10x_faster_than_tiled():
    """Acceptance bar: the cnn_1 analog engine run is >= 10x faster on the
    packed backend than on the legacy tiled backend.  Both executors are
    programmed once (weights are written to the arrays a single time in a
    serving scenario) and timed on the same 4-image batch with validation
    off, so the comparison isolates the execution backends themselves."""
    network = build_model("cnn_1")
    ctx = SimContext()
    packed = NetworkExecutor(network, ctx, mode="analog", backend="packed")
    tiled = NetworkExecutor(network, ctx, mode="analog", backend="tiled")
    x = packed.random_batch(4)
    packed.run(x, validate=False)  # warm-up
    packed_s = _best_of(lambda: packed.run(x, validate=False), repeats=5)
    tiled_s = _best_of(lambda: tiled.run(x, validate=False), repeats=3)
    assert tiled_s / packed_s >= 10.0, f"only {tiled_s / packed_s:.1f}x"
