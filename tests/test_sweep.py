"""Monte-Carlo sweep subsystem: grid expansion and content keys, worker-count
determinism (byte-identical stores), resumability (zero recomputation),
monotone error growth with the noise scale, and construction-order
independence of the noisy engine draws the sweep depends on."""

import json
import pickle

import numpy as np
import pytest

from repro.circuits.noise import HardwareNoiseConfig
from repro.context import SimContext
from repro.engine import NetworkExecutor
from repro.nn.models import build_model
from repro.sweep import (
    SweepGrid,
    SweepStore,
    TrialSpec,
    format_summary,
    run_sweep,
    run_trial,
    summarize,
    warm_pool,
)

TINY_GRID = SweepGrid(models=("tiny_cnn",), noise_scales=(0.0, 1.0), trials=2, seed=0)


# ---------------------------------------------------------------------------
# grid + specs
# ---------------------------------------------------------------------------

def test_grid_expands_the_full_cartesian_product():
    grid = SweepGrid(
        models=("tiny_cnn", "tiny_mlp"),
        noise_scales=(0.0, 1.0),
        trials=3,
        cell_bits=(4, 8),
        backends=("packed", "tiled"),
    )
    specs = grid.specs()
    assert len(specs) == len(grid) == 2 * 2 * 3 * 2 * 2
    assert len({spec.key for spec in specs}) == len(specs)  # keys are unique
    # deterministic canonical order
    assert [spec.key for spec in grid.specs()] == [spec.key for spec in specs]


def test_trial_keys_are_content_stable():
    spec = TrialSpec(model="tiny_cnn", noise_scale=0.5, trial=1)
    same = TrialSpec(model="tiny_cnn", noise_scale=0.5, trial=1)
    other = TrialSpec(model="tiny_cnn", noise_scale=0.5, trial=2)
    assert spec.key == same.key
    assert spec.key != other.key
    assert pickle.loads(pickle.dumps(spec)).key == spec.key


def test_trial_context_decorrelates_noise_per_trial_only():
    a = TrialSpec(model="tiny_cnn", noise_scale=1.0, trial=0).context()
    b = TrialSpec(model="tiny_cnn", noise_scale=1.0, trial=1).context()
    assert a.seed == b.seed  # weights/input fixed across trials
    assert a.noise.seed != b.noise.seed
    # the same trial at a different scale shares the noise seed, so a
    # trial's draws scale monotonically with the noise severity
    c = TrialSpec(model="tiny_cnn", noise_scale=0.5, trial=0).context()
    assert c.noise.seed == a.noise.seed
    zero = TrialSpec(model="tiny_cnn", noise_scale=0.0, trial=0).context()
    assert zero.noise is None


def test_grid_deduplicates_repeated_values_in_order():
    grid = SweepGrid(
        models=("tiny_cnn", "tiny_cnn"),
        noise_scales=(0.0, 0.5, 0.5),
        trials=2,
        cell_bits=(4, 4),
        backends=("packed", "packed"),
    )
    assert grid.models == ("tiny_cnn",)
    assert grid.noise_scales == (0.0, 0.5)
    assert grid.cell_bits == (4,)
    assert grid.backends == ("packed",)
    assert len(grid) == len(grid.specs()) == 4


def test_grid_rejects_bad_configurations():
    with pytest.raises(ValueError):
        SweepGrid(models=())
    with pytest.raises(ValueError):
        SweepGrid(trials=0)
    with pytest.raises(ValueError):
        SweepGrid(noise_scales=(-0.5,))
    # NaN/inf would pass a bare `< 0` check and corrupt the JSON store
    with pytest.raises(ValueError):
        SweepGrid(noise_scales=(float("nan"),))
    with pytest.raises(ValueError):
        SweepGrid(noise_scales=(float("inf"),))
    with pytest.raises(ValueError):
        SweepGrid(backends=("bogus",))
    with pytest.raises(ValueError):
        SweepGrid(mode="warp")


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------

def test_store_appends_and_loads_by_key(tmp_path):
    store = SweepStore(tmp_path / "rows.jsonl")
    store.append({"key": "a", "value": 1})
    store.append({"key": "b", "value": 2})
    rows = store.load()
    assert set(rows) == {"a", "b"}
    assert rows["a"]["value"] == 1


def test_store_tolerates_a_torn_tail_line(tmp_path):
    """A crash mid-append leaves a partial line; it is skipped (and thus
    recomputed), not fatal."""
    path = tmp_path / "rows.jsonl"
    store = SweepStore(path)
    store.append({"key": "a", "value": 1})
    with open(path, "a") as handle:
        handle.write('{"key": "b", "val')  # torn write
    rows = store.load()
    assert set(rows) == {"a"}
    assert store.skipped_lines == 1


def test_store_rewrite_is_canonical(tmp_path):
    store = SweepStore(tmp_path / "rows.jsonl")
    store.append({"key": "b", "value": 2})
    store.append({"key": "a", "value": 1})
    store.rewrite([{"key": "a", "value": 1}, {"key": "b", "value": 2}])
    assert [json.loads(line)["key"] for line in store.lines()] == ["a", "b"]


# ---------------------------------------------------------------------------
# sweep execution
# ---------------------------------------------------------------------------

def test_sweep_rows_are_byte_identical_across_worker_counts(tmp_path):
    serial = SweepStore(tmp_path / "serial.jsonl")
    pooled = SweepStore(tmp_path / "pooled.jsonl")
    run_sweep(TINY_GRID, serial, workers=1)
    run_sweep(TINY_GRID, pooled, workers=2)
    assert serial.lines() == pooled.lines()
    assert serial.path.read_bytes() == pooled.path.read_bytes()


def test_sweep_resume_computes_zero_new_trials(tmp_path):
    store = SweepStore(tmp_path / "rows.jsonl")
    first = run_sweep(TINY_GRID, store, workers=1)
    assert first.computed == len(TINY_GRID) and first.skipped == 0
    before = store.path.read_bytes()
    again = run_sweep(TINY_GRID, store, workers=1, resume=True)
    assert again.computed == 0
    assert again.skipped == len(TINY_GRID)
    assert store.path.read_bytes() == before
    assert [row["key"] for row in again.rows] == [row["key"] for row in first.rows]


def test_sweep_resume_completes_a_partial_store(tmp_path):
    """Only the missing trials run; surviving rows are reused verbatim —
    including fanning a stored noiseless run out to its sibling trials
    without re-executing it."""
    store = SweepStore(tmp_path / "rows.jsonl")
    complete = run_sweep(TINY_GRID, store, workers=1)
    # keep only the first row (noise 0, trial 0), as an interrupted sweep might
    store.rewrite(complete.rows[:1])
    resumed = run_sweep(TINY_GRID, store, workers=1, resume=True)
    assert resumed.skipped == 1
    assert resumed.computed == len(TINY_GRID) - 1
    # noise-0 trial 1 reuses the stored trial-0 run; only the 2 noisy trials execute
    assert resumed.executed == 2
    assert resumed.rows == complete.rows


def test_noiseless_grid_points_share_one_engine_run(tmp_path):
    """Scale-0 trials are bit-identical forwards, so they execute once and
    fan out — rows still carry their own trial index and content key."""
    outcome = run_sweep(TINY_GRID, SweepStore(tmp_path / "rows.jsonl"), workers=1)
    assert outcome.computed == 4
    assert outcome.executed == 3  # 1 shared noiseless run + 2 noisy trials
    zero_rows = [row for row in outcome.rows if row["noise_scale"] == 0.0]
    assert [row["trial"] for row in zero_rows] == [0, 1]
    assert len({row["key"] for row in zero_rows}) == 2
    assert zero_rows[0]["rel_error"] == zero_rows[1]["rel_error"]


def test_sweep_without_resume_recomputes_a_stale_store(tmp_path):
    store = SweepStore(tmp_path / "rows.jsonl")
    store.append({"key": "stale", "value": 1})
    outcome = run_sweep(TINY_GRID, store, workers=1)
    assert outcome.computed == len(TINY_GRID)
    assert "stale" not in store.load()


def test_mean_error_grows_monotonically_with_noise_on_cnn1(tmp_path):
    """The acceptance bar: cnn_1 over --noise-grid 0,0.5,1 shows mean
    rel-error increasing with the noise scale."""
    grid = SweepGrid(models=("cnn_1",), noise_scales=(0.0, 0.5, 1.0), trials=2)
    outcome = run_sweep(grid, SweepStore(tmp_path / "rows.jsonl"), workers=1)
    summary = summarize(outcome.rows)
    errors = [entry["mean_rel_error"] for entry in summary]
    assert [entry["noise_scale"] for entry in summary] == [0.0, 0.5, 1.0]
    assert errors[0] < errors[1] < errors[2]
    # per-layer attribution is populated and finite
    for entry in summary:
        assert entry["layers"]
        assert all(np.isfinite(err) for err in entry["layers"].values())


def test_ideal_mode_trials_share_one_engine_run_per_grid_point(tmp_path):
    """Ideal read-out bypasses the noisy analog chains, so every trial of
    every grid point is deterministic — one run each, fanned out."""
    grid = SweepGrid(
        models=("tiny_cnn",), noise_scales=(0.0, 1.0), trials=3, mode="ideal"
    )
    outcome = run_sweep(grid, SweepStore(tmp_path / "rows.jsonl"), workers=1)
    assert outcome.computed == 6
    assert outcome.executed == 2  # one per grid point
    by_scale = {}
    for row in outcome.rows:
        by_scale.setdefault(row["noise_scale"], set()).add(row["rel_error"])
    assert all(len(errors) == 1 for errors in by_scale.values())


def test_run_trial_row_matches_a_direct_engine_run():
    spec = TrialSpec(model="tiny_cnn", noise_scale=1.0, trial=3)
    row = run_trial(spec)
    network = build_model(spec.model)
    executor = NetworkExecutor(network, spec.context(), mode=spec.mode)
    result = executor.run(executor.random_input(), validate=True)
    assert row["rel_error"] == result.rel_error
    assert row["crossbars"] == executor.crossbars
    assert row["key"] == spec.key


# ---------------------------------------------------------------------------
# program-once pool behaviour
# ---------------------------------------------------------------------------

def test_run_trial_from_shared_state_matches_from_scratch():
    """A pre-programmed snapshot yields the byte-identical row the legacy
    program-per-trial path produces — noise included."""
    from repro.engine import NetworkParams, program

    spec = TrialSpec(model="tiny_cnn", noise_scale=1.0, trial=2)
    legacy_row = run_trial(spec)
    network = build_model(spec.model)
    state = program(network, spec.context(), spec.mode)
    shared_row = run_trial(
        spec, state=state, network=network, params=NetworkParams(network, spec.seed)
    )
    assert shared_row == legacy_row


def test_shared_state_rows_match_legacy_path(tmp_path):
    """share_state=False (program every trial) and the default shared-state
    sweep write byte-identical stores."""
    legacy = SweepStore(tmp_path / "legacy.jsonl")
    shared = SweepStore(tmp_path / "shared.jsonl")
    run_sweep(TINY_GRID, legacy, workers=1, share_state=False)
    run_sweep(TINY_GRID, shared, workers=1)
    assert legacy.path.read_bytes() == shared.path.read_bytes()


def test_chunk_size_does_not_change_the_store(tmp_path):
    coarse = SweepStore(tmp_path / "coarse.jsonl")
    fine = SweepStore(tmp_path / "fine.jsonl")
    run_sweep(TINY_GRID, coarse, workers=2)
    run_sweep(TINY_GRID, fine, workers=2, chunk_size=1)
    assert coarse.path.read_bytes() == fine.path.read_bytes()


def test_fully_resumed_sweep_creates_no_pool(tmp_path, monkeypatch):
    """Pool startup dominates a no-op sweep, so a fully-resumed invocation
    must never spawn workers — even when asked for several."""
    import repro.sweep.pool as pool_mod

    store = SweepStore(tmp_path / "rows.jsonl")
    run_sweep(TINY_GRID, store, workers=1)

    def forbidden(*args, **kwargs):
        raise AssertionError("a fully-resumed sweep must not create a pool")

    monkeypatch.setattr(pool_mod, "warm_pool", forbidden)
    monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", forbidden)
    outcome = run_sweep(TINY_GRID, store, workers=4, resume=True)
    assert outcome.computed == 0 and outcome.skipped == len(TINY_GRID)
    assert outcome.program_s == 0.0 and outcome.pool_startup_s == 0.0


def test_outcome_records_programming_and_pool_startup(tmp_path):
    inline = run_sweep(TINY_GRID, SweepStore(tmp_path / "a.jsonl"), workers=1)
    assert inline.program_s > 0.0  # shared states were programmed
    assert inline.pool_startup_s == 0.0  # no pool inline
    pooled = run_sweep(TINY_GRID, SweepStore(tmp_path / "b.jsonl"), workers=2)
    assert pooled.program_s > 0.0
    assert pooled.pool_startup_s > 0.0  # it built (and timed) its own pool


def test_prewarmed_pool_is_reused_not_shut_down(tmp_path):
    """A caller-owned pool serves several sweeps; run_sweep neither warms
    nor shuts it down (pool_startup_s stays 0)."""
    pool, startup_s = warm_pool(2)
    try:
        assert startup_s > 0.0
        first = run_sweep(TINY_GRID, SweepStore(tmp_path / "a.jsonl"), workers=2, pool=pool)
        second = run_sweep(TINY_GRID, SweepStore(tmp_path / "b.jsonl"), workers=2, pool=pool)
        assert first.pool_startup_s == 0.0 and second.pool_startup_s == 0.0
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()
    finally:
        pool.shutdown()


def test_sweep_reuses_a_disk_cache_across_invocations(tmp_path):
    """With a --state-cache directory, the second sweep of the same grid
    loads the programmed snapshot instead of re-programming it."""
    from repro.engine import ProgrammedStateCache

    cache_root = tmp_path / "cache"
    first_cache = ProgrammedStateCache(root=cache_root)
    run_sweep(TINY_GRID, SweepStore(tmp_path / "a.jsonl"), workers=1, cache=first_cache)
    assert first_cache.counts["programmed"] == 1
    second_cache = ProgrammedStateCache(root=cache_root)
    run_sweep(TINY_GRID, SweepStore(tmp_path / "b.jsonl"), workers=1, cache=second_cache)
    assert second_cache.counts == {"memory": 0, "disk": 1, "programmed": 0}
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


def test_run_trial_chunk_matches_individual_trials(tmp_path):
    from repro.engine import program
    from repro.sweep import run_trial_chunk

    specs = [
        TrialSpec(model="tiny_cnn", noise_scale=1.0, trial=t) for t in range(3)
    ]
    network = build_model("tiny_cnn")
    state = program(network, specs[0].context(), specs[0].mode)
    path = state.save(tmp_path / state.key)
    assert run_trial_chunk(specs, str(path)) == [run_trial(s) for s in specs]


def test_sweep_rejects_bad_worker_and_chunk_configuration(tmp_path):
    store = SweepStore(tmp_path / "rows.jsonl")
    with pytest.raises(ValueError):
        run_sweep(TINY_GRID, store, workers=-1)
    with pytest.raises(ValueError):
        run_sweep(TINY_GRID, store, chunk_size=0)


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

def test_summarize_reduces_mean_and_p95():
    rows = [
        {
            "model": "m",
            "cell_bits": 4,
            "backend": "packed",
            "noise_scale": 1.0,
            "rel_error": err,
            "layers": {"conv": err / 2},
        }
        for err in (0.1, 0.2, 0.3, 0.4)
    ]
    (entry,) = summarize(rows)
    assert entry["trials"] == 4
    assert entry["mean_rel_error"] == pytest.approx(0.25)
    assert entry["p95_rel_error"] == pytest.approx(np.percentile([0.1, 0.2, 0.3, 0.4], 95))
    assert entry["max_rel_error"] == pytest.approx(0.4)
    assert entry["layers"]["conv"] == pytest.approx(0.125)
    assert "packed" in format_summary([entry])


# ---------------------------------------------------------------------------
# the correctness prerequisite: construction-order independent noise
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["packed", "tiled"])
def test_two_executors_from_one_context_agree_noisily(backend):
    """The headline bugfix: noisy outputs no longer depend on how many
    executors consumed the (previously shared) noise stream first."""
    network = build_model("tiny_cnn")
    ctx = SimContext(noise=HardwareNoiseConfig.scaled(1.0, seed=5), backend=backend)
    first = NetworkExecutor(network, ctx)
    second = NetworkExecutor(network, ctx)  # construction order must not matter
    x = first.random_input()
    np.testing.assert_array_equal(first.run(x).output, second.run(x).output)


def test_noisy_output_is_independent_of_unrelated_noise_consumption():
    network = build_model("tiny_cnn")
    noise = HardwareNoiseConfig.scaled(1.0, seed=5)
    ctx = SimContext(noise=noise)
    x = NetworkExecutor(network, ctx).random_input()
    baseline = NetworkExecutor(network, ctx).run(x).output
    # burn unrelated draws on the same config, then rebuild: identical
    noise.sample(1.0, (1024,), salt="elsewhere")
    NetworkExecutor(build_model("tiny_mlp"), SimContext(noise=noise))
    np.testing.assert_array_equal(NetworkExecutor(network, ctx).run(x).output, baseline)


# ---------------------------------------------------------------------------
# compute-dtype as a grid axis
# ---------------------------------------------------------------------------

def test_grid_expands_compute_dtypes_and_counts_them():
    grid = SweepGrid(
        models=("tiny_cnn",),
        noise_scales=(0.0,),
        trials=2,
        compute_dtypes=("float64", "float32"),
    )
    specs = grid.specs()
    assert len(specs) == len(grid) == 2 * 2
    assert {spec.compute_dtype for spec in specs} == {"float64", "float32"}
    assert grid.to_dict()["compute_dtypes"] == ["float64", "float32"]
    with pytest.raises(ValueError):
        SweepGrid(models=("tiny_cnn",), compute_dtypes=("float16",))


def test_trial_keys_distinguish_compute_dtypes():
    """A float32 campaign must never collide with a float64 one: neither in
    the result store (trial content keys) nor in the programmed-state cache
    (group keys)."""
    from repro.sweep.pool import _group_key

    f64 = TrialSpec(model="tiny_cnn", noise_scale=0.5, trial=1)
    f32 = TrialSpec(
        model="tiny_cnn", noise_scale=0.5, trial=1, compute_dtype="float32"
    )
    assert f64.compute_dtype == "float64"  # the historical default
    assert f64.key != f32.key
    assert _group_key(f64) != _group_key(f32)
    assert f64.as_row()["compute_dtype"] == "float64"
    assert f32.as_row()["compute_dtype"] == "float32"


def test_trial_context_carries_the_compute_dtype():
    spec = TrialSpec(
        model="tiny_cnn", noise_scale=0.0, trial=0, compute_dtype="float32"
    )
    assert spec.context().compute_dtype == "float32"


def test_mixed_dtype_sweep_runs_and_stays_at_the_floor(tmp_path):
    """One grid, both precisions: rows land under distinct keys and the
    float32 rows stay at the same quantisation floor as float64's."""
    grid = SweepGrid(
        models=("tiny_cnn",),
        noise_scales=(0.0,),
        trials=1,
        compute_dtypes=("float64", "float32"),
    )
    outcome = run_sweep(grid, SweepStore(tmp_path / "mixed.jsonl"), workers=1)
    by_dtype = {row["compute_dtype"]: row for row in outcome.rows}
    assert set(by_dtype) == {"float64", "float32"}
    assert by_dtype["float32"]["rel_error"] <= 1.5 * by_dtype["float64"]["rel_error"]


# ---------------------------------------------------------------------------
# store robustness
# ---------------------------------------------------------------------------

def test_store_duplicate_keys_last_write_wins(tmp_path):
    store = SweepStore(tmp_path / "r.jsonl")
    store.append({"key": "a", "rel_error": 1.0})
    store.append({"key": "b", "rel_error": 2.0})
    store.append({"key": "a", "rel_error": 3.0})
    rows = store.load()
    assert rows["a"]["rel_error"] == 3.0
    assert rows["b"]["rel_error"] == 2.0
    assert store.skipped_lines == 0


def test_store_crash_mid_rewrite_preserves_the_original(tmp_path, monkeypatch):
    """A rewrite that dies before the atomic replace leaves the previous
    file byte-identical and no stray .tmp behind."""
    import os as _os

    store = SweepStore(tmp_path / "r.jsonl")
    store.append({"key": "a", "rel_error": 1.0})
    before = store.path.read_bytes()

    def exploding_replace(src, dst):
        raise OSError("simulated crash during rewrite")

    monkeypatch.setattr(_os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        store.rewrite([{"key": "b", "rel_error": 2.0}])
    assert store.path.read_bytes() == before
    assert list(tmp_path.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# crash-tolerant sweeps
# ---------------------------------------------------------------------------

def _flaky_run_trial(failures, error=RuntimeError("transient")):
    """A run_trial wrapper failing the first ``failures`` calls per spec key."""
    from repro.sweep import pool as pool_mod

    real = pool_mod.run_trial
    remaining = {}

    def wrapper(spec, *args, **kwargs):
        left = remaining.setdefault(spec.key, failures)
        if left > 0:
            remaining[spec.key] = left - 1
            raise error
        return real(spec, *args, **kwargs)

    return wrapper


def test_inline_sweep_retries_transient_failures(tmp_path, monkeypatch):
    from repro.sweep import pool as pool_mod

    clean = SweepStore(tmp_path / "clean.jsonl")
    run_sweep(TINY_GRID, clean, workers=0)
    monkeypatch.setattr(pool_mod, "run_trial", _flaky_run_trial(failures=1))
    flaky = SweepStore(tmp_path / "flaky.jsonl")
    outcome = run_sweep(TINY_GRID, flaky, workers=0, retry_backoff_s=0.0)
    assert outcome.failed == 0
    assert flaky.lines() == clean.lines()


def test_inline_sweep_raises_after_exhausted_retries(tmp_path, monkeypatch):
    from repro.sweep import pool as pool_mod

    monkeypatch.setattr(pool_mod, "run_trial", _flaky_run_trial(failures=99))
    store = SweepStore(tmp_path / "r.jsonl")
    with pytest.raises(RuntimeError, match="transient"):
        run_sweep(TINY_GRID, store, workers=0, max_retries=1, retry_backoff_s=0.0)


def test_keep_going_records_error_rows_and_resume_retries_them(
    tmp_path, monkeypatch
):
    from repro.sweep import pool as pool_mod

    clean = SweepStore(tmp_path / "clean.jsonl")
    run_sweep(TINY_GRID, clean, workers=0)

    monkeypatch.setattr(pool_mod, "run_trial", _flaky_run_trial(failures=99))
    store = SweepStore(tmp_path / "r.jsonl")
    outcome = run_sweep(
        TINY_GRID, store, workers=0, max_retries=0, retry_backoff_s=0.0,
        keep_going=True,
    )
    assert outcome.failed == len(TINY_GRID.specs())
    rows = store.load()
    assert all("error" in row and "RuntimeError" in row["error"] for row in rows.values())
    assert summarize(rows.values())[0]["trials"] == 0  # all excluded, cell kept

    # resume with the healthy run_trial recomputes exactly the failed trials
    monkeypatch.undo()
    healed = run_sweep(TINY_GRID, store, workers=0, resume=True)
    assert healed.computed == len(TINY_GRID.specs())
    assert healed.failed == 0
    assert store.lines() == clean.lines()


def test_pooled_sweep_survives_a_worker_crash(tmp_path, monkeypatch):
    """One SIGKILLed worker mid-sweep: the pool is rebuilt, in-flight chunks
    re-run, and the final store is byte-identical to an uncrashed run."""
    grid = SweepGrid(models=("tiny_mlp",), noise_scales=(0.0, 1.0), trials=3, seed=0)
    clean = SweepStore(tmp_path / "clean.jsonl")
    run_sweep(grid, clean, workers=2, chunk_size=1)

    marker = tmp_path / "crash.marker"
    monkeypatch.setenv("REPRO_SWEEP_CRASH_ONCE", str(marker))
    crashed = SweepStore(tmp_path / "crashed.jsonl")
    outcome = run_sweep(
        grid, crashed, workers=2, chunk_size=1, retry_backoff_s=0.05
    )
    assert marker.exists()  # the injection actually fired
    assert outcome.failed == 0
    assert crashed.lines() == clean.lines()


def test_sweep_rejects_bad_retry_configuration(tmp_path):
    store = SweepStore(tmp_path / "r.jsonl")
    with pytest.raises(ValueError, match="max_retries"):
        run_sweep(TINY_GRID, store, max_retries=-1)
    with pytest.raises(ValueError, match="retry_backoff_s"):
        run_sweep(TINY_GRID, store, retry_backoff_s=-0.1)
    with pytest.raises(ValueError, match="trial_timeout_s"):
        run_sweep(TINY_GRID, store, trial_timeout_s=0.0)


# ---------------------------------------------------------------------------
# fault axis
# ---------------------------------------------------------------------------

def test_grid_expands_stuck_fractions_and_keys_differ():
    grid = SweepGrid(
        models=("tiny_mlp",), noise_scales=(0.0,), trials=2,
        stuck_fractions=(0.0, 0.05),
    )
    assert len(grid) == 4
    faulty = TrialSpec(model="tiny_mlp", noise_scale=0.0, trial=0, stuck_fraction=0.05)
    pristine = TrialSpec(model="tiny_mlp", noise_scale=0.0, trial=0)
    assert faulty.key != pristine.key
    with pytest.raises(ValueError, match="stuck fractions"):
        SweepGrid(models=("tiny_mlp",), stuck_fractions=(1.5,))


def test_trial_context_carries_a_per_trial_fault_model():
    spec = TrialSpec(model="tiny_mlp", noise_scale=0.0, trial=1, stuck_fraction=0.04)
    ctx = spec.context()
    assert ctx.faults is not None
    assert ctx.faults.stuck_on_fraction == ctx.faults.stuck_off_fraction == 0.02
    other = TrialSpec(
        model="tiny_mlp", noise_scale=0.0, trial=2, stuck_fraction=0.04
    ).context()
    assert ctx.faults.seed != other.faults.seed
    assert TrialSpec(model="tiny_mlp", noise_scale=0.0, trial=1).context().faults is None


def test_faulty_noiseless_trials_do_not_share_an_engine_run(tmp_path):
    """Faults decorrelate per trial, so the noiseless-dedup shortcut must
    not collapse faulty analog trials — but still collapses ideal ones."""
    from repro.sweep.pool import _work_spec

    faulty = TrialSpec(model="tiny_mlp", noise_scale=0.0, trial=2, stuck_fraction=0.05)
    assert _work_spec(faulty) == faulty
    ideal = TrialSpec(
        model="tiny_mlp", noise_scale=0.0, trial=2, stuck_fraction=0.05, mode="ideal"
    )
    assert _work_spec(ideal).trial == 0

    grid = SweepGrid(
        models=("tiny_mlp",), noise_scales=(0.0,), trials=3,
        stuck_fractions=(0.05,), rows=64, cols=64,
    )
    store = SweepStore(tmp_path / "r.jsonl")
    outcome = run_sweep(grid, store, workers=0)
    assert outcome.executed == 3  # one engine run per trial, no dedup
    errors = {row["rel_error"] for row in store.load().values()}
    assert len(errors) == 3  # distinct chip realisations


def test_mean_error_grows_with_the_stuck_fraction(tmp_path):
    grid = SweepGrid(
        models=("tiny_mlp",), noise_scales=(0.0,), trials=4,
        stuck_fractions=(0.0, 0.02, 0.1), rows=64, cols=64,
    )
    store = SweepStore(tmp_path / "r.jsonl")
    outcome = run_sweep(grid, store, workers=0)
    summary = summarize(outcome.rows)
    means = [entry["mean_rel_error"] for entry in summary]
    assert means == sorted(means)
    assert means[0] < means[-1]
